"""E4 — Table 1, free-size 1024x1024 block.

Paper reference (10k samples/class):
  Real Patterns /13.573 (10001), /12.644 (10003)
  DiffPattern w/ Concatenation: 0.00% / 0.000 and 0.64% / 6.926
  ChatPattern:                  1.19% / 6.438 and 94.96% / 11.981

This is the heaviest experiment (an out-painted 1024^2 topology touches
~225 model windows); the default sample count is intentionally tiny.
"""

from benchmarks.conftest import scale
from benchmarks.free_size_common import run_free_size_block
from repro.data import STYLES

SIZE = 1024
COUNT = 1 * scale()


def test_table1_free_1024(benchmark, chatpattern_model, per_style_models):
    results = benchmark.pedantic(
        run_free_size_block,
        args=(SIZE, COUNT, chatpattern_model, per_style_models),
        kwargs={"real_count": 4},
        rounds=1,
        iterations=1,
    )
    # At this size the paper's concat baseline is at (or near) zero; ours
    # must not *beat* ChatPattern on both styles.
    better = sum(
        1
        for style in STYLES
        if results["chatpattern"][style].legality
        >= results["concat"][style].legality
    )
    assert better >= 1
