"""E1 — Table 1, fixed-size 128x128 block.

Regenerates the fixed-size comparison: Real Patterns, CAE+LegalGAN,
VCAE+LegalGAN, LayouTransformer (Layer-10001 only, as in the paper),
DiffPattern (per-style unconditional) and ChatPattern (class-conditional),
reporting Legality (Eq. 7) and Diversity (Eq. 8) per layer plus the joint
'Total' column.

Paper reference (10k samples/class):
  CAE+LegalGAN 3.74% / 5.814 - VCAE+LegalGAN 84.51% / 9.867 -
  LayouTransformer 89.73% / 10.527 - DiffPattern 99.97% / 10.711 (10001),
  99.98% / 8.578 (10003) - ChatPattern 99.97% / 10.796, 99.99% / 8.625.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_table, scale
from benchmarks.table1_common import (
    Cell,
    generator_cell,
    real_patterns_cell,
    total_cell,
)
from repro.baselines import CAEGenerator, LayouTransformer, LegalGAN, VCAEGenerator
from repro.data import STYLES, TILE_NM, MODEL_SIZE
from repro.drc import rules_for_style
from repro.metrics import legalize_sequential


SAMPLES = 24 * scale()


def _evaluate(benchmark, train_data, chatpattern_model, per_style_models):
    topologies, conditions = train_data
    rng = np.random.default_rng(1)
    rows = []
    libraries = []

    # Real Patterns reference.
    real = {s: real_patterns_cell(s, MODEL_SIZE, SAMPLES) for s in STYLES}
    rows.append(_row("Real Patterns", real, None))

    # Auto-encoder baselines + LegalGAN post-processing (Layer-10001 only).
    data_10001 = topologies[conditions == 0]
    gan = LegalGAN(rules_for_style("Layer-10001"), cell_nm=TILE_NM / MODEL_SIZE)
    for name, generator in (
        ("CAE+LegalGAN", CAEGenerator()),
        ("VCAE+LegalGAN", VCAEGenerator()),
    ):
        generator.fit(data_10001, rng)
        raw = generator.sample(SAMPLES, rng)
        cells = {"Layer-10001": generator_cell(list(gan.batch(raw)), "Layer-10001")}
        rows.append(_row(name, cells, None))

    # LayouTransformer (sequential baseline, Layer-10001 only).
    lt = LayouTransformer()
    lt.fit(data_10001, rng)
    cells = {"Layer-10001": generator_cell(list(lt.sample(SAMPLES, rng)), "Layer-10001")}
    rows.append(_row("LayouTransformer", cells, None))

    # DiffPattern: one unconditional model per style.
    dp_cells = {}
    dp_libs = []
    for style in STYLES:
        samples = per_style_models[style].sample(SAMPLES, rng)
        result = legalize_sequential(list(samples), style)
        dp_cells[style] = Cell(
            result.legality,
            _diversity_of(result),
            SAMPLES,
        )
        dp_libs.append(result.legal)
    rows.append(_row("DiffPattern", dp_cells, total_cell(dp_cells, dp_libs)))

    # ChatPattern: the class-conditional model (no selection, no retries).
    cp_cells = {}
    cp_libs = []
    for idx, style in enumerate(STYLES):
        samples = chatpattern_model.sample(SAMPLES, idx, rng)
        result = legalize_sequential(list(samples), style)
        cp_cells[style] = Cell(result.legality, _diversity_of(result), SAMPLES)
        cp_libs.append(result.legal)
    rows.append(_row("ChatPattern", cp_cells, total_cell(cp_cells, cp_libs)))

    print_table(
        f"Table 1 (fixed-size 128x128, {SAMPLES} samples/class)",
        ["Method", "L-10001 Leg.", "L-10001 Div.",
         "L-10003 Leg.", "L-10003 Div.", "Total Leg.", "Total Div."],
        rows,
    )

    assert rows[-1][0] == "ChatPattern"
    return rows


def _diversity_of(result):
    from repro.metrics import diversity

    return diversity(result.legal)


def _row(name: str, cells: dict, total):
    def fmt(style, kind):
        cell = cells.get(style)
        if cell is None:
            return "/"
        return cell.fmt_legality() if kind == "leg" else cell.fmt_diversity()

    return [
        name,
        fmt("Layer-10001", "leg"), fmt("Layer-10001", "div"),
        fmt("Layer-10003", "leg"), fmt("Layer-10003", "div"),
        total.fmt_legality() if total else "/",
        total.fmt_diversity() if total else "/",
    ]


def test_table1_fixed_size(benchmark, train_data, chatpattern_model, per_style_models):
    rows = benchmark.pedantic(
        _evaluate,
        args=(benchmark, train_data, chatpattern_model, per_style_models),
        rounds=1,
        iterations=1,
    )
    # Shape check: diffusion methods dominate the auto-encoder baselines.
    by_name = {r[0]: r for r in rows}
    cae_leg = float(by_name["CAE+LegalGAN"][1].rstrip("%"))
    chat_leg = float(by_name["ChatPattern"][1].rstrip("%"))
    assert chat_leg >= cae_leg
