"""Shared driver for the Table-1 free-size blocks (E2/E3/E4).

One function evaluates a full size block: Real Patterns reference,
"DiffPattern w/ Concatenation" (per-style unconditional models, stitched
legal patches, DRC-checked) and ChatPattern (conditional model + extension,
method chosen per the agent's experience documents, joint legalization).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_table
from benchmarks.table1_common import (
    concat_cell,
    extension_cell,
    real_patterns_cell,
)
from repro.agent import ExperienceDocuments
from repro.data import STYLES


def run_free_size_block(
    size: int,
    count: int,
    chatpattern_model,
    per_style_models,
    real_count: int = 8,
    documents: ExperienceDocuments = None,
) -> dict:
    """Evaluate one target size; returns {method: {style: Cell}}."""
    rng = np.random.default_rng(size)
    documents = documents or ExperienceDocuments()
    results = {"real": {}, "concat": {}, "chatpattern": {}}
    for idx, style in enumerate(STYLES):
        results["real"][style] = real_patterns_cell(style, size, real_count)
        results["concat"][style] = concat_cell(
            per_style_models[style].model, style, None, size, count, rng
        )
        method = documents.recommend_extension(style, size=size).lower()
        results["chatpattern"][style] = extension_cell(
            chatpattern_model, style, idx, size, count, method, rng
        )

    rows = []
    for method, label in (
        ("real", "Real Patterns"),
        ("concat", "DiffPattern w/ Concat"),
        ("chatpattern", "ChatPattern"),
    ):
        cells = results[method]
        rows.append(
            [
                label,
                cells[STYLES[0]].fmt_legality(), cells[STYLES[0]].fmt_diversity(),
                cells[STYLES[1]].fmt_legality(), cells[STYLES[1]].fmt_diversity(),
            ]
        )
    print_table(
        f"Table 1 (free-size {size}x{size}, {count} samples/class)",
        ["Method", "L-10001 Leg.", "L-10001 Div.", "L-10003 Leg.", "L-10003 Div."],
        rows,
    )
    return results


def assert_chatpattern_wins(results: dict) -> None:
    """The paper's headline claim: ChatPattern >= concatenation baseline."""
    for style in STYLES:
        chat = results["chatpattern"][style].legality
        concat = results["concat"][style].legality
        assert chat is not None and concat is not None
        assert chat >= concat - 1e-9, (
            f"{style}: ChatPattern {chat:.2%} < concat {concat:.2%}"
        )
