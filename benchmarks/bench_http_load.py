"""E12 — HTTP serving under concurrent client load.

Hundreds of blocking :class:`~repro.serve.ServeClient` threads hammer one
:class:`~repro.serve.PatternHttpServer` over real sockets with a mixed
workload:

- **interactive** clients: one pattern per job, tight polling — the
  latency-sensitive class;
- **bulk** clients: several patterns per job, relaxed polling — the
  throughput class that keeps the engine's batches full.

Each client times its submit round-trip and its end-to-end job latency
(submit -> SUCCEEDED -> result fetched), so the payload records, per
class, the p50/p95 a real caller would see while the server multiplexes
everyone else.  The sampling back-end is a synthetic fixed-cost model
(a few ms of numpy per pattern): this bench gates the *serving stack* —
HTTP framing, the job lifecycle layer, the request pool and the engine
queue — not diffusion throughput, which ``bench_serve_throughput``
already owns.

Results append to ``BENCH_http_load.json`` at the repo root; a run FAILS
if ``jobs_per_sec`` regresses more than 25% against the committed
baseline (the first entry of the same workload class).  ``REPRO_SMOKE=1``
shrinks the client fleet for CI.
"""

import json
import os
import threading
import time
from datetime import datetime, timezone

import numpy as np

from benchmarks.conftest import print_table
from repro.obs.export import parse_exposition
from repro.serve import (
    PatternHttpServer,
    PatternService,
    ServeClient,
    ServeClientError,
)

SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")
WINDOW = 64
INTERACTIVE_CLIENTS = 24 if SMOKE else 180
BULK_CLIENTS = 8 if SMOKE else 60
BULK_COUNT = 4  # patterns per bulk job (interactive jobs ask for 1)
MODEL_COST_LOOPS = 3  # synthetic per-pattern compute (a few ms each)
MAX_WORKERS = 16
ENGINE_WORKERS = 2
GATHER_WINDOW = 0.005
REGRESSION_TOLERANCE = 0.5 if SMOKE else 0.75
CPUS = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
    os.cpu_count() or 1
)

RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_http_load.json",
)


class LoadModel:
    """Fixed-cost synthetic sampler: legal patterns, ~ms-scale compute.

    Emulates a model whose per-pattern cost is small and deterministic,
    so wall-clock differences measure the serving layers under test.
    """

    def __init__(self, window=WINDOW):
        self.window = window
        self.fitted = True
        self.n_classes = 2
        self.supports_sampler_steps = True

    def sample_batch(self, conditions, rng, shape=None, **kwargs):
        shape = shape or (self.window, self.window)
        work = np.ones((len(conditions), *shape))
        for _ in range(MODEL_COST_LOOPS):
            work = np.tanh(work * 0.5) + 1.0  # burn deterministic FLOPs
        out = np.zeros((len(conditions), *shape), dtype=np.uint8)
        quarter = shape[0] // 4
        out[:, quarter:-quarter, quarter:-quarter] = 1
        return out


def _client_run(url, kind, index, records, errors, barrier):
    """One client thread: submit -> poll to terminal -> fetch result."""
    client = ServeClient(url, timeout=60.0)
    count = 1 if kind == "interactive" else BULK_COUNT
    interval = 0.01 if kind == "interactive" else 0.05
    barrier.wait(timeout=60.0)
    started = time.perf_counter()
    try:
        job_id = client.submit(
            kind="pipeline",
            params={
                "count": count,
                "style": "Layer-10001" if index % 2 == 0 else "Layer-10003",
                "seed": index,
            },
        )
        submit_seconds = time.perf_counter() - started
        final = client.wait(job_id, timeout=600.0, interval=interval)
        result = client.result(job_id)
        records.append(
            {
                "kind": kind,
                "state": final["state"],
                "produced": result["produced"],
                "submit_seconds": submit_seconds,
                "e2e_seconds": time.perf_counter() - started,
            }
        )
    except ServeClientError as exc:
        errors.append(f"{kind}-{index}: [{exc.code}] {exc}")


def _percentiles(values):
    if not values:
        return {"p50": 0.0, "p95": 0.0}
    return {
        "p50": round(float(np.percentile(values, 50)), 4),
        "p95": round(float(np.percentile(values, 95)), 4),
    }


def _class_summary(records, kind):
    mine = [r for r in records if r["kind"] == kind]
    e2e = [r["e2e_seconds"] for r in mine]
    return {
        "clients": len(mine),
        "produced": sum(r["produced"] for r in mine),
        "e2e": _percentiles(e2e),
        "submit": _percentiles([r["submit_seconds"] for r in mine]),
    }


def _load_history():
    if not os.path.exists(RESULT_PATH):
        return {"benchmark": "http_load", "history": []}
    with open(RESULT_PATH) as handle:
        return json.load(handle)


def _check_regression(payload, history):
    """Compare jobs/sec against the FIRST entry of the same workload
    class — anchoring on the committed baseline keeps the gate from
    ratcheting downward as later runs are appended."""
    same = [
        entry for entry in history["history"]
        if entry.get("smoke") == payload["smoke"]
    ]
    if not same:
        return []
    anchor = same[0]
    floor = anchor["jobs_per_sec"] * REGRESSION_TOLERANCE
    if payload["jobs_per_sec"] < floor:
        return [
            f"jobs_per_sec {payload['jobs_per_sec']} regressed against "
            f"the committed {anchor['jobs_per_sec']} (floor {floor:.2f})"
        ]
    return []


def _run(output_dir):
    service = PatternService(
        model=LoadModel(),
        max_workers=MAX_WORKERS,
        engine_workers=ENGINE_WORKERS,
        gather_window=GATHER_WINDOW,
        max_batch=32,
    )
    server = PatternHttpServer(service, port=0)
    total_clients = INTERACTIVE_CLIENTS + BULK_CLIENTS
    records, errors = [], []
    threads = []
    # +1 for the main thread: every client blocks on the barrier until
    # the whole fleet is up, so arrival is a true thundering herd.
    barrier = threading.Barrier(total_clients + 1)
    with server:
        for i in range(total_clients):
            kind = "interactive" if i < INTERACTIVE_CLIENTS else "bulk"
            thread = threading.Thread(
                target=_client_run,
                args=(server.url, kind, i, records, errors, barrier),
                daemon=True,
            )
            thread.start()
            threads.append(thread)
        started = time.perf_counter()
        barrier.wait(timeout=60.0)
        for thread in threads:
            thread.join(timeout=600.0)
        wall = time.perf_counter() - started
        exposition = parse_exposition(ServeClient(server.url).metrics())
    terminal = {
        labels.get("state"): value
        for _name, labels, value in exposition.get(
            "repro_job_terminal_total", {"samples": []}
        )["samples"]
    }

    interactive = _class_summary(records, "interactive")
    bulk = _class_summary(records, "bulk")
    payload = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "smoke": SMOKE,
        "cpus": CPUS,
        "workload": {
            "interactive_clients": INTERACTIVE_CLIENTS,
            "bulk_clients": BULK_CLIENTS,
            "bulk_count": BULK_COUNT,
            "window": WINDOW,
            "max_workers": MAX_WORKERS,
            "engine_workers": ENGINE_WORKERS,
        },
        "wall_seconds": round(wall, 3),
        "jobs": len(records),
        "jobs_per_sec": round(len(records) / max(wall, 1e-9), 2),
        "produced": interactive["produced"] + bulk["produced"],
        "errors": len(errors),
        "interactive": interactive,
        "bulk": bulk,
        "terminal_counts": terminal,
    }

    history = _load_history()
    regressions = _check_regression(payload, history)
    history["history"].append(payload)
    with open(RESULT_PATH, "w") as handle:
        json.dump(history, handle, indent=2)
        handle.write("\n")
    with open(os.path.join(output_dir, "http_load.json"), "w") as handle:
        json.dump(payload, handle, indent=2)

    print_table(
        f"HTTP load ({total_clients} concurrent clients, "
        f"{MAX_WORKERS} workers, {CPUS} cpu(s))",
        ["class", "clients", "produced", "submit p95 (s)", "e2e p50/p95 (s)"],
        [
            ["interactive", interactive["clients"], interactive["produced"],
             interactive["submit"]["p95"],
             f"{interactive['e2e']['p50']} / {interactive['e2e']['p95']}"],
            ["bulk", bulk["clients"], bulk["produced"],
             bulk["submit"]["p95"],
             f"{bulk['e2e']['p50']} / {bulk['e2e']['p95']}"],
        ],
    )
    print(
        f"{payload['jobs']} jobs in {payload['wall_seconds']}s "
        f"({payload['jobs_per_sec']} jobs/s), {payload['errors']} errors  "
        f"(history: {RESULT_PATH})"
    )
    if errors:
        for line in errors[:5]:
            print(f"  error: {line}")
    payload["regressions"] = regressions
    return payload


def test_http_load(benchmark, output_dir):
    payload = benchmark.pedantic(
        _run, args=(output_dir,), rounds=1, iterations=1
    )
    total = INTERACTIVE_CLIENTS + BULK_CLIENTS
    # Every client's job must finish SUCCEEDED with its full result.
    assert payload["errors"] == 0
    assert payload["jobs"] == total
    assert payload["produced"] == INTERACTIVE_CLIENTS + BULK_CLIENTS * BULK_COUNT
    # The server's own accounting agrees with the client fleet.
    assert payload["terminal_counts"].get("SUCCEEDED", 0) == total
    # Interactive jobs must stay cheaper end-to-end than bulk jobs at p50.
    assert (
        payload["interactive"]["e2e"]["p50"] <= payload["bulk"]["e2e"]["p95"]
    )
    # No >25% regression against the committed baseline.
    assert not payload["regressions"], payload["regressions"]
