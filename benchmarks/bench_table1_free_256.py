"""E2 — Table 1, free-size 256x256 block.

Paper reference (10k samples/class):
  Real Patterns /12.702 (10001), /10.696 (10003)
  DiffPattern w/ Concatenation: 57.78% / 10.719 and 93.69% / 10.511
  ChatPattern:                  87.36% / 11.154 and 99.78% / 10.556
"""

from benchmarks.conftest import scale
from benchmarks.free_size_common import assert_chatpattern_wins, run_free_size_block

SIZE = 256
COUNT = 6 * scale()


def test_table1_free_256(benchmark, chatpattern_model, per_style_models):
    results = benchmark.pedantic(
        run_free_size_block,
        args=(SIZE, COUNT, chatpattern_model, per_style_models),
        rounds=1,
        iterations=1,
    )
    assert_chatpattern_wins(results)
