"""Shared evaluation helpers for the Table-1 benchmarks.

Implements the paper's protocol: no topology selection, no modification
retries; every generated topology is legalized exactly once and failures
count against the method (fixed-size / extension methods), while the
concatenation baseline is DRC-checked after stitching individually
legalized patches (it has no joint solver).  Diversity (Eq. 8) is computed
on legal patterns only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.data import TILE_NM, reference_library
from repro.drc import check_pattern, rules_for_style
from repro.metrics import diversity, legalize_sequential
from repro.ops import concat_legalized_patterns, extend
from repro.squish.pattern import PatternLibrary


@dataclass
class Cell:
    """One (method, style) cell of Table 1."""

    legality: Optional[float]
    diversity: float
    count: int

    def fmt_legality(self) -> str:
        return "/" if self.legality is None else f"{self.legality:.2%}"

    def fmt_diversity(self) -> str:
        return f"{self.diversity:.3f}"


def real_patterns_cell(style: str, size: int, count: int, seed: int = 77) -> Cell:
    """'Real Patterns' reference row (legality not applicable)."""
    library = reference_library(style, count, size, seed=seed)
    return Cell(legality=None, diversity=diversity(library), count=count)


def generator_cell(
    topologies: List[np.ndarray], style: str
) -> Cell:
    """Legalize generated topologies and evaluate (fixed-size protocol)."""
    result = legalize_sequential(topologies, style)
    return Cell(
        legality=result.legality,
        diversity=diversity(result.legal),
        count=len(topologies),
    )


def extension_cell(
    model, style: str, condition: int, size: int, count: int,
    method: str, rng: np.random.Generator,
) -> Cell:
    """ChatPattern free-size row: extend then legalize jointly."""
    topologies = [
        extend(model, (size, size), condition, rng, method=method).topology
        for _ in range(count)
    ]
    return generator_cell(topologies, style)


def concat_cell(
    model, style: str, condition: int, size: int, count: int,
    rng: np.random.Generator,
) -> Cell:
    """DiffPattern-w/-concatenation row: stitch legal patches, DRC check."""
    rules = rules_for_style(style)
    legal = PatternLibrary(name=f"concat-{style}")
    for _ in range(count):
        result = concat_legalized_patterns(
            model, (size, size), condition, rng, rules, TILE_NM, style
        )
        if result.pattern is None:
            continue
        if check_pattern(result.pattern, rules).is_clean:
            legal.add(result.pattern)
    return Cell(
        legality=len(legal) / count if count else 0.0,
        diversity=diversity(legal),
        count=count,
    )


def total_cell(cells: Dict[str, Cell], libraries: List[PatternLibrary]) -> Cell:
    """The 'Total' column: joint evaluation over both styles' samples."""
    merged = PatternLibrary(name="total")
    total = 0
    legal = 0
    for cell in cells.values():
        if cell.legality is not None:
            total += cell.count
            legal += int(round(cell.legality * cell.count))
    for library in libraries:
        merged.extend(list(library))
    return Cell(
        legality=(legal / total) if total else None,
        diversity=diversity(merged),
        count=total,
    )
