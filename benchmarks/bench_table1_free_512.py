"""E3 — Table 1, free-size 512x512 block.

Paper reference (10k samples/class):
  Real Patterns /13.435 (10001), /12.139 (10003)
  DiffPattern w/ Concatenation: 0.29% / 5.714 and 40.83% / 11.555
  ChatPattern:                  36.42% / 10.401 and 98.86% / 11.620
"""

from benchmarks.conftest import scale
from benchmarks.free_size_common import assert_chatpattern_wins, run_free_size_block

SIZE = 512
COUNT = 4 * scale()


def test_table1_free_512(benchmark, chatpattern_model, per_style_models):
    results = benchmark.pedantic(
        run_free_size_block,
        args=(SIZE, COUNT, chatpattern_model, per_style_models),
        kwargs={"real_count": 6},
        rounds=1,
        iterations=1,
    )
    assert_chatpattern_wins(results)
