"""E7 — Figure 10: In-Painting vs Out-Painting, legality and diversity.

Regenerates the experience-document statistics the agent learns from: for
each style, extend to 256^2 with both algorithms and compare Legality /
Diversity.  The paper's documented insight: out-painting typically yields
better legality, while in-painting excels in diversity under certain
conditions.  The measured records are appended to an ExperienceDocuments
instance, exactly the artefact the agent consumes.
"""

import numpy as np

from benchmarks.conftest import print_table, scale
from benchmarks.table1_common import extension_cell
from repro.agent import ExperienceDocuments, ExtensionRecord
from repro.data import STYLES

SIZE = 256
COUNT = 5 * scale()


def _evaluate(chatpattern_model):
    rng = np.random.default_rng(10)
    documents = ExperienceDocuments()
    rows = []
    cells = {}
    for idx, style in enumerate(STYLES):
        for method in ("out", "in"):
            cell = extension_cell(
                chatpattern_model, style, idx, SIZE, COUNT, method, rng
            )
            cells[(style, method)] = cell
            documents.record_extension(
                ExtensionRecord(
                    style=style,
                    method=method.capitalize(),
                    size=SIZE,
                    legality=cell.legality,
                    diversity=cell.diversity,
                )
            )
            rows.append(
                [style, f"{method}-painting", cell.fmt_legality(), cell.fmt_diversity()]
            )
    print_table(
        f"Figure 10 (extension methods at {SIZE}x{SIZE}, {COUNT}/cell)",
        ["Style", "Method", "Legality", "Diversity"],
        rows,
    )
    print("\nExperience document the agent would consume:")
    print(documents.summary_text())
    for style in STYLES:
        rec = documents.recommend_extension(style, size=SIZE, objective="legality")
        print(f"recommended for {style} (legality objective): {rec}-painting"
              if rec in ("In", "Out") else rec)
    return cells, documents


def test_fig10_extension_methods(benchmark, chatpattern_model):
    cells, documents = benchmark.pedantic(
        _evaluate, args=(chatpattern_model,), rounds=1, iterations=1
    )
    for key, cell in cells.items():
        assert cell.legality is not None and 0.0 <= cell.legality <= 1.0
    # The documents must now produce data-driven recommendations.
    assert documents.records
    assert documents.recommend_extension(STYLES[0], size=SIZE) in ("In", "Out")
