"""E13 — sampling throughput: baseline reverse chain vs the perf engine.

The acceptance experiment for the sampling performance engine.  The same
workloads run twice:

- **baseline**: the pre-engine architecture — on-the-fly probability
  derivation from the raw count tables (``use_compiled = False``) walking
  the **full** reverse chain, every schedule step;
- **optimized**: compiled float32 logit lookup tables plus the
  **bucket-collapsed** step schedule (one denoiser evaluation per noise
  bucket).

Two workloads are measured: a single 8-sample request
(``model.sample``) and an 8-request serve workload riding the
micro-batching scheduler (``MicroBatchScheduler`` → ``sample_batch``),
mixed styles.  Results are appended to ``BENCH_sample_throughput.json`` at
the repo root; a run FAILS if its speedups regress more than 25% against
the committed baseline (the first entry of the same workload class), or fall below the
absolute floors (>= 5x single, >= 3x serve; ``REPRO_SMOKE=1`` shrinks the
workload and relaxes the floors — tiny maps measure fixed overhead, not
throughput).
"""

import json
import os
import time
from datetime import datetime, timezone

import numpy as np

from benchmarks.conftest import print_table, scale
from repro.data import DatasetConfig, STYLES, build_training_set
from repro.diffusion import ConditionalDiffusionModel, DiffusionSchedule
from repro.serve import MicroBatchScheduler

SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")
WINDOW = 64 if SMOKE else 128
STEPS = 64 if SMOKE else 128
TRAIN_COUNT = 8 if SMOKE else 48
SINGLE_COUNT = (4 if SMOKE else 8) * scale()
N_REQUESTS = 8
SAMPLES_PER_REQUEST = (1 if SMOKE else 2) * scale()
SINGLE_FLOOR = 1.2 if SMOKE else 5.0
SERVE_FLOOR = 1.1 if SMOKE else 3.0
# Fail under this fraction of the committed speedup.  The smoke workload's
# ratio carries more fixed overhead (gather window, numpy dispatch) than
# real throughput, so its gate gets extra headroom against runner noise
# while still catching a disabled engine (speedup ~1x).
REGRESSION_TOLERANCE = 0.5 if SMOKE else 0.75
# The gather window is pure constant latency inside the timed region; on
# the smoke workload it would dominate both modes and compress the ratio.
GATHER_WINDOW = 0.05 if SMOKE else 0.2

RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_sample_throughput.json",
)

MODES = {
    # (use_compiled, sampler_steps)
    "baseline": (False, "full"),
    "optimized": (True, "bucketed"),
}


def _build_model():
    topologies, conditions = build_training_set(
        list(STYLES),
        TRAIN_COUNT,
        DatasetConfig(topology_size=WINDOW, seed=2024),
    )
    model = ConditionalDiffusionModel(
        schedule=DiffusionSchedule.linear(STEPS, 0.003, 0.08),
        window=WINDOW,
        n_classes=len(STYLES),
    )
    model.fit(topologies, conditions, np.random.default_rng(0))
    return model


def _run_single(model, compiled, sampler_steps):
    model.denoiser.use_compiled = compiled
    try:
        started = time.perf_counter()
        samples = model.sample(
            SINGLE_COUNT, 0, np.random.default_rng(1),
            sampler_steps=sampler_steps,
        )
        wall = time.perf_counter() - started
    finally:
        model.denoiser.use_compiled = True
    assert samples.shape == (SINGLE_COUNT, WINDOW, WINDOW)
    return {
        "wall_seconds": round(wall, 3),
        "samples": SINGLE_COUNT,
        "samples_per_sec": round(SINGLE_COUNT / wall, 2),
        "denoise_evals": model.denoise_evals(sampler_steps),
    }


def _run_serve(model, compiled, sampler_steps):
    """8 concurrent requests coalescing in the micro-batching scheduler."""
    model.denoiser.use_compiled = compiled
    try:
        scheduler = MicroBatchScheduler(
            model, gather_window=GATHER_WINDOW, sampler_steps=sampler_steps
        )
        started = time.perf_counter()
        with scheduler:
            jobs = [
                scheduler.submit(
                    SAMPLES_PER_REQUEST, i % len(STYLES), seed=i
                )
                for i in range(N_REQUESTS)
            ]
            results = [job.result(timeout=600) for job in jobs]
        wall = time.perf_counter() - started
    finally:
        model.denoiser.use_compiled = True
    total = sum(len(r) for r in results)
    assert total == N_REQUESTS * SAMPLES_PER_REQUEST
    stats = scheduler.stats()
    return {
        "wall_seconds": round(wall, 3),
        "requests": N_REQUESTS,
        "samples": total,
        "samples_per_sec": round(total / wall, 2),
        "max_batch_size": stats.max_batch_size,
        "batches": stats.batches,
    }


def _speedup(baseline, optimized):
    return round(
        baseline["wall_seconds"] / max(optimized["wall_seconds"], 1e-9), 3
    )


def _load_history():
    if not os.path.exists(RESULT_PATH):
        return {"benchmark": "sample_throughput", "history": []}
    with open(RESULT_PATH) as handle:
        return json.load(handle)


def _check_regression(payload, history):
    """Compare against the FIRST entry of the same workload class.

    The first entry is the committed baseline; anchoring on it (rather
    than the most recent run) keeps the gate from ratcheting downward as
    later runs — including failing ones — are appended to the history.
    Speedup *ratios* are compared (they are close to machine-independent,
    unlike absolute wall-clock), so a committed baseline from one machine
    still guards CI runners.
    """
    previous = [
        entry for entry in history["history"]
        if entry.get("smoke") == payload["smoke"]
    ]
    if not previous:
        return []
    anchor = previous[0]
    failures = []
    for key in ("speedup_single", "speedup_serve"):
        floor = anchor[key] * REGRESSION_TOLERANCE
        if payload[key] < floor:
            failures.append(
                f"{key} {payload[key]}x regressed against the committed "
                f"{anchor[key]}x (floor {floor:.2f}x)"
            )
    return failures


def _run(output_dir):
    model = _build_model()
    # Warm-up outside the timed windows (page-faults the tables, warms
    # numpy's pools) so both modes measure steady-state throughput.
    model.sample(1, 0, np.random.default_rng(0))

    single = {}
    serve = {}
    for mode, (compiled, steps) in MODES.items():
        single[mode] = _run_single(model, compiled, steps)
        serve[mode] = _run_serve(model, compiled, steps)

    payload = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "smoke": SMOKE,
        "workload": {
            "window": WINDOW,
            "steps": STEPS,
            "train_count": TRAIN_COUNT,
            "single_count": SINGLE_COUNT,
            "serve_requests": N_REQUESTS,
            "samples_per_request": SAMPLES_PER_REQUEST,
        },
        "single": single,
        "serve": serve,
        "speedup_single": _speedup(single["baseline"], single["optimized"]),
        "speedup_serve": _speedup(serve["baseline"], serve["optimized"]),
    }

    history = _load_history()
    regressions = _check_regression(payload, history)
    history["history"].append(payload)
    with open(RESULT_PATH, "w") as handle:
        json.dump(history, handle, indent=2)
        handle.write("\n")
    # Mirror next to the other bench outputs for convenience.
    with open(os.path.join(output_dir, "sample_throughput.json"), "w") as handle:
        json.dump(payload, handle, indent=2)

    print_table(
        f"Sampling throughput ({WINDOW}x{WINDOW}, K={STEPS})",
        ["workload", "mode", "wall (s)", "samples/s", "evals/traj"],
        [
            ["single x%d" % SINGLE_COUNT, "baseline",
             single["baseline"]["wall_seconds"],
             single["baseline"]["samples_per_sec"],
             single["baseline"]["denoise_evals"]],
            ["single x%d" % SINGLE_COUNT, "optimized",
             single["optimized"]["wall_seconds"],
             single["optimized"]["samples_per_sec"],
             single["optimized"]["denoise_evals"]],
            ["serve 8-request", "baseline",
             serve["baseline"]["wall_seconds"],
             serve["baseline"]["samples_per_sec"], "-"],
            ["serve 8-request", "optimized",
             serve["optimized"]["wall_seconds"],
             serve["optimized"]["samples_per_sec"], "-"],
        ],
    )
    print(
        f"single speedup: {payload['speedup_single']}x, "
        f"serve speedup: {payload['speedup_serve']}x  "
        f"(history: {RESULT_PATH})"
    )
    payload["regressions"] = regressions
    return payload


def test_sample_throughput(benchmark, output_dir):
    payload = benchmark.pedantic(
        _run, args=(output_dir,), rounds=1, iterations=1
    )
    # The scheduler must actually coalesce the 8 requests ...
    assert payload["serve"]["optimized"]["max_batch_size"] > 1
    # ... the engine must clear the absolute floors ...
    assert payload["speedup_single"] >= SINGLE_FLOOR, payload["speedup_single"]
    assert payload["speedup_serve"] >= SERVE_FLOOR, payload["speedup_serve"]
    # ... and must not regress >25% against the committed baseline.
    assert not payload["regressions"], payload["regressions"]
