"""E10 — Ablation: class-conditional vs unconditional mixed training.

Section 3.2 motivates the conditional model two ways: (1) prior methods
"cannot determine the class of the generated pattern", and (2) training one
model per style wastes the mixed dataset while naive mixing conflicts the
rule decks.  This ablation trains an *unconditional* model on the same
mixed two-style dataset as the conditional one and measures:

- **style control**: fraction of samples whose (fill, complexity) signature
  matches the *requested* style's training centroid.  The conditional model
  should steer reliably; the unconditional model emits whatever mixture it
  learned (no control input exists — its "accuracy" is the base rate of
  the nearest style).
- **legality** under each style's rule deck, where mixed training shows up
  as samples fitting neither deck perfectly.

A second sweep varies the reverse-chain length K, the CPU-quality knob used
throughout the benches.
"""

import numpy as np

from benchmarks.conftest import print_table, sampling_steps, scale
from repro.data import STYLES
from repro.diffusion import (
    ConditionalDiffusionModel,
    DiffusionSchedule,
    NeighborhoodDenoiser,
)
from repro.metrics import complexity_of, legalize_sequential


SAMPLES = 12 * scale()


def _signature(topology) -> np.ndarray:
    cx, cy = complexity_of(topology)
    return np.array([topology.mean() * 100.0, cx, cy], dtype=np.float64)


def _centroids(topologies, conditions):
    return {
        idx: np.mean([_signature(t) for t in topologies[conditions == idx]], axis=0)
        for idx in range(len(STYLES))
    }


def _classify(topology, centroids) -> int:
    sig = _signature(topology)
    return min(centroids, key=lambda idx: np.linalg.norm(sig - centroids[idx]))


def _evaluate(train_data, chatpattern_model):
    topologies, conditions = train_data
    rng = np.random.default_rng(2)
    centroids = _centroids(topologies, conditions)

    uncond = ConditionalDiffusionModel(
        denoiser=NeighborhoodDenoiser(n_classes=0),
        schedule=DiffusionSchedule.linear(sampling_steps(), 0.003, 0.08),
        window=128,
        n_classes=0,
    )
    uncond.fit(topologies, None, rng)

    rows = []
    control = {}
    for idx, style in enumerate(STYLES):
        cond_samples = chatpattern_model.sample(SAMPLES, idx, rng)
        cond_match = np.mean(
            [_classify(t, centroids) == idx for t in cond_samples]
        )
        cond_leg = legalize_sequential(list(cond_samples), style).legality

        mixed_samples = uncond.sample(SAMPLES, None, rng)
        mixed_match = np.mean(
            [_classify(t, centroids) == idx for t in mixed_samples]
        )
        mixed_leg = legalize_sequential(list(mixed_samples), style).legality
        control[style] = (float(cond_match), float(mixed_match))
        rows.append(
            [
                style,
                f"{cond_match:.0%}", f"{cond_leg:.2%}",
                f"{mixed_match:.0%}", f"{mixed_leg:.2%}",
            ]
        )
    print_table(
        f"Ablation: conditioning on the mixed dataset ({SAMPLES}/class)",
        ["Requested style", "Cond. match", "Cond. leg.",
         "Uncond. match", "Uncond. leg."],
        rows,
    )

    # K sweep: sampling cost vs quality with the same trained denoiser.
    k_rows = []
    for steps in (16, 32, 64):
        model = ConditionalDiffusionModel(
            denoiser=chatpattern_model.denoiser,
            schedule=DiffusionSchedule.linear(steps, 0.003, 0.08),
            window=128,
            n_classes=2,
        )
        model.fitted = True
        samples = model.sample(max(4, SAMPLES // 3), 0, rng)
        result = legalize_sequential(list(samples), STYLES[0])
        k_rows.append([steps, f"{result.legality:.2%}", f"{samples.mean():.3f}"])
    print_table(
        "Ablation: reverse-chain length K (Layer-10001)",
        ["K", "Legality", "Fill"],
        k_rows,
    )
    return control


def test_ablation_conditioning(benchmark, train_data, chatpattern_model):
    control = benchmark.pedantic(
        _evaluate, args=(train_data, chatpattern_model), rounds=1, iterations=1
    )
    # The conditional model steers style; the unconditional one cannot
    # satisfy both requests at once (its outputs are one fixed mixture).
    cond_total = sum(match for match, _ in control.values())
    mixed_total = sum(match for _, match in control.values())
    assert cond_total >= 1.5, f"conditional control too weak: {control}"
    assert cond_total >= mixed_total
