"""E11 — serving throughput: sequential ChatPattern vs batched PatternService.

The acceptance experiment for the serving subsystem: an 8-request workload
(two styles interleaved, 2 patterns each) is handled twice —

- **sequential**: one ``ChatPattern.handle_request`` after another, each
  sub-task sampling the diffusion back-end in isolation (the pre-serve
  architecture);
- **batched**: all 8 requests concurrently through ``PatternService``, whose
  micro-batching scheduler coalesces the sampling work of different
  requests into shared batched denoise trajectories.

Both runs use the *same* pre-fitted back-end (handed to the service via the
model registry), so the comparison isolates scheduling.  Results are
printed paper-style and written as JSON next to the other benches.
"""

import json
import os
import time

from benchmarks.conftest import print_table, scale
from repro.api import PipelineConfig, ServeConfig, TrainConfig
from repro.core import ChatPattern
from repro.serve import ModelKey, ModelRegistry, PatternService, ServeRequest

N_REQUESTS = 8
PATTERNS_PER_REQUEST = 2

REQUEST = (
    "Generate {count} legal patterns, {size}*{size} topology, physical "
    "size 2048nm * 2048nm, style {style}."
)


def _workload(window: int):
    styles = ("Layer-10001", "Layer-10003")
    count = PATTERNS_PER_REQUEST * scale()
    return [
        REQUEST.format(count=count, size=window, style=styles[i % 2])
        for i in range(N_REQUESTS)
    ]


def _run_sequential(model, texts):
    started = time.perf_counter()
    results = [
        ChatPattern(model=model, max_retries=1, base_seed=i).handle_request(text)
        for i, text in enumerate(texts)
    ]
    wall = time.perf_counter() - started
    produced = sum(r.produced for r in results)
    return {
        "wall_seconds": round(wall, 3),
        "produced": produced,
        "requests_per_sec": round(len(texts) / wall, 3),
    }


def _run_batched(model, texts):
    registry = ModelRegistry()
    key = ModelKey(window=model.window)
    registry.put(key, model)
    config = PipelineConfig(
        train=TrainConfig(window=model.window),
        serve=ServeConfig(
            gather_window=0.05, max_workers=N_REQUESTS, max_retries=1
        ),
    )
    service = PatternService.from_config(config, registry=registry)
    started = time.perf_counter()
    with service:
        responses = service.serve(
            [ServeRequest(text=text) for text in texts]
        )
    wall = time.perf_counter() - started
    stats = service.stats()
    return {
        "wall_seconds": round(wall, 3),
        "produced": stats.produced,
        "requests_per_sec": round(len(texts) / wall, 3),
        "max_batch_size": stats.scheduler.max_batch_size,
        "mean_batch_size": round(stats.scheduler.mean_batch_size, 2),
        "batches": stats.scheduler.batches,
        "samples_per_sec": round(stats.scheduler.samples_per_sec, 2),
        "registry_hits": stats.registry["hits"],
        "per_request": [r.stats.as_dict() for r in responses],
    }


def _run(chatpattern_model, output_dir):
    texts = _workload(chatpattern_model.window)
    sequential = _run_sequential(chatpattern_model, texts)
    batched = _run_batched(chatpattern_model, texts)
    payload = {
        "workload": {
            "requests": N_REQUESTS,
            "patterns_per_request": PATTERNS_PER_REQUEST * scale(),
            "window": chatpattern_model.window,
        },
        "sequential": sequential,
        "batched": batched,
        "speedup": round(
            sequential["wall_seconds"] / batched["wall_seconds"], 3
        ),
    }
    out_path = os.path.join(output_dir, "serve_throughput.json")
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2)

    print_table(
        "Serving throughput (8-request workload)",
        ["mode", "wall (s)", "req/s", "produced", "max batch"],
        [
            ["sequential handle_request", sequential["wall_seconds"],
             sequential["requests_per_sec"], sequential["produced"], 1],
            ["batched PatternService", batched["wall_seconds"],
             batched["requests_per_sec"], batched["produced"],
             batched["max_batch_size"]],
        ],
    )
    print(f"speedup: {payload['speedup']}x  (result JSON: {out_path})")
    return payload


def test_serve_throughput(benchmark, chatpattern_model, output_dir):
    payload = benchmark.pedantic(
        _run, args=(chatpattern_model, output_dir), rounds=1, iterations=1
    )
    # Micro-batching must actually coalesce work across requests ...
    assert payload["batched"]["max_batch_size"] > 1
    assert payload["batched"]["registry_hits"] == 1
    # ... and beat the sequential architecture on wall-clock.
    assert (
        payload["batched"]["wall_seconds"]
        < payload["sequential"]["wall_seconds"]
    )
    assert payload["sequential"]["produced"] > 0
    assert payload["batched"]["produced"] > 0
