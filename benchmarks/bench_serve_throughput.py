"""E11 — serving throughput: the layered engine vs the pre-serve paths.

Three measurements on one pre-fitted back-end:

- **sequential**: one ``ChatPattern.handle_request`` after another, each
  sub-task sampling the diffusion back-end in isolation (the pre-serve
  architecture);
- **batched**: the same workload concurrently through ``PatternService``,
  whose engine coalesces the sampling work of different requests into
  shared batched denoise trajectories.  The engine policy and worker pool
  come from ``REPRO_SERVE_POLICY`` / ``REPRO_ENGINE_WORKERS`` (defaults:
  greedy, 1 — the classic scheduler shape), which is how the CI smoke job
  exercises a non-default policy with two workers.  Responses must come
  back in request order regardless of how batches interleave.  Runs twice
  — once with the default (enabled) observability stack and once with it
  disabled — to gate the instrumentation tax under 5%, and records
  p50/p95 per-request latency plus busy-time/parallelism in the payload.
- **mixed-shape engine**: a staggered-arrival stream of interleaved-shape
  jobs straight into a ``ServeEngine`` under the ``shape_bucketed``
  policy, run with 1 and with 2 executor workers.  On a multi-core host
  the second worker must win (incompatible trajectories drain in
  parallel); on a single-core host parity within noise is the physical
  ceiling, so the gate only demands it not *lose*.
- **adaptive spike**: one identical burst of full-quality jobs into a
  ``greedy`` engine and into an ``adaptive`` engine with a tight p95 SLO.
  The adaptive policy must degrade sampler quality during the spike (so
  its p95 does not lose to greedy), then restore full quality once the
  burst drains — the self-tuning contract of ``repro.tune``.
- **process executor tier**: the same uniform-shape job stream through
  ``executor="process"`` with 1, 2 and 4 worker processes (shared-memory
  batch transport, models loaded from a disk registry by recipe hash),
  against a 2-thread run of the identical stream.  Process workers dodge
  the GIL, so on a >= 4-core host the 2-process run must beat 2 threads
  by >= 1.3x; on fewer cores the IPC tax has no parallelism to pay for
  it, so the gate is only a sanity bound against pathological slowdown.

Results are appended to ``BENCH_serve_throughput.json`` at the repo root;
a run FAILS if its speedups regress more than 25% against the committed
baseline (the first entry of the same workload class), mirroring the
sampling-throughput gate.  ``REPRO_SMOKE=1`` shrinks the workload for CI.
"""

import json
import os
import tempfile
import time
from datetime import datetime, timezone

import numpy as np

from benchmarks.conftest import print_table, scale
from repro.api import (
    ObsConfig,
    PipelineConfig,
    ServeConfig,
    TrainConfig,
    TuneConfig,
)
from repro.core import ChatPattern
from repro.data import DatasetConfig, STYLES, build_training_set
from repro.diffusion import ConditionalDiffusionModel, DiffusionSchedule
from repro.serve import (
    AdaptivePolicy,
    ModelKey,
    ModelRegistry,
    PatternService,
    ServeEngine,
    ServeRequest,
    leaked_segments,
)

SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")
WINDOW = 64 if SMOKE else 128
STEPS = 64
TRAIN_COUNT = 8 if SMOKE else 48
N_REQUESTS = 8
PATTERNS_PER_REQUEST = (1 if SMOKE else 2) * scale()
SERVICE_POLICY = os.environ.get("REPRO_SERVE_POLICY", "greedy")
SERVICE_ENGINE_WORKERS = int(os.environ.get("REPRO_ENGINE_WORKERS", "1"))
# Mixed-shape engine stream: interleaved (W, W) / (3W/4, 3W/4) jobs
# arriving gradually, as a real request stream does.
ENGINE_JOBS = 8 if SMOKE else 12
ENGINE_SAMPLES_PER_JOB = 2 * scale()
ENGINE_ARRIVAL_INTERVAL = 0.02 if SMOKE else 0.05
ENGINE_GATHER = 0.05 if SMOKE else 0.08
ENGINE_MAX_BATCH = 8
# Fail under this fraction of the committed speedup (smoke workloads carry
# more fixed overhead relative to throughput, so they get extra headroom).
REGRESSION_TOLERANCE = 0.5 if SMOKE else 0.75
# A second executor cannot beat the first without a second core; on a
# single-CPU host the gate only demands parity within scheduler noise.
CPUS = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
    os.cpu_count() or 1
)
WORKER_FLOOR = 1.0 if CPUS >= 2 else 0.75
# Process tier vs 2 threads: the spawn tier only pays off with real cores
# to spread over.  >= 4 cpus must deliver >= 1.3x.  Below that the tier is
# pure overhead — two processes time-slicing one core pay IPC, result
# copies and scheduler churn with nothing to buy back — so the gate is
# only a sanity bound that work still completes at the same order of
# magnitude.
PROCESS_WORKER_COUNTS = (1, 2, 4)
PROCESS_SPEEDUP_FLOOR = 1.3 if CPUS >= 4 else 0.2
# Adaptive spike: burst size and the controller knobs.  The SLO is set
# tight enough that a single worker cannot hold it at full quality, so
# the adaptive engine must degrade to keep p95 — and must not end the
# run degraded.
SPIKE_JOBS = 10 if SMOKE else 16
SPIKE_SAMPLES_PER_JOB = 1 if SMOKE else 2

RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_serve_throughput.json",
)

REQUEST = (
    "Generate {count} legal patterns, {size}*{size} topology, physical "
    "size 2048nm * 2048nm, style {style}."
)


def _build_model():
    topologies, conditions = build_training_set(
        list(STYLES),
        TRAIN_COUNT,
        DatasetConfig(topology_size=WINDOW, seed=2024),
    )
    model = ConditionalDiffusionModel(
        schedule=DiffusionSchedule.linear(STEPS, 0.003, 0.08),
        window=WINDOW,
        n_classes=len(STYLES),
    )
    model.fit(topologies, conditions, np.random.default_rng(0))
    return model


def _workload(window):
    styles = ("Layer-10001", "Layer-10003")
    return [
        REQUEST.format(
            count=PATTERNS_PER_REQUEST, size=window, style=styles[i % 2]
        )
        for i in range(N_REQUESTS)
    ]


def _run_sequential(model, texts):
    started = time.perf_counter()
    results = [
        ChatPattern(model=model, max_retries=1, base_seed=i).handle_request(text)
        for i, text in enumerate(texts)
    ]
    wall = time.perf_counter() - started
    produced = sum(r.produced for r in results)
    return {
        "wall_seconds": round(wall, 3),
        "produced": produced,
        "requests_per_sec": round(len(texts) / wall, 3),
    }


def _run_batched(model, texts, obs_enabled=True):
    registry = ModelRegistry()
    key = ModelKey(window=model.window)
    registry.put(key, model)
    config = PipelineConfig(
        train=TrainConfig(window=model.window),
        serve=ServeConfig(
            gather_window=0.05,
            max_workers=N_REQUESTS,
            max_retries=1,
            policy=SERVICE_POLICY,
            engine_workers=SERVICE_ENGINE_WORKERS,
        ),
        obs=ObsConfig(enabled=obs_enabled),
    )
    service = PatternService.from_config(config, registry=registry)
    started = time.perf_counter()
    with service:
        responses = service.serve(
            [
                ServeRequest(text=text, source=f"client-{i % 2}")
                for i, text in enumerate(texts)
            ]
        )
    wall = time.perf_counter() - started
    # The order contract: responses come back in request order no matter
    # how the policy/pool interleaved their sampling.
    response_ids = [r.request.request_id for r in responses]
    stats = service.stats()
    walls = [r.stats.wall_seconds for r in responses]
    return {
        "wall_seconds": round(wall, 3),
        "produced": stats.produced,
        "requests_per_sec": round(len(texts) / wall, 3),
        "request_latency_p50": round(float(np.percentile(walls, 50)), 3),
        "request_latency_p95": round(float(np.percentile(walls, 95)), 3),
        "max_batch_size": stats.scheduler.max_batch_size,
        "mean_batch_size": round(stats.scheduler.mean_batch_size, 2),
        "batches": stats.scheduler.batches,
        "samples_per_sec": round(stats.scheduler.samples_per_sec, 2),
        "busy_seconds": round(stats.scheduler.busy_seconds, 3),
        "parallelism": round(stats.scheduler.parallelism, 2),
        "registry_hits": stats.registry["hits"],
        "policy": SERVICE_POLICY,
        "engine_workers": SERVICE_ENGINE_WORKERS,
        "obs_enabled": obs_enabled,
        "in_order": response_ids == sorted(response_ids),
        "per_request": [r.stats.as_dict() for r in responses],
    }


def _run_engine_stream(model, engine_workers):
    """Mixed-shape staggered stream through the engine, N workers."""
    engine = ServeEngine(
        policy="shape_bucketed",
        engine_workers=engine_workers,
        gather_window=ENGINE_GATHER,
        max_batch=ENGINE_MAX_BATCH,
    )
    client = engine.bind(model)
    small = (WINDOW * 3 // 4, WINDOW * 3 // 4)
    jobs = []
    started = time.perf_counter()
    with engine:
        for i in range(ENGINE_JOBS):
            jobs.append(
                client.submit(
                    ENGINE_SAMPLES_PER_JOB,
                    i % 2,
                    shape=(WINDOW, WINDOW) if i % 2 == 0 else small,
                    seed=i,
                )
            )
            time.sleep(ENGINE_ARRIVAL_INTERVAL)
        for job in jobs:
            job.result(timeout=600)
    wall = time.perf_counter() - started
    stats = engine.stats()
    total = ENGINE_JOBS * ENGINE_SAMPLES_PER_JOB
    return {
        "wall_seconds": round(wall, 3),
        "engine_workers": engine_workers,
        "samples": total,
        "samples_per_sec": round(total / wall, 2),
        "batches": stats.scheduler.batches,
        "max_batch_size": stats.scheduler.max_batch_size,
        "workers_used": len(
            {record.worker for record in engine.batch_records}
        ),
    }


def _run_executor_stream(model, registry, key, executor, workers):
    """Uniform-shape job stream through one executor tier, N workers."""
    engine = ServeEngine(
        registry=registry,
        executor=executor,
        engine_workers=workers,
        gather_window=ENGINE_GATHER,
        max_batch=ENGINE_MAX_BATCH,
    )
    client = engine.bind(model, key=key)
    with engine:
        # Warm dispatch before the clock starts: absorbs the per-worker
        # model load on the process tier (worker spawn already happened
        # inside engine.start()).
        client.submit(1, 0, seed=10_000).result(timeout=600)
        started = time.perf_counter()
        jobs = [
            client.submit(ENGINE_SAMPLES_PER_JOB, i % 2, seed=i)
            for i in range(ENGINE_JOBS)
        ]
        for job in jobs:
            job.result(timeout=600)
        wall = time.perf_counter() - started
    total = ENGINE_JOBS * ENGINE_SAMPLES_PER_JOB
    return {
        "wall_seconds": round(wall, 3),
        "executor": executor,
        "engine_workers": workers,
        "samples": total,
        "samples_per_sec": round(total / wall, 2),
        "workers_used": len(
            {record.worker for record in engine.batch_records}
        ),
    }


def _measure_spike(model, policy, tune_config=None):
    """One burst of full-quality jobs; per-job latency percentiles."""
    engine = ServeEngine(
        policy=(
            AdaptivePolicy(config=tune_config)
            if policy == "adaptive"
            else policy
        ),
        gather_window=0.01,
        max_batch=ENGINE_MAX_BATCH,
    )
    client = engine.bind(model)
    with engine:
        # Warm dispatch outside the clock.
        client.submit(1, 0, seed=10_000).result(timeout=600)
        submitted = []
        jobs = []
        for i in range(SPIKE_JOBS):
            submitted.append(time.perf_counter())
            jobs.append(client.submit(SPIKE_SAMPLES_PER_JOB, i % 2, seed=i))
        latencies = []
        for at, job in zip(submitted, jobs):
            job.result(timeout=600)
            latencies.append(time.perf_counter() - at)
        degraded = sum(1 for job in jobs if job.degrade_level > 0)
        restored = True
        tail_degraded = 0
        if policy == "adaptive":
            # The calm tail: idle ticks must walk the level back to 0,
            # after which a new job runs at full requested quality.
            controller = engine.policy.controller
            deadline = time.time() + 30
            while controller.level > 0 and time.time() < deadline:
                time.sleep(0.02)
            restored = controller.level == 0
            tail = client.submit(SPIKE_SAMPLES_PER_JOB, 0, seed=9_999)
            tail.result(timeout=600)
            tail_degraded = tail.degrade_level
    result = {
        "policy": policy,
        "jobs": SPIKE_JOBS,
        "latency_p50": round(float(np.percentile(latencies, 50)), 3),
        "latency_p95": round(float(np.percentile(latencies, 95)), 3),
        "degraded_jobs": degraded,
        "restored": restored,
        "tail_degrade_level": tail_degraded,
    }
    if policy == "adaptive":
        controller = engine.policy.controller
        result["degrades"] = controller.degrades
        result["restores"] = controller.restores
    return result


def _run_adaptive_spike(model):
    """Greedy vs adaptive on one identical burst, tight p95 SLO."""
    greedy = _measure_spike(model, "greedy")
    # SLO set from the measured full-quality p95: tight enough that the
    # controller must react, loose enough to be holdable degraded.
    tune = TuneConfig(
        slo_p95=max(0.2, greedy["latency_p95"] * 0.5),
        degrade_ladder=("bucketed",),
        degrade_after=1,
        restore_after=2,
        queue_high=2,
        queue_low=1,
        tick_interval=0.005,
    )
    adaptive = _measure_spike(model, "adaptive", tune)
    return {
        "greedy": greedy,
        "adaptive": adaptive,
        "slo_p95": round(tune.slo_p95, 3),
        # >= 1.0 means adaptive's p95 was no worse than greedy's.
        "p95_ratio": round(
            greedy["latency_p95"] / max(adaptive["latency_p95"], 1e-9), 3
        ),
    }


def _run_process_tier(model):
    """Thread-vs-process scaling on one identical stream (1/2/4 procs)."""
    key = ModelKey(window=model.window)
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache:
        registry = ModelRegistry(save_dir=cache)
        registry.put(key, model)
        thread_2 = _run_executor_stream(model, registry, key, "thread", 2)
        process = {
            workers: _run_executor_stream(
                model, registry, key, "process", workers
            )
            for workers in PROCESS_WORKER_COUNTS
        }
    return thread_2, process


def _speedup(slow, fast):
    return round(slow["wall_seconds"] / max(fast["wall_seconds"], 1e-9), 3)


def _load_history():
    if not os.path.exists(RESULT_PATH):
        return {"benchmark": "serve_throughput", "history": []}
    with open(RESULT_PATH) as handle:
        return json.load(handle)


def _check_regression(payload, history):
    """Compare against the FIRST entry of the same workload class.

    Anchoring on the committed first entry (not the latest run) keeps the
    gate from ratcheting downward as later runs are appended.  Speedup
    *ratios* are compared — close to machine-independent — and the
    multi-worker ratio only against anchors of the same core class (a
    single-core anchor says nothing about a multi-core runner).
    """
    same = [
        entry for entry in history["history"]
        if entry.get("smoke") == payload["smoke"]
    ]
    if not same:
        return []
    anchor = same[0]
    failures = []
    floor = anchor["speedup_batched"] * REGRESSION_TOLERANCE
    if payload["speedup_batched"] < floor:
        failures.append(
            f"speedup_batched {payload['speedup_batched']}x regressed "
            f"against the committed {anchor['speedup_batched']}x "
            f"(floor {floor:.2f}x)"
        )
    if min(anchor.get("cpus", 1), 2) == min(payload["cpus"], 2):
        floor = anchor["speedup_workers"] * REGRESSION_TOLERANCE
        if payload["speedup_workers"] < floor:
            failures.append(
                f"speedup_workers {payload['speedup_workers']}x regressed "
                f"against the committed {anchor['speedup_workers']}x "
                f"(floor {floor:.2f}x)"
            )
    # Process-tier ratio: only against anchors that have one (older
    # history entries predate the executor tier) and of the same core
    # class — a single-core anchor says nothing about a multi-core run.
    # Adaptive spike: the p95 ratio vs greedy must not collapse against
    # the committed anchor (older entries predate the adaptive policy,
    # hence the .get guards).
    anchor_spike = (anchor.get("adaptive_spike") or {}).get("p95_ratio")
    payload_spike = (payload.get("adaptive_spike") or {}).get("p95_ratio")
    if anchor_spike and payload_spike is not None:
        floor = anchor_spike * REGRESSION_TOLERANCE
        if payload_spike < floor:
            failures.append(
                f"adaptive spike p95_ratio {payload_spike}x regressed "
                f"against the committed {anchor_spike}x "
                f"(floor {floor:.2f}x)"
            )
    anchor_process = anchor.get("speedup_process")
    if anchor_process and min(anchor.get("cpus", 1), 4) == min(
        payload["cpus"], 4
    ):
        floor = anchor_process * REGRESSION_TOLERANCE
        if payload["speedup_process"] < floor:
            failures.append(
                f"speedup_process {payload['speedup_process']}x regressed "
                f"against the committed {anchor_process}x "
                f"(floor {floor:.2f}x)"
            )
    return failures


def _run(output_dir):
    model = _build_model()
    model.sample(1, 0, np.random.default_rng(0))  # warm-up outside timing

    texts = _workload(model.window)
    sequential = _run_sequential(model, texts)
    batched = _run_batched(model, texts)
    batched_noobs = _run_batched(model, texts, obs_enabled=False)
    engine_single = _run_engine_stream(model, 1)
    engine_multi = _run_engine_stream(model, 2)
    adaptive_spike = _run_adaptive_spike(model)
    thread_tier, process_tiers = _run_process_tier(model)

    payload = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "smoke": SMOKE,
        "cpus": CPUS,
        "workload": {
            "requests": N_REQUESTS,
            "patterns_per_request": PATTERNS_PER_REQUEST,
            "window": model.window,
            "steps": STEPS,
            "service_policy": SERVICE_POLICY,
            "service_engine_workers": SERVICE_ENGINE_WORKERS,
            "engine_jobs": ENGINE_JOBS,
            "engine_samples_per_job": ENGINE_SAMPLES_PER_JOB,
        },
        "sequential": sequential,
        "batched": batched,
        "batched_noobs": batched_noobs,
        "engine_single": engine_single,
        "engine_multi": engine_multi,
        "adaptive_spike": adaptive_spike,
        "thread_tier_2": thread_tier,
        "process_tiers": {
            str(workers): result
            for workers, result in process_tiers.items()
        },
        "speedup_batched": _speedup(sequential, batched),
        "speedup_workers": _speedup(engine_single, engine_multi),
        # 2 process workers vs 2 threads on the identical stream: the
        # executor-tier headline number.
        "speedup_process": _speedup(thread_tier, process_tiers[2]),
        # Observability tax: the instrumented service vs the identical
        # workload with obs disabled (null metrics/tracer).  May come out
        # negative — the runs differ only by scheduler noise plus a few
        # counter increments per job.
        "obs_overhead_pct": round(
            (batched["wall_seconds"] - batched_noobs["wall_seconds"])
            / max(batched_noobs["wall_seconds"], 1e-9) * 100.0,
            1,
        ),
    }

    history = _load_history()
    regressions = _check_regression(payload, history)
    history["history"].append(payload)
    with open(RESULT_PATH, "w") as handle:
        json.dump(history, handle, indent=2)
        handle.write("\n")
    # Mirror next to the other bench outputs for convenience.
    with open(os.path.join(output_dir, "serve_throughput.json"), "w") as handle:
        json.dump(payload, handle, indent=2)

    print_table(
        f"Serving throughput ({N_REQUESTS}-request workload, "
        f"policy={SERVICE_POLICY}, engine_workers={SERVICE_ENGINE_WORKERS})",
        ["mode", "wall (s)", "req/s", "produced", "max batch"],
        [
            ["sequential handle_request", sequential["wall_seconds"],
             sequential["requests_per_sec"], sequential["produced"], 1],
            ["batched PatternService", batched["wall_seconds"],
             batched["requests_per_sec"], batched["produced"],
             batched["max_batch_size"]],
            ["batched (obs disabled)", batched_noobs["wall_seconds"],
             batched_noobs["requests_per_sec"], batched_noobs["produced"],
             batched_noobs["max_batch_size"]],
        ],
    )
    print(
        f"request latency p50/p95: {batched['request_latency_p50']}s / "
        f"{batched['request_latency_p95']}s, busy {batched['busy_seconds']}s "
        f"over {batched['wall_seconds']}s wall "
        f"(parallelism {batched['parallelism']}x), "
        f"obs overhead: {payload['obs_overhead_pct']}%"
    )
    print_table(
        f"Mixed-shape engine stream ({ENGINE_JOBS} jobs, shape_bucketed, "
        f"{CPUS} cpu(s))",
        ["engine_workers", "wall (s)", "samples/s", "batches", "workers used"],
        [
            [1, engine_single["wall_seconds"],
             engine_single["samples_per_sec"], engine_single["batches"],
             engine_single["workers_used"]],
            [2, engine_multi["wall_seconds"],
             engine_multi["samples_per_sec"], engine_multi["batches"],
             engine_multi["workers_used"]],
        ],
    )
    spike = payload["adaptive_spike"]
    print_table(
        f"Adaptive spike ({SPIKE_JOBS}-job burst, "
        f"SLO p95 <= {spike['slo_p95']}s)",
        ["policy", "p50 (s)", "p95 (s)", "degraded", "restored"],
        [
            ["greedy", spike["greedy"]["latency_p50"],
             spike["greedy"]["latency_p95"],
             spike["greedy"]["degraded_jobs"], "-"],
            ["adaptive", spike["adaptive"]["latency_p50"],
             spike["adaptive"]["latency_p95"],
             spike["adaptive"]["degraded_jobs"],
             spike["adaptive"]["restored"]],
        ],
    )
    print_table(
        f"Executor tiers ({ENGINE_JOBS}-job uniform stream, {CPUS} cpu(s))",
        ["tier", "wall (s)", "samples/s", "workers used"],
        [
            ["thread x2", thread_tier["wall_seconds"],
             thread_tier["samples_per_sec"], thread_tier["workers_used"]],
        ] + [
            [f"process x{workers}", result["wall_seconds"],
             result["samples_per_sec"], result["workers_used"]]
            for workers, result in process_tiers.items()
        ],
    )
    print(
        f"batched speedup: {payload['speedup_batched']}x, "
        f"2-worker speedup: {payload['speedup_workers']}x, "
        f"2-process vs 2-thread: {payload['speedup_process']}x  "
        f"(history: {RESULT_PATH})"
    )
    payload["regressions"] = regressions
    return payload


def test_serve_throughput(benchmark, output_dir):
    payload = benchmark.pedantic(
        _run, args=(output_dir,), rounds=1, iterations=1
    )
    batched = payload["batched"]
    # Responses arrive in request order (the CI smoke job's key assert).
    assert batched["in_order"]
    # Micro-batching must actually coalesce work across requests ...
    assert batched["max_batch_size"] > 1
    assert batched["registry_hits"] == 1
    # Per-request latency percentiles land in the committed history file.
    assert 0 < batched["request_latency_p50"] <= batched["request_latency_p95"]
    # Observability must be near-free: under a 5% wall tax against the
    # identical obs-disabled workload, with a small absolute allowance for
    # scheduler noise on short smoke runs.
    assert batched["wall_seconds"] <= (
        payload["batched_noobs"]["wall_seconds"] * 1.05 + 0.3
    ), f"obs overhead {payload['obs_overhead_pct']}%"
    # ... and beat the sequential architecture on wall-clock.
    assert payload["speedup_batched"] > 1.0
    assert payload["sequential"]["produced"] > 0
    assert batched["produced"] > 0
    # The second executor must pay for itself: a strict win with >= 2
    # cores, no worse than parity-within-noise on a single-core host.
    assert payload["speedup_workers"] >= WORKER_FLOOR, payload[
        "speedup_workers"
    ]
    if CPUS >= 2:
        assert payload["speedup_workers"] > 1.0, payload["speedup_workers"]
    # Both executors must have actually drained batches in the 2-worker run.
    assert payload["engine_multi"]["workers_used"] == 2
    # Process tier: every run produced its samples, the shutdown left no
    # shared-memory segments, and the 2-process run clears its cpu-aware
    # floor against 2 threads (>= 1.3x with >= 4 cores; a sanity bound
    # where there is no parallelism for the IPC tax to buy back).
    for result in payload["process_tiers"].values():
        assert result["samples"] > 0
        assert result["workers_used"] >= 1
    # Adaptive spike: quality degraded during the burst, p95 no worse
    # than greedy (with noise headroom), and full quality restored after.
    spike = payload["adaptive_spike"]
    assert spike["adaptive"]["degraded_jobs"] > 0, spike
    assert spike["adaptive"]["restored"], spike
    assert spike["adaptive"]["tail_degrade_level"] == 0, spike
    assert spike["greedy"]["degraded_jobs"] == 0
    assert spike["p95_ratio"] >= 0.9, spike
    assert leaked_segments() == []
    assert (
        payload["speedup_process"] >= PROCESS_SPEEDUP_FLOOR
    ), payload["speedup_process"]
    # No >25% regression against the committed baseline.
    assert not payload["regressions"], payload["regressions"]
