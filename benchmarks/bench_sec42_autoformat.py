"""E8 — Section 4.2 / Figure 4: requirement auto-formatting.

Feeds the paper's running example to the LLM agent and prints the standard
requirement lists it produces; verifies the decomposition matches the
paper's (two sub-tasks, counts split, physical size preserved, extension
method only where the topology exceeds the model window).
"""

from repro.agent import SimulatedLLM, TaskPlanner

RUNNING_EXAMPLE = (
    "Generate a layout pattern library, there are 100k layout patterns in "
    "total. The physical size fixed as 1.5um * 1.5um. The topology size "
    "should be chosen from 200*200 and 500*500. They should be in style of "
    "'Layer-10001'."
)


def _autoformat():
    planner = TaskPlanner(SimulatedLLM(), window=128)
    plan = planner.auto_format(RUNNING_EXAMPLE)
    print("\n=== Section 4.2: requirement auto-formatting ===")
    print(f"user requirement: {RUNNING_EXAMPLE}\n")
    for req in plan.requirements:
        print(req.to_text())
        print()
    for warning in plan.warnings:
        print(f"[planner] {warning}")
    return plan


def test_sec42_autoformat(benchmark):
    plan = benchmark.pedantic(_autoformat, rounds=1, iterations=1)
    assert len(plan.requirements) == 2
    assert plan.total_count == 100_000
    sizes = {r.topology_size for r in plan.requirements}
    assert sizes == {(200, 200), (500, 500)}
    assert all(r.physical_size == (1500, 1500) for r in plan.requirements)
    assert all(r.style == "Layer-10001" for r in plan.requirements)
    assert all(r.extension_method == "Out" for r in plan.requirements)
    assert all(r.drop_allowed for r in plan.requirements)
