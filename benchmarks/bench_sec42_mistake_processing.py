"""E9 — Section 4.2: unseen mistake-processing.

Reproduces the paper's case study: a pattern repeatedly fails legalization;
the agent — whose standard pipeline does *not* pre-code this recovery —
reads the failure log, localises the error region and issues a
``Topology_Modification`` on exactly that region before retrying.

The scenario plants a corner-touch defect (unfixable by any geometry
assignment) into an otherwise healthy topology, guaranteeing a localised
failure log.  The trace printed below mirrors the paper's Thought / Action
/ Action Input excerpt.
"""

import numpy as np

from repro.agent import (
    AgentTools,
    RequirementList,
    SimulatedLLM,
    TaskExecutor,
    Workspace,
)
from repro.metrics import physical_size_for


class SabotagedTools(AgentTools):
    """Tool suite whose generator plants a corner defect in tile 0.

    Models the paper's situation where a particular topology repeatedly
    fails legalization: the defect survives regeneration (it is planted
    again) but *is* removed by Topology_Modification on the right region,
    because modification re-paints through the model.
    """

    def __init__(self, model, workspace, defect_at=(60, 60)):
        super().__init__(model, workspace, base_seed=17)
        self.defect_at = defect_at
        self.planted = 0

    def topology_generation(self, seed, style, size=None):
        result = super().topology_generation(seed, style, size)
        if result.ok:
            topo = self.workspace.get(result.data["topology_path"])
            r, c = self.defect_at
            topo[r - 2 : r, c - 2 : c] = 1
            topo[r : r + 2, c : c + 2] = 1
            topo[r - 2 : r, c : c + 2] = 0
            topo[r : r + 2, c - 2 : c] = 0
            self.planted += 1
        return result


def _run(chatpattern_model):
    tools = SabotagedTools(chatpattern_model, Workspace())
    backend = SimulatedLLM()
    executor = TaskExecutor(tools, backend, max_retries=2)
    requirement = RequirementList(
        topology_size=(chatpattern_model.window,) * 2,
        physical_size=physical_size_for((chatpattern_model.window,) * 2),
        style="Layer-10001",
        count=2,
        seed=3,
    )
    report = executor.execute(requirement)
    print("\n=== Section 4.2: unseen mistake-processing ===")
    print(f"planted corner defects: {tools.planted}")
    for step in report.decisions:
        print(f"\nThought: {step.thought}")
        print(f"Action: {step.action}")
        print(f"Action Input: {step.action_input}")
    print(f"\n{report.summary()}")
    return report


def test_sec42_mistake_processing(benchmark, chatpattern_model):
    report = benchmark.pedantic(
        _run, args=(chatpattern_model,), rounds=1, iterations=1
    )
    # The agent must have used modification (not just dropped).
    assert report.modifications >= 1
    actions = {d.action for d in report.decisions}
    assert "Topology_Modification" in actions
    # Every modification decision carries a concrete region + style.
    for step in report.decisions:
        if step.action == "Topology_Modification":
            assert {"upper", "left", "bottom", "right"} <= set(step.action_input)
            assert step.action_input.get("style") == "Layer-10001"
    # Recovery succeeded for at least one pattern.
    assert report.produced >= 1
