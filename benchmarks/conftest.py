"""Shared benchmark fixtures: trained back-ends and scale knobs.

Every experiment honours two environment variables:

- ``REPRO_SAMPLES``: per-cell sample count multiplier (default 1).  The
  paper uses 10,000 samples per class; the default bench scale keeps the
  full suite in CPU minutes.  Set e.g. ``REPRO_SAMPLES=10`` to scale every
  count by 10x.
- ``REPRO_K``: reverse-chain length used at sampling time (default 64 for
  the free-size benches; the trained denoisers are noise-level indexed so
  any K works).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.data import DatasetConfig, STYLES, build_training_set
from repro.diffusion import ConditionalDiffusionModel, DiffusionSchedule


def scale() -> int:
    return max(1, int(os.environ.get("REPRO_SAMPLES", "1")))


def sampling_steps() -> int:
    return max(8, int(os.environ.get("REPRO_K", "64")))


@pytest.fixture(scope="session")
def train_data():
    """Mixed two-style 128x128 training set (96 tiles per style)."""
    return build_training_set(
        list(STYLES), 96, DatasetConfig(topology_size=128, seed=2024)
    )


@pytest.fixture(scope="session")
def chatpattern_model(train_data):
    """The class-conditional ChatPattern back-end at window=128."""
    topologies, conditions = train_data
    model = ConditionalDiffusionModel(
        schedule=DiffusionSchedule.linear(sampling_steps(), 0.003, 0.08),
        window=128,
        n_classes=2,
    )
    model.fit(topologies, conditions, np.random.default_rng(0))
    return model


@pytest.fixture(scope="session")
def per_style_models(train_data):
    """Unconditional DiffPattern back-ends, one per style."""
    from repro.baselines import DiffPattern

    topologies, conditions = train_data
    models = {}
    for idx, style in enumerate(STYLES):
        dp = DiffPattern(
            window=128,
            schedule=DiffusionSchedule.linear(sampling_steps(), 0.003, 0.08),
        )
        dp.fit(topologies[conditions == idx], np.random.default_rng(idx))
        models[style] = dp
    return models


@pytest.fixture(scope="session")
def output_dir():
    path = os.path.join(os.path.dirname(__file__), "out")
    os.makedirs(path, exist_ok=True)
    return path


def print_table(title: str, header: list, rows: list) -> None:
    """Uniform table printer for every bench's paper-style output."""
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(header))
    ]
    line = " | ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))
