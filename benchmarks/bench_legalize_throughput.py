"""E12 — legalize/DRC throughput: reference loop vs vectorized batch engine.

The acceptance experiment for the vectorized DRC/legalization engine: a
mixed two-style batch of dataset topologies is legalized three ways —

- **sequential reference**: one :func:`repro.legalize.legalizer.legalize`
  call after another with ``engine="reference"``, the original scalar
  per-run/per-polygon implementation (the pre-engine architecture);
- **sequential vectorized**: the same loop on the vectorized engine
  (``legalize_many`` with one worker) — isolates the NumPy run/DRC rewrite;
- **parallel vectorized**: ``legalize_many`` on its thread pool — the full
  batch-legalization stage ``PatternService.legalize_and_store`` runs.

All three paths must agree on every legality outcome; the combined engine +
fan-out speedup is asserted to be >= 3x.  ``REPRO_SMOKE=1`` shrinks the
workload to CI-smoke size and drops the speedup floor (tiny batches measure
thread overhead, not throughput).
"""

import json
import os
import time

from benchmarks.conftest import print_table, scale
from repro.data import STYLES, DatasetConfig, build_training_set
from repro.drc.rules import rules_for_style
from repro.legalize.legalizer import legalize
from repro.metrics import default_legalize_workers, legalize_many

SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")
PER_STYLE = 4 if SMOKE else 24 * scale()
TOPOLOGY_SIZE = 64 if SMOKE else 128
SPEEDUP_FLOOR = 3.0


def _workload():
    per_style = {}
    for style in STYLES:
        topologies, _ = build_training_set(
            [style],
            PER_STYLE,
            DatasetConfig(topology_size=TOPOLOGY_SIZE, seed=2024),
        )
        per_style[style] = list(topologies)
    return per_style


def _run_sequential_reference(per_style):
    started = time.perf_counter()
    legal = 0
    total = 0
    for style, topologies in per_style.items():
        rules = rules_for_style(style)
        for topology in topologies:
            total += 1
            size = TOPOLOGY_SIZE * 16  # matches physical_size_for scaling
            result = legalize(
                topology, (size, size), rules, style=style, engine="reference"
            )
            legal += int(result.ok)
    wall = time.perf_counter() - started
    return {"wall_seconds": round(wall, 3), "legal": legal, "total": total}


def _run_batched(per_style, max_workers):
    started = time.perf_counter()
    legal = 0
    total = 0
    for style, topologies in per_style.items():
        result = legalize_many(topologies, style, max_workers=max_workers)
        legal += len(result.legal)
        total += result.total
    wall = time.perf_counter() - started
    return {"wall_seconds": round(wall, 3), "legal": legal, "total": total}


def _run(output_dir):
    per_style = _workload()
    workers = default_legalize_workers()
    reference = _run_sequential_reference(per_style)
    vectorized = _run_batched(per_style, max_workers=1)
    parallel = _run_batched(per_style, max_workers=workers)

    def _speedup(base, new):
        return round(base["wall_seconds"] / max(new["wall_seconds"], 1e-9), 3)

    payload = {
        "workload": {
            "topologies": reference["total"],
            "topology_size": TOPOLOGY_SIZE,
            "styles": list(per_style),
            "workers": workers,
            "smoke": SMOKE,
        },
        "sequential_reference": reference,
        "sequential_vectorized": vectorized,
        "parallel_vectorized": parallel,
        "vectorize_speedup": _speedup(reference, vectorized),
        "total_speedup": _speedup(reference, parallel),
    }
    out_path = os.path.join(output_dir, "legalize_throughput.json")
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2)

    n = reference["total"]
    print_table(
        f"Batch DRC+legalization throughput ({n} topologies)",
        ["mode", "wall (s)", "patterns/s", "legal"],
        [
            ["sequential reference", reference["wall_seconds"],
             round(n / max(reference["wall_seconds"], 1e-9), 1),
             reference["legal"]],
            ["sequential vectorized", vectorized["wall_seconds"],
             round(n / max(vectorized["wall_seconds"], 1e-9), 1),
             vectorized["legal"]],
            [f"parallel vectorized (x{workers})", parallel["wall_seconds"],
             round(n / max(parallel["wall_seconds"], 1e-9), 1),
             parallel["legal"]],
        ],
    )
    print(
        f"vectorize speedup: {payload['vectorize_speedup']}x, "
        f"total speedup: {payload['total_speedup']}x  "
        f"(result JSON: {out_path})"
    )
    return payload


def test_legalize_throughput(benchmark, output_dir):
    payload = benchmark.pedantic(
        _run, args=(output_dir,), rounds=1, iterations=1
    )
    # Every path must agree on what is legal — the engines are equivalent.
    assert (
        payload["sequential_reference"]["legal"]
        == payload["sequential_vectorized"]["legal"]
        == payload["parallel_vectorized"]["legal"]
    )
    assert payload["sequential_reference"]["total"] > 0
    if SMOKE:
        # Tiny batches measure overhead, not throughput; just prove the
        # pipeline runs end to end.
        assert payload["total_speedup"] > 0
    else:
        assert payload["total_speedup"] >= SPEEDUP_FLOOR
