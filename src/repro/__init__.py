"""ChatPattern reproduction: layout pattern customization via natural language.

This package reproduces *ChatPattern: Layout Pattern Customization via
Natural Language* (DAC 2024).  It contains:

- ``repro.geometry`` / ``repro.squish``: rectilinear layout geometry and the
  squish-pattern representation (topology matrix + delta vectors).
- ``repro.drc`` / ``repro.legalize``: design-rule checking and the
  DiffPattern-style non-linear legalization ``f_R(F, T)``.
- ``repro.diffusion``: a pure-numpy conditional discrete diffusion model
  (D3PM, 2-state) with trainable denoisers.
- ``repro.ops``: pattern modification (RePaint-style) and free-size pattern
  extension via In-Painting / Out-Painting.
- ``repro.baselines``: CAE, VCAE, LegalGAN, LayouTransformer and DiffPattern
  baselines used in Table 1.
- ``repro.agent``: the expert LLM agent front-end (requirement
  auto-formatting, task planning, tool execution, failure recovery).
- ``repro.core``: the ``ChatPattern`` facade tying everything together.
- ``repro.api``: the typed-config pipeline behind every entrypoint
  (``PipelineConfig`` -> ``PatternPipeline``), with a persistent model
  cache.
"""

from repro.api.config import PipelineConfig
from repro.api.pipeline import PatternPipeline
from repro.core.chatpattern import ChatPattern

__all__ = ["ChatPattern", "PatternPipeline", "PipelineConfig"]
__version__ = "1.1.0"
