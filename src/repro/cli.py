"""Command-line interface for the ChatPattern reproduction.

Subcommands:

- ``chat``     — natural-language library building (the headline flow).
- ``serve``    — many requests at once through the micro-batching service.
- ``generate`` — sample fixed-size topologies of one style and legalize.
- ``extend``   — free-size synthesis via in/out-painting.
- ``evaluate`` — legality/diversity report for a saved library.
- ``export``   — convert a saved library to GDSII.
- ``stats``    — summarize a metrics snapshot written by ``serve
  --metrics-snapshot`` (JSON or Prometheus text exposition); with
  ``--watch SECS`` it re-renders as a live dashboard.
- ``tune``     — offline autotuner: race serve-knob candidates over a
  seeded workload spec (successive halving on the deterministic engine
  simulator) and emit a tuned pipeline config plus a trial report.

Every subcommand is a thin shell over the typed pipeline API
(:class:`repro.api.PipelineConfig` -> :class:`repro.api.PatternPipeline`):
``--config pipeline.json`` loads a full pipeline description, individual
flags override it, and ``--model-cache DIR`` persists the fitted back-end
on disk so repeated invocations skip training::

    python -m repro.cli chat "Generate 6 patterns ..." -o library.npz
    python -m repro.cli generate --count 4 --model-cache ~/.cache/repro
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.api.config import SERVE_EXECUTORS, SERVE_POLICIES, PipelineConfig
from repro.api.pipeline import PatternPipeline
from repro.data import STYLES
from repro.diffusion.schedule import validate_sampler_steps
from repro.io.render import ascii_art
from repro.io.store import load_library
from repro.metrics.stats import library_stats

def _sampler_steps_arg(value: str):
    """Parse ``--sampler-steps``: 'full' | 'bucketed' | a step count."""
    try:
        spec = int(value)
    except ValueError:
        spec = value
    try:
        return validate_sampler_steps(spec)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


_GLOBAL_OPTIONS = (
    (
        "--config",
        {"metavar": "PIPELINE_JSON",
         "help": "pipeline config file (see repro.api.PipelineConfig)"},
    ),
    (
        "--model-cache",
        {"metavar": "DIR",
         "help": "persistent fitted-model cache; a second run with the "
                 "same training recipe loads the model instead of "
                 "retraining"},
    ),
    (
        "--train-count",
        {"type": int,
         "help": "training tiles per style for the diffusion back-end "
                 "(default 48)"},
    ),
    ("--seed", {"type": int, "help": "training/sampling seed (default 2024)"}),
    (
        "--sampler-steps",
        {"type": _sampler_steps_arg, "metavar": "SPEC",
         "help": "reverse-step schedule: 'full' (every step), 'bucketed' "
                 "(one step per denoiser noise bucket, ~8x fewer denoiser "
                 "evaluations), or an integer step count"},
    ),
)


def _add_global_options(parser: argparse.ArgumentParser, root: bool) -> None:
    """Install the shared options on the root parser and every subparser.

    The subparser copies default to ``SUPPRESS`` so ``repro generate
    --model-cache DIR`` (flag after the subcommand) works without a
    subcommand's unset flag clobbering a value parsed before it.
    """
    for flag, kwargs in _GLOBAL_OPTIONS:
        parser.add_argument(
            flag,
            default=None if root else argparse.SUPPRESS,
            **kwargs,
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ChatPattern: layout pattern customization via natural language",
    )
    _add_global_options(parser, root=True)
    sub = parser.add_subparsers(dest="command", required=True)

    chat = sub.add_parser("chat", help="handle a natural-language request")
    chat.add_argument("request", help="the requirement, in English")
    chat.add_argument("-o", "--output", help="save the library (.npz)")
    chat.add_argument(
        "--objective", choices=("legality", "diversity"), default=None
    )

    srv = sub.add_parser(
        "serve", help="serve many requests through the batched scheduler"
    )
    srv.add_argument(
        "requests", nargs="*", help="requirement texts, one per request"
    )
    srv.add_argument(
        "--requests-file",
        help="file with one request per line ('#' lines are comments)",
    )
    srv.add_argument(
        "--objective", choices=("legality", "diversity"), default=None
    )
    srv.add_argument(
        "--gather-window", type=float, default=None,
        help="seconds the scheduler collects jobs per batch",
    )
    srv.add_argument(
        "--max-batch", type=int, default=None,
        help="max samples per batched trajectory",
    )
    srv.add_argument(
        "--workers", type=int, default=None,
        help="concurrent request workers",
    )
    srv.add_argument(
        "--policy", choices=SERVE_POLICIES, default=None,
        help="engine batching policy: greedy (gather-window FIFO), "
             "shape_bucketed (coalesce compatible jobs across the whole "
             "queue), fair_share (round-robin across request sources) or "
             "adaptive (greedy plus an SLO-driven quality controller that "
             "degrades sampler steps under queue pressure; tuned by the "
             "config's [tune] section)",
    )
    srv.add_argument(
        "--executor", choices=SERVE_EXECUTORS, default=None,
        help="engine execution tier: thread (in-process, default) or "
             "process (spawned worker processes with shared-memory batch "
             "transport and crash supervision; requires --model-cache so "
             "workers can load the fitted model by recipe hash)",
    )
    srv.add_argument(
        "--engine-workers", type=int, default=None,
        help="executor workers (threads or processes) draining batches "
             "in parallel",
    )
    srv.add_argument(
        "--queue-limit", type=int, default=None,
        help="bound on queued sampling jobs; beyond it submissions "
             "fast-fail with backpressure instead of queueing unboundedly",
    )
    srv.add_argument(
        "--deadline", type=float, default=None,
        help="seconds a sampling job may sit queued before failing with "
             "a deadline error",
    )
    srv.add_argument(
        "--store", help="directory of the indexed pattern store (dedup)"
    )
    srv.add_argument("-o", "--output", help="save the merged library (.npz)")
    srv.add_argument(
        "--metrics-snapshot", metavar="PATH", default=None,
        help="periodically write a JSON metrics snapshot to PATH (and the "
             "Prometheus text exposition to PATH + '.prom'), plus a final "
             "dump on shutdown; inspect with 'repro stats PATH'",
    )
    srv.add_argument(
        "--snapshot-interval", type=float, default=None,
        help="seconds between metrics snapshots (default 5)",
    )
    srv.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write per-request trace spans as JSON lines on shutdown",
    )
    srv.add_argument(
        "--no-obs", action="store_true",
        help="disable the observability layer (no metrics, no traces)",
    )
    srv.add_argument(
        "--state-dir", metavar="DIR", default=None,
        help="durable job-state directory: terminal jobs are journaled "
             "and rehydrated across restarts, and jobs lost in flight "
             "resurface as FAILED with the 'server_restart' error code "
             "instead of vanishing",
    )
    srv.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="install a deterministic fault-injection plan (chaos "
             "testing): JSON, or compact clauses like "
             "'seed=7|worker.execute:kill:nth=2|registry.disk_read:error:"
             "nth=1'; the REPRO_FAULTS environment variable is an "
             "equivalent escape hatch",
    )
    srv.add_argument(
        "--http", metavar="HOST:PORT", default=None,
        help="instead of serving the given requests and exiting, run the "
             "asyncio HTTP front-end (POST /v1/jobs, GET /v1/jobs/ID, "
             "DELETE cancel, GET /metrics) until SIGINT or SIGTERM, then "
             "drain gracefully (process-executor workers are reaped, no "
             "orphans); PORT 0 binds an ephemeral port",
    )

    gen = sub.add_parser("generate", help="sample fixed-size patterns")
    gen.add_argument("--style", choices=STYLES, default=None)
    gen.add_argument("--count", type=int, default=None)
    gen.add_argument("-o", "--output", help="save the library (.npz)")
    gen.add_argument("--show", action="store_true", help="print ASCII art")

    ext = sub.add_parser("extend", help="free-size synthesis")
    ext.add_argument("--style", choices=STYLES, default=None)
    ext.add_argument("--size", type=int, default=None)
    ext.add_argument("--method", choices=("out", "in"), default=None)
    ext.add_argument("--count", type=int, default=None)
    ext.add_argument("-o", "--output", help="save the library (.npz)")

    ev = sub.add_parser("evaluate", help="report stats for a saved library")
    ev.add_argument("library", help="path to a .npz library")

    ex = sub.add_parser("export", help="convert a saved library to GDSII")
    ex.add_argument("library", help="path to a .npz library")
    ex.add_argument("output", help="path of the .gds file to write")

    st = sub.add_parser(
        "stats", help="summarize a metrics snapshot (JSON or .prom)"
    )
    st.add_argument(
        "snapshot",
        help="snapshot file written by 'serve --metrics-snapshot' "
             "(JSON, or the '.prom' text-exposition sibling)",
    )
    st.add_argument(
        "--watch", type=float, metavar="SECS", default=None,
        help="re-read and re-render the snapshot every SECS seconds "
             "(a live dashboard over 'serve --metrics-snapshot'); "
             "Ctrl-C exits",
    )
    st.add_argument(
        "--iterations", type=int, metavar="N", default=None,
        help="with --watch, stop after N renders instead of running "
             "until Ctrl-C (useful in scripts and CI)",
    )

    tn = sub.add_parser(
        "tune",
        help="autotune serve knobs against a workload spec (offline)",
    )
    tn.add_argument(
        "workload",
        help="workload spec JSON (phases of request traffic; see "
             "repro.tune.WorkloadSpec)",
    )
    tn.add_argument(
        "--budget", type=int, default=None, metavar="N",
        help="cap the candidate grid at its first N entries (smaller = "
             "faster, searched grid prefix is deterministic)",
    )
    tn.add_argument(
        "--slo", type=float, default=None, metavar="SECS",
        help="p95 latency SLO the tuner optimizes for (overrides the "
             "config's tune.slo_p95)",
    )
    tn.add_argument(
        "-o", "--output", metavar="PIPELINE_JSON", default=None,
        help="write the tuned pipeline config here (loadable with "
             "--config and servable as-is)",
    )
    tn.add_argument(
        "--report", metavar="PATH", default=None,
        help="also write the human-readable trial report to PATH "
             "(always printed to stdout)",
    )

    for command_parser in (chat, srv, gen, ext, ev, ex, st, tn):
        _add_global_options(command_parser, root=False)
    return parser


def _pipeline_config(args) -> PipelineConfig:
    """``--config`` file (or defaults) with the global flag overrides."""
    cfg = (
        PipelineConfig.load(args.config)
        if args.config
        else PipelineConfig()
    )
    train = cfg.train
    if args.train_count is not None:
        train = train.replace(train_count=args.train_count)
    if args.seed is not None:
        train = train.replace(seed=args.seed)
    cfg = cfg.replace(train=train)
    if args.sampler_steps is not None:
        cfg = cfg.replace(
            sample=cfg.sample.replace(sampler_steps=args.sampler_steps)
        )
    if args.model_cache is not None:
        cfg = cfg.replace(model_cache=args.model_cache)
    return cfg


def _build_pipeline(args, cfg: PipelineConfig) -> PatternPipeline:
    """The one seam every subcommand builds its pipeline through."""
    return PatternPipeline(cfg, verbose=True)


def _cmd_chat(args) -> int:
    cfg = _pipeline_config(args)
    pipeline = _build_pipeline(args, cfg)
    result = pipeline.chat(args.request, objective=args.objective)
    print(result.summary())
    if args.output and len(result.library):
        saved = pipeline.with_library(result.library).persist(
            output=args.output
        )
        print(f"library saved to {saved.output_path}")
    return 0 if result.produced else 1


def _cmd_serve(args) -> int:
    from repro.serve import ServeRequest
    from repro.squish.pattern import PatternLibrary

    texts = list(args.requests)
    if args.requests_file:
        with open(args.requests_file) as handle:
            texts.extend(
                line.strip()
                for line in handle
                if line.strip() and not line.lstrip().startswith("#")
            )
    if not texts and not args.http:
        print("no requests given", file=sys.stderr)
        return 2

    cfg = _pipeline_config(args)
    serve_cfg = cfg.serve
    if args.objective is not None:
        serve_cfg = serve_cfg.replace(objective=args.objective)
    if args.seed is not None:
        serve_cfg = serve_cfg.replace(base_seed=args.seed)
    elif not args.config:
        # No config file: keep the old CLI behavior of seeding request
        # streams from the training seed.
        serve_cfg = serve_cfg.replace(base_seed=cfg.train.seed)
    if args.gather_window is not None:
        serve_cfg = serve_cfg.replace(gather_window=args.gather_window)
    if args.max_batch is not None:
        serve_cfg = serve_cfg.replace(max_batch=args.max_batch)
    if args.workers is not None:
        serve_cfg = serve_cfg.replace(max_workers=args.workers)
    if args.policy is not None:
        serve_cfg = serve_cfg.replace(policy=args.policy)
    if args.executor is not None:
        serve_cfg = serve_cfg.replace(executor=args.executor)
    if args.engine_workers is not None:
        serve_cfg = serve_cfg.replace(engine_workers=args.engine_workers)
    if args.queue_limit is not None:
        serve_cfg = serve_cfg.replace(queue_limit=args.queue_limit)
    if args.deadline is not None:
        serve_cfg = serve_cfg.replace(deadline=args.deadline)
    if args.state_dir is not None:
        serve_cfg = serve_cfg.replace(state_dir=args.state_dir)
    cfg = cfg.replace(serve=serve_cfg)
    fault_spec = args.faults or os.environ.get("REPRO_FAULTS")
    if fault_spec:
        from repro.api.config import FaultConfig
        from repro.faults import parse_fault_spec

        try:
            parsed = parse_fault_spec(fault_spec)
        except ValueError as exc:
            print(f"bad fault spec: {exc}", file=sys.stderr)
            return 2
        cfg = cfg.replace(
            faults=FaultConfig.from_dict({**parsed, "enabled": True})
        )
    if args.store:
        cfg = cfg.replace(store=cfg.store.replace(store_dir=args.store))
    obs_cfg = cfg.obs
    if args.metrics_snapshot:
        obs_cfg = obs_cfg.replace(snapshot_path=args.metrics_snapshot)
    if args.snapshot_interval is not None:
        obs_cfg = obs_cfg.replace(snapshot_interval=args.snapshot_interval)
    if args.trace_out:
        obs_cfg = obs_cfg.replace(trace_path=args.trace_out)
    if args.no_obs:
        obs_cfg = obs_cfg.replace(enabled=False)
    cfg = cfg.replace(obs=obs_cfg)

    pipeline = _build_pipeline(args, cfg)
    pipeline.model  # resolve through the registry (and the disk cache) now
    service = pipeline.service()

    if args.http:
        return _serve_http(args.http, service)

    with service:
        responses = service.serve(
            [
                ServeRequest(text=t, objective=cfg.serve.objective)
                for t in texts
            ]
        )

    merged = PatternLibrary(name="serve-output")
    for response in responses:
        print(response.summary())
        if response.result is not None:
            merged.extend(list(response.result.library))
    # Graceful-shutdown summary: the engine's aggregate (span-union wall,
    # summed busy time, admission ledger) plus the metric-derived request
    # latency percentiles.
    stats = service.stats()
    print(f"service: {stats.as_dict()}")
    latency = service.metrics.get("repro_request_latency_seconds")
    if latency is not None and latency.count() > 0:
        pct = latency.percentiles()
        print(
            f"request latency: p50 {pct['p50'] * 1000:.0f} ms, "
            f"p95 {pct['p95'] * 1000:.0f} ms, "
            f"p99 {pct['p99'] * 1000:.0f} ms "
            f"over {latency.count()} request(s)"
        )
    if args.metrics_snapshot:
        print(
            f"metrics snapshot written to {args.metrics_snapshot} "
            f"(+ {args.metrics_snapshot}.prom)"
        )
    if args.trace_out:
        print(f"trace spans written to {args.trace_out}")
    if args.output and len(merged):
        saved = pipeline.with_library(merged).persist(output=args.output)
        print(f"library saved to {saved.output_path}")
    return 0 if all(r.produced for r in responses) else 1


def _serve_http(address: str, service) -> int:
    """Run the HTTP front-end until SIGINT/SIGTERM, then drain."""
    from repro.serve.http import PatternHttpServer

    host, _, port_text = address.rpartition(":")
    host = host or "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        print(
            f"cannot parse --http address {address!r} "
            "(expected HOST:PORT or PORT)",
            file=sys.stderr,
        )
        return 2
    server = PatternHttpServer(service, host=host, port=port)
    try:
        server.start()
    except RuntimeError as exc:
        print(f"HTTP server failed to start: {exc}", file=sys.stderr)
        return 1
    print(f"serving HTTP on {server.url} (Ctrl-C drains and exits)")
    try:
        # start() already ran; serve_forever re-enters it as a no-op and
        # blocks until a signal arrives, then drains admitted jobs.
        server.serve_forever()
    finally:
        stats = service.stats()
        print(f"service: {stats.as_dict()}")
    print("drained; bye")
    return 0


def _cmd_generate(args) -> int:
    cfg = _pipeline_config(args)
    sample_cfg = cfg.sample
    if args.style:
        sample_cfg = sample_cfg.replace(style=args.style)
    if args.count is not None:
        sample_cfg = sample_cfg.replace(count=args.count)
    cfg = cfg.replace(sample=sample_cfg)
    pipeline = _build_pipeline(args, cfg)
    result = pipeline.sample().legalize().score()
    legality = result.legality
    print(
        f"generated {legality.total}, legal {len(legality.legal)} "
        f"({legality.legality:.0%}); diversity "
        f"{result.scores.get('diversity', 0.0):.3f}"
    )
    if args.show and len(result.library):
        print(ascii_art(result.library[0].topology, max_size=48))
    if args.output and len(result.library):
        result = pipeline.persist(result, output=args.output)
        print(f"library saved to {result.output_path}")
    return 0 if len(result.library) else 1


def _cmd_extend(args) -> int:
    cfg = _pipeline_config(args)
    sample_cfg = cfg.sample
    if args.style:
        sample_cfg = sample_cfg.replace(style=args.style)
    if args.count is not None:
        sample_cfg = sample_cfg.replace(count=args.count)
    elif not args.config:
        sample_cfg = sample_cfg.replace(count=1)  # old extend default
    if args.method:
        sample_cfg = sample_cfg.replace(extend_method=args.method)
    sample_cfg = sample_cfg.replace(
        extend_size=args.size or sample_cfg.extend_size or 256
    )
    cfg = cfg.replace(sample=sample_cfg)
    pipeline = _build_pipeline(args, cfg)
    result = pipeline.extend().legalize().score()
    legality = result.legality
    size = cfg.sample.extend_size
    print(
        f"extended {legality.total} pattern(s) to {size}x{size} via "
        f"{cfg.sample.extend_method}-painting; legal {len(legality.legal)} "
        f"({legality.legality:.0%})"
    )
    if args.output and len(result.library):
        result = pipeline.persist(result, output=args.output)
        print(f"library saved to {result.output_path}")
    return 0 if len(result.library) else 1


def _cmd_evaluate(args) -> int:
    cfg = _pipeline_config(args)
    pipeline = _build_pipeline(args, cfg)
    library = load_library(args.library)
    result = pipeline.with_library(library).score()
    print(f"library {library.name!r}: {result.scores['stats']}")
    for style in library.styles():
        sub = library.filter_style(style)
        print(f"  {style}: {library_stats(sub).as_dict()}")
    return 0


def _format_labels(labels) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in labels.items()) + "}"


def _render_stats(path) -> int:
    """Render one metrics snapshot file (JSON or Prometheus text)."""
    import json

    from repro.obs.export import ExpositionError, parse_exposition

    if not path.exists():
        print(f"no such snapshot: {path}", file=sys.stderr)
        return 2
    text = path.read_text()
    if path.suffix == ".prom" or text.lstrip().startswith("#"):
        try:
            families = parse_exposition(text)
        except ExpositionError as exc:
            print(f"malformed exposition: {exc}", file=sys.stderr)
            return 1
        print(f"{path}: {len(families)} metric(s) [prometheus text]")
        for name, family in families.items():
            kind = family["type"]
            if kind == "histogram":
                observed = sum(
                    int(value)
                    for sample, _, value in family["samples"]
                    if sample.endswith("_count")
                )
                print(f"  {name} ({kind}): {observed} observation(s)")
            else:
                for sample, labels, value in family["samples"]:
                    print(
                        f"  {sample}{_format_labels(labels)} = {value:g}"
                    )
        return 0
    try:
        snapshot = json.loads(text)
    except json.JSONDecodeError as exc:
        print(f"malformed snapshot JSON: {exc}", file=sys.stderr)
        return 1
    metrics = snapshot.get("metrics", [])
    print(f"{path}: {len(metrics)} metric(s) [json snapshot]")
    for metric in metrics:
        name, kind = metric["name"], metric["type"]
        for series in metric.get("series", []):
            tag = f"  {name}{_format_labels(series.get('labels'))}"
            if kind == "histogram":
                parts = [
                    f"count={series['count']}",
                    f"sum={series['sum']:.4g}",
                ]
                for p in ("p50", "p95", "p99"):
                    if p in series:
                        parts.append(f"{p}={series[p]:.4g}")
                print(f"{tag}: " + " ".join(parts))
            else:
                print(f"{tag} = {series['value']:g}")
    return 0


def _cmd_stats(args) -> int:
    """One-shot snapshot summary, or a --watch SECS live dashboard."""
    import time
    from pathlib import Path

    path = Path(args.snapshot)
    if args.watch is None:
        return _render_stats(path)
    if args.watch <= 0:
        print("--watch needs a positive number of seconds", file=sys.stderr)
        return 2
    rendered = 0
    status = 0
    try:
        while True:
            # Clear screen + home, like `watch(1)`, so the dashboard
            # repaints in place instead of scrolling.
            if sys.stdout.isatty():
                print("\x1b[2J\x1b[H", end="")
            print(
                f"every {args.watch:g}s — "
                f"{time.strftime('%Y-%m-%d %H:%M:%S')}"
            )
            status = _render_stats(path)
            rendered += 1
            if args.iterations is not None and rendered >= args.iterations:
                break
            time.sleep(args.watch)
    except KeyboardInterrupt:
        pass
    except BrokenPipeError:
        # Reader (e.g. `| head`) went away: that's a clean exit, but
        # Python would still flush stdout at shutdown and print a
        # spurious traceback — hand it a dead descriptor instead.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return status


def _cmd_tune(args) -> int:
    """Offline autotune: workload spec in, tuned pipeline config out."""
    from pathlib import Path

    from repro.api.config import ConfigError
    from repro.tune import WorkloadSpec, render_report, successive_halving

    try:
        spec = WorkloadSpec.load(args.workload)
    except FileNotFoundError:
        print(f"no such workload spec: {args.workload}", file=sys.stderr)
        return 2
    except ConfigError as exc:
        print(f"bad workload spec: {exc}", file=sys.stderr)
        return 2
    cfg = _pipeline_config(args)
    tune_cfg = cfg.tune
    if args.slo is not None:
        try:
            tune_cfg = tune_cfg.replace(slo_p95=args.slo)
        except ConfigError as exc:
            print(f"bad --slo: {exc}", file=sys.stderr)
            return 2
        cfg = cfg.replace(tune=tune_cfg)
    try:
        outcome = successive_halving(
            spec,
            tune=tune_cfg,
            seed=args.seed,
            budget=args.budget,
            gather_window=cfg.serve.gather_window,
            max_batch=cfg.serve.max_batch,
        )
    except (ConfigError, ValueError) as exc:
        print(f"tune failed: {exc}", file=sys.stderr)
        return 1
    report = render_report(outcome)
    print(report, end="")
    if args.report:
        Path(args.report).write_text(report)
        print(f"report written to {args.report}")
    if args.output:
        tuned = outcome.tuned_config(cfg)
        tuned.save(args.output)
        print(f"tuned config written to {args.output}")
        print(
            "serve it with: repro --config "
            f"{args.output} serve --requests-file ..."
        )
    return 0


def _cmd_export(args) -> int:
    cfg = _pipeline_config(args)
    pipeline = _build_pipeline(args, cfg)
    library = load_library(args.library)
    result = pipeline.with_library(library).export(args.output)
    print(f"wrote {len(library)} structure(s) to {result.gds_path}")
    return 0


_COMMANDS = {
    "chat": _cmd_chat,
    "serve": _cmd_serve,
    "generate": _cmd_generate,
    "extend": _cmd_extend,
    "evaluate": _cmd_evaluate,
    "export": _cmd_export,
    "stats": _cmd_stats,
    "tune": _cmd_tune,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
