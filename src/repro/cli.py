"""Command-line interface for the ChatPattern reproduction.

Subcommands:

- ``chat``     — natural-language library building (the headline flow).
- ``serve``    — many requests at once through the micro-batching service.
- ``generate`` — sample fixed-size topologies of one style and legalize.
- ``extend``   — free-size synthesis via in/out-painting.
- ``evaluate`` — legality/diversity report for a saved library.
- ``export``   — convert a saved library to GDSII.

All subcommands train the back-end on the synthetic dataset at start-up
(seconds on CPU); pass ``--train-count`` to trade training data for time.

    python -m repro.cli chat "Generate 6 patterns ..." -o library.npz
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.core.chatpattern import ChatPattern
from repro.data import STYLES, style_condition
from repro.io.gds import write_gds
from repro.io.render import ascii_art
from repro.io.store import load_library, save_library
from repro.metrics import diversity, legalize_batch
from repro.metrics.stats import library_stats
from repro.ops import extend


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ChatPattern: layout pattern customization via natural language",
    )
    parser.add_argument(
        "--train-count", type=int, default=48,
        help="training tiles per style for the diffusion back-end",
    )
    parser.add_argument("--seed", type=int, default=2024)
    sub = parser.add_subparsers(dest="command", required=True)

    chat = sub.add_parser("chat", help="handle a natural-language request")
    chat.add_argument("request", help="the requirement, in English")
    chat.add_argument("-o", "--output", help="save the library (.npz)")
    chat.add_argument(
        "--objective", choices=("legality", "diversity"), default="legality"
    )

    srv = sub.add_parser(
        "serve", help="serve many requests through the batched scheduler"
    )
    srv.add_argument(
        "requests", nargs="*", help="requirement texts, one per request"
    )
    srv.add_argument(
        "--requests-file",
        help="file with one request per line ('#' lines are comments)",
    )
    srv.add_argument(
        "--objective", choices=("legality", "diversity"), default="legality"
    )
    srv.add_argument(
        "--gather-window", type=float, default=0.02,
        help="seconds the scheduler collects jobs per batch",
    )
    srv.add_argument(
        "--max-batch", type=int, default=64,
        help="max samples per batched trajectory",
    )
    srv.add_argument(
        "--workers", type=int, default=8, help="concurrent request workers"
    )
    srv.add_argument(
        "--store", help="directory of the indexed pattern store (dedup)"
    )
    srv.add_argument("-o", "--output", help="save the merged library (.npz)")

    gen = sub.add_parser("generate", help="sample fixed-size patterns")
    gen.add_argument("--style", choices=STYLES, default=STYLES[0])
    gen.add_argument("--count", type=int, default=4)
    gen.add_argument("-o", "--output", help="save the library (.npz)")
    gen.add_argument("--show", action="store_true", help="print ASCII art")

    ext = sub.add_parser("extend", help="free-size synthesis")
    ext.add_argument("--style", choices=STYLES, default=STYLES[0])
    ext.add_argument("--size", type=int, default=256)
    ext.add_argument("--method", choices=("out", "in"), default="out")
    ext.add_argument("--count", type=int, default=1)
    ext.add_argument("-o", "--output", help="save the library (.npz)")

    ev = sub.add_parser("evaluate", help="report stats for a saved library")
    ev.add_argument("library", help="path to a .npz library")

    ex = sub.add_parser("export", help="convert a saved library to GDSII")
    ex.add_argument("library", help="path to a .npz library")
    ex.add_argument("output", help="path of the .gds file to write")
    return parser


def _pretrained(args) -> ChatPattern:
    print(
        f"[repro] training back-end ({args.train_count} tiles/style)...",
        file=sys.stderr,
    )
    return ChatPattern.pretrained(train_count=args.train_count, seed=args.seed)


def _cmd_chat(args) -> int:
    chat = _pretrained(args)
    result = chat.handle_request(args.request, objective=args.objective)
    print(result.summary())
    if args.output and len(result.library):
        save_library(result.library, args.output)
        print(f"library saved to {args.output}")
    return 0 if result.produced else 1


def _cmd_serve(args) -> int:
    from repro.serve import LibraryStore, PatternService, ServeRequest
    from repro.squish.pattern import PatternLibrary

    texts = list(args.requests)
    if args.requests_file:
        with open(args.requests_file) as handle:
            texts.extend(
                line.strip()
                for line in handle
                if line.strip() and not line.lstrip().startswith("#")
            )
    if not texts:
        print("no requests given", file=sys.stderr)
        return 2

    chat = _pretrained(args)
    store = LibraryStore(args.store) if args.store else None
    service = PatternService(
        model=chat.model,
        store=store,
        gather_window=args.gather_window,
        max_batch=args.max_batch,
        max_workers=args.workers,
        base_seed=args.seed,
    )
    with service:
        responses = service.serve(
            [ServeRequest(text=t, objective=args.objective) for t in texts]
        )

    merged = PatternLibrary(name="serve-output")
    for response in responses:
        print(response.summary())
        if response.result is not None:
            merged.extend(list(response.result.library))
    stats = service.stats()
    print(f"service: {stats.as_dict()}")
    if args.output and len(merged):
        written = save_library(merged, args.output)
        print(f"library saved to {written}")
    return 0 if all(r.produced for r in responses) else 1


def _cmd_generate(args) -> int:
    chat = _pretrained(args)
    rng = np.random.default_rng(args.seed)
    condition = style_condition(args.style)
    samples = chat.model.sample(args.count, condition, rng)
    result = legalize_batch(list(samples), args.style)
    print(
        f"generated {args.count}, legal {len(result.legal)} "
        f"({result.legality:.0%}); diversity {diversity(result.legal):.3f}"
    )
    if args.show and len(result.legal):
        print(ascii_art(result.legal[0].topology, max_size=48))
    if args.output and len(result.legal):
        save_library(result.legal, args.output)
        print(f"library saved to {args.output}")
    return 0 if len(result.legal) else 1


def _cmd_extend(args) -> int:
    chat = _pretrained(args)
    rng = np.random.default_rng(args.seed)
    condition = style_condition(args.style)
    topologies = [
        extend(
            chat.model, (args.size, args.size), condition, rng, method=args.method
        ).topology
        for _ in range(args.count)
    ]
    result = legalize_batch(topologies, args.style)
    print(
        f"extended {args.count} pattern(s) to {args.size}x{args.size} via "
        f"{args.method}-painting; legal {len(result.legal)} "
        f"({result.legality:.0%})"
    )
    if args.output and len(result.legal):
        save_library(result.legal, args.output)
        print(f"library saved to {args.output}")
    return 0 if len(result.legal) else 1


def _cmd_evaluate(args) -> int:
    library = load_library(args.library)
    stats = library_stats(library)
    print(f"library {library.name!r}: {stats.as_dict()}")
    for style in library.styles():
        sub = library.filter_style(style)
        print(f"  {style}: {library_stats(sub).as_dict()}")
    return 0


def _cmd_export(args) -> int:
    library = load_library(args.library)
    path = write_gds(library, args.output)
    print(f"wrote {len(library)} structure(s) to {path}")
    return 0


_COMMANDS = {
    "chat": _cmd_chat,
    "serve": _cmd_serve,
    "generate": _cmd_generate,
    "extend": _cmd_extend,
    "evaluate": _cmd_evaluate,
    "export": _cmd_export,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
