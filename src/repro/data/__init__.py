"""Synthetic dataset substrate (ICCAD-2014 contest map stand-in)."""

from repro.data.dataset import (
    DatasetConfig,
    build_library,
    build_training_set,
    reference_library,
    topology_stack,
)
from repro.data.layout_map import LayoutMap, generate_layout_map
from repro.data.styles import (
    LAYER_10001,
    LAYER_10003,
    MODEL_SIZE,
    STYLES,
    TILE_NM,
    StyleSpec,
    style_condition,
    style_spec,
)

__all__ = [
    "DatasetConfig",
    "LAYER_10001",
    "LAYER_10003",
    "LayoutMap",
    "MODEL_SIZE",
    "STYLES",
    "StyleSpec",
    "TILE_NM",
    "build_library",
    "build_training_set",
    "generate_layout_map",
    "reference_library",
    "style_condition",
    "style_spec",
    "topology_stack",
]
