"""Dataset style definitions.

The paper trains on tiles split from the ICCAD-2014 contest layout map, with
two styles: ``Layer-10001`` (widely used in prior work; dense routing-like
geometry) and ``Layer-10003`` (introduced for style-conditioning; sparser,
blockier geometry).  The contest map is not redistributable, so
:mod:`repro.data.layout_map` synthesises style-parameterised Manhattan maps
that are DRC-clean by construction and match the *relative* complexity of
the two layers, which is what drives every trend in Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.drc.rules import DesignRules, rules_for_style

#: Canonical tile edge in nm (the paper splits 2048x2048 nm tiles).
TILE_NM = 2048

#: Topology resolution the generative models train on.
MODEL_SIZE = 128

STYLES: Tuple[str, str] = ("Layer-10001", "Layer-10003")


@dataclass(frozen=True)
class StyleSpec:
    """Parameters of one synthetic layout style.

    Track-based styles draw wire segments inside orientation-locked strips;
    block-based styles place isolated rectangles on a jittered grid.  All
    distances in nm and snapped to ``grid``: real layouts sit on a placement
    grid, and snapping bounds the scan-line count of any window at
    ``window_nm / grid`` — the property that makes the 4x/16x/64x larger
    splits normalizable to proportionally larger topologies.
    """

    name: str
    kind: str  # "tracks" or "blocks"
    rules: DesignRules
    wire_widths: Tuple[int, ...]
    space_range: Tuple[int, int]
    segment_range: Tuple[int, int]
    gap_range: Tuple[int, int]
    strip_range: Tuple[int, int]
    fill_probability: float
    grid: int = 16

    def style_index(self) -> int:
        """Stable integer id used as the diffusion class condition."""
        return STYLES.index(self.name)

    def snap(self, value: float, minimum: int = 0) -> int:
        """Round ``value`` up to the placement grid, at least ``minimum``."""
        snapped = int(-(-int(value) // self.grid) * self.grid)
        if minimum:
            need = int(-(-minimum // self.grid) * self.grid)
            snapped = max(snapped, need)
        return snapped


LAYER_10001 = StyleSpec(
    name="Layer-10001",
    kind="tracks",
    rules=rules_for_style("Layer-10001"),
    wire_widths=(48, 48, 64, 80),
    space_range=(32, 80),
    segment_range=(160, 704),
    gap_range=(32, 160),
    strip_range=(304, 896),
    fill_probability=0.88,
    grid=16,
)

LAYER_10003 = StyleSpec(
    name="Layer-10003",
    kind="blocks",
    rules=rules_for_style("Layer-10003"),
    wire_widths=(128, 160, 208, 256, 320),
    space_range=(96, 320),
    segment_range=(160, 512),
    gap_range=(96, 320),
    strip_range=(160, 416),
    fill_probability=0.6,
    grid=16,
)

_SPECS = {spec.name: spec for spec in (LAYER_10001, LAYER_10003)}


def style_spec(name: str) -> StyleSpec:
    """Look up a style spec by tag."""
    try:
        return _SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown style {name!r}; known styles: {sorted(_SPECS)}"
        ) from None


def style_condition(name: str) -> int:
    """Diffusion class-condition index for a style tag."""
    return style_spec(name).style_index()
