"""Dataset builder: layout map -> squish tiles -> fixed-size topologies.

Follows the paper's data pipeline: split the layout map into overlapping
square tiles (2048x2048 nm at the base size, and 4x/16x/64x larger windows
for the free-size references), squish-encode each tile, and normalise the
topology to a fixed square resolution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.data.layout_map import LayoutMap, generate_layout_map
from repro.data.styles import MODEL_SIZE, TILE_NM, StyleSpec, style_spec
from repro.geometry.rect import Rect
from repro.squish.encode import encode_rects
from repro.squish.normalize import NormalizationError, normalize_pattern
from repro.squish.pattern import PatternLibrary, SquishPattern


@dataclass
class DatasetConfig:
    """Tiling parameters for one dataset build.

    ``tile_nm`` is the physical window edge and ``topology_size`` the
    normalised resolution; the defaults reproduce the paper's 2048 nm /
    128x128 base setting.  ``map_scale`` sizes the synthetic map relative to
    the tile so windows can be sampled with overlap.
    """

    tile_nm: int = TILE_NM
    topology_size: int = MODEL_SIZE
    map_scale: int = 8
    seed: int = 2024

    @property
    def map_nm(self) -> int:
        return self.tile_nm * self.map_scale


def build_library(
    style: str,
    count: int,
    config: Optional[DatasetConfig] = None,
    layout_map: Optional[LayoutMap] = None,
) -> PatternLibrary:
    """Build a library of ``count`` normalised squish tiles of one style.

    Windows are sampled uniformly at random (overlap allowed, as in the
    paper).  Tiles whose canonical topology exceeds the target resolution
    are skipped — the same filtering real squish datasets apply when
    choosing their resolution.
    """
    cfg = config or DatasetConfig()
    spec = style_spec(style)
    rng = np.random.default_rng(cfg.seed + 7919 * spec.style_index())
    if layout_map is None:
        layout_map = generate_layout_map(spec, cfg.map_nm, cfg.map_nm, rng)

    library = PatternLibrary(name=f"{style}-{cfg.topology_size}")
    attempts = 0
    max_attempts = count * 20 + 100
    hi = max(1, layout_map.width - cfg.tile_nm)
    while len(library) < count and attempts < max_attempts:
        attempts += 1
        x0 = int(rng.integers(0, hi))
        y0 = int(rng.integers(0, max(1, layout_map.height - cfg.tile_nm)))
        rects = layout_map.window(x0, y0, cfg.tile_nm)
        window = Rect(0, 0, cfg.tile_nm, cfg.tile_nm)
        pattern = encode_rects(rects, window, style=style)
        try:
            library.add(normalize_pattern(pattern, cfg.topology_size))
        except NormalizationError:
            continue
    if len(library) < count:
        raise RuntimeError(
            f"could only extract {len(library)}/{count} tiles for {style}; "
            "map too small or topology resolution too low"
        )
    return library


def topology_stack(library: PatternLibrary) -> np.ndarray:
    """Stack library topologies into a ``(N, H, W)`` uint8 array."""
    return np.stack([p.topology for p in library.patterns])


def build_training_set(
    styles: List[str],
    count_per_style: int,
    config: Optional[DatasetConfig] = None,
) -> tuple:
    """Build the mixed multi-style training set used by ChatPattern.

    Returns ``(topologies, conditions)`` where ``conditions`` holds the
    per-pattern style index (the diffusion class condition).
    """
    cfg = config or DatasetConfig()
    all_topologies = []
    all_conditions = []
    for style in styles:
        library = build_library(style, count_per_style, cfg)
        all_topologies.append(topology_stack(library))
        all_conditions.append(
            np.full(len(library), style_spec(style).style_index(), dtype=np.int64)
        )
    return (np.concatenate(all_topologies), np.concatenate(all_conditions))


def reference_library(
    style: str,
    count: int,
    topology_size: int,
    seed: int = 2024,
) -> PatternLibrary:
    """'Real Patterns' reference rows of Table 1.

    Scales the physical window proportionally with the topology resolution
    (2048 nm at 128 up to 16384 nm at 1024), mirroring the paper's 4x/16x/64x
    larger splits of the same map.
    """
    scale = topology_size // MODEL_SIZE
    if scale * MODEL_SIZE != topology_size:
        raise ValueError("topology_size must be a multiple of the base 128")
    cfg = DatasetConfig(
        tile_nm=TILE_NM * scale,
        topology_size=topology_size,
        map_scale=max(3, 8 // scale),
        seed=seed,
    )
    return build_library(style, count, cfg)
