"""Synthetic layout-map generation (the ICCAD-2014 contest map stand-in).

A layout map is a large field of Manhattan shapes; the dataset builder
splits it into overlapping square tiles.  Maps are DRC-clean by
construction: every randomised dimension is drawn at or above its rule
bound, and shapes never approach each other closer than ``min_space``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.data.styles import StyleSpec
from repro.geometry.rect import Rect, clip_rects


@dataclass
class LayoutMap:
    """A generated layout field with window extraction."""

    rects: List[Rect]
    width: int
    height: int
    style: str

    def window(self, x0: int, y0: int, size: int) -> List[Rect]:
        """Rects clipped to the ``size x size`` window at ``(x0, y0)``,
        translated so the window origin is (0, 0)."""
        win = Rect(x0, y0, x0 + size, y0 + size)
        return [r.translated(-x0, -y0) for r in clip_rects(self.rects, win)]


def generate_layout_map(
    spec: StyleSpec, width: int, height: int, rng: np.random.Generator
) -> LayoutMap:
    """Generate one DRC-clean layout map for ``spec``."""
    if spec.kind == "tracks":
        rects = _generate_tracks(spec, width, height, rng)
    elif spec.kind == "blocks":
        rects = _generate_blocks(spec, width, height, rng)
    else:
        raise ValueError(f"unknown style kind {spec.kind!r}")
    return LayoutMap(rects=rects, width=width, height=height, style=spec.name)


def _generate_tracks(
    spec: StyleSpec, width: int, height: int, rng: np.random.Generator
) -> List[Rect]:
    """Routing-like style: orientation-locked strips of wire segments.

    The map is partitioned into vertical strips; each strip holds either
    horizontal or vertical tracks.  Strips are separated by at least
    ``min_space`` so inter-strip spacing can never violate.
    """
    rules = spec.rules
    rects: List[Rect] = []
    x = 0
    while x < width:
        strip_w = spec.snap(
            rng.integers(spec.strip_range[0], spec.strip_range[1] + 1)
        )
        strip_w = min(strip_w, width - x)
        if strip_w < rules.min_width:
            break
        horizontal = rng.random() < 0.6
        rects.extend(
            _fill_tracks(spec, x, 0, strip_w, height, rng, horizontal=horizontal)
        )
        gap = spec.snap(
            rng.integers(rules.min_space, rules.min_space * 3 + 1),
            minimum=rules.min_space,
        )
        x += strip_w + gap
    return rects


def _fill_tracks(
    spec: StyleSpec,
    x0: int,
    y0: int,
    w: int,
    h: int,
    rng: np.random.Generator,
    horizontal: bool,
) -> List[Rect]:
    """Fill one strip with parallel wire segments."""
    rules = spec.rules
    rects: List[Rect] = []
    # Cross-track axis runs over the strip width for vertical wires and the
    # strip height for horizontal wires.
    lateral_extent = h if horizontal else w
    along_extent = w if horizontal else h
    pos = 0
    while True:
        wire_w = int(rng.choice(spec.wire_widths))  # widths are pre-snapped
        if pos + wire_w > lateral_extent:
            break
        # Minimum segment length keeps the Area rule satisfied.
        min_seg = spec.snap(
            max(rules.min_width, -(-rules.min_area // wire_w))
        )
        cursor = 0
        while cursor < along_extent:
            seg = spec.snap(
                rng.integers(spec.segment_range[0], spec.segment_range[1] + 1),
                minimum=min_seg,
            )
            if cursor + seg > along_extent:
                remaining = along_extent - cursor
                if remaining >= min_seg and rng.random() < 0.5:
                    seg = remaining
                else:
                    break
            if rng.random() < spec.fill_probability:
                if horizontal:
                    rects.append(
                        Rect(x0 + cursor, y0 + pos, x0 + cursor + seg, y0 + pos + wire_w)
                    )
                else:
                    rects.append(
                        Rect(x0 + pos, y0 + cursor, x0 + pos + wire_w, y0 + cursor + seg)
                    )
            gap = spec.snap(
                rng.integers(spec.gap_range[0], spec.gap_range[1] + 1),
                minimum=rules.min_space,
            )
            cursor += seg + gap
        space = spec.snap(
            rng.integers(spec.space_range[0], spec.space_range[1] + 1),
            minimum=rules.min_space,
        )
        pos += wire_w + space
    return rects


def _generate_blocks(
    spec: StyleSpec, width: int, height: int, rng: np.random.Generator
) -> List[Rect]:
    """Blocky style: rows of isolated rectangles with generous spacing."""
    rules = spec.rules
    rects: List[Rect] = []
    y = 0
    while y < height:
        row_h = int(rng.choice(spec.wire_widths))  # pre-snapped
        if y + row_h > height:
            break
        x = 0
        while x < width:
            block_w = spec.snap(
                rng.integers(spec.segment_range[0], spec.segment_range[1] + 1),
                minimum=max(rules.min_width, -(-rules.min_area // row_h)),
            )
            if x + block_w > width:
                break
            if rng.random() < spec.fill_probability:
                rects.append(Rect(x, y, x + block_w, y + row_h))
            gap = spec.snap(
                rng.integers(spec.gap_range[0], spec.gap_range[1] + 1),
                minimum=rules.min_space,
            )
            x += block_w + gap
        space = spec.snap(
            rng.integers(spec.space_range[0], spec.space_range[1] + 1),
            minimum=rules.min_space,
        )
        y += row_h + space
    return rects
