"""Reference (scalar) DRC implementation.

The original per-run/per-polygon checker, kept as the ground truth the
vectorized engine in :mod:`repro.drc.checker` is property-tested against,
and as the sequential baseline ``benchmarks/bench_legalize_throughput.py``
measures speedups from.  It deliberately walks Python ``Run``/``GridPolygon``
objects one at a time — do not optimise this module.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.drc.rules import DesignRules
from repro.drc.violations import DRCReport, GridRegion, Violation
from repro.geometry.grid import Run, column_runs, diagonal_touch_pairs, row_runs
from repro.geometry.polygon import extract_polygons
from repro.squish.pattern import SquishPattern


def reference_check_pattern(
    pattern: SquishPattern, rules: DesignRules
) -> DRCReport:
    """Scalar twin of :func:`repro.drc.checker.check_pattern`."""
    report = DRCReport()
    report.violations.extend(reference_check_runs(pattern, rules))
    report.violations.extend(reference_check_corners(pattern))
    report.violations.extend(reference_check_areas(pattern, rules))
    return report


def _iter_row_runs(topology: np.ndarray) -> Iterator[Run]:
    for row in range(topology.shape[0]):
        yield from row_runs(topology, row)


def _iter_column_runs(topology: np.ndarray) -> Iterator[Run]:
    for col in range(topology.shape[1]):
        yield from column_runs(topology, col)


def reference_check_runs(
    pattern: SquishPattern, rules: DesignRules
) -> List[Violation]:
    """Width of 1-runs and space of interior 0-runs, both axes."""
    violations: List[Violation] = []
    xs = np.concatenate(([0], np.cumsum(pattern.dx)))
    ys = np.concatenate(([0], np.cumsum(pattern.dy)))
    rows, cols = pattern.shape

    # Runs touching the window border are exempt from Width: the clipped
    # shape continues outside the pattern (standard window-DRC convention).
    for run in _iter_row_runs(pattern.topology):
        length = int(xs[run.stop] - xs[run.start])
        interior = 0 < run.start and run.stop < cols
        region = GridRegion(run.index, run.start, run.index, run.stop - 1)
        if run.value == 1 and interior and length < rules.min_width:
            violations.append(
                Violation("width", region, length, rules.min_width, axis="x")
            )
        elif run.value == 0 and interior and length < rules.min_space:
            violations.append(
                Violation("space", region, length, rules.min_space, axis="x")
            )

    for run in _iter_column_runs(pattern.topology):
        length = int(ys[run.stop] - ys[run.start])
        interior = 0 < run.start and run.stop < rows
        region = GridRegion(run.start, run.index, run.stop - 1, run.index)
        if run.value == 1 and interior and length < rules.min_width:
            violations.append(
                Violation("width", region, length, rules.min_width, axis="y")
            )
        elif run.value == 0 and interior and length < rules.min_space:
            violations.append(
                Violation("space", region, length, rules.min_space, axis="y")
            )
    return violations


def reference_check_corners(pattern: SquishPattern) -> List[Violation]:
    """Distinct polygons touching only at a corner (zero spacing)."""
    violations: List[Violation] = []
    for row, col in diagonal_touch_pairs(pattern.topology):
        region = GridRegion(row, col, row + 1, col + 1)
        violations.append(Violation("corner", region, 0, 1))
    return violations


def reference_check_areas(
    pattern: SquishPattern, rules: DesignRules
) -> List[Violation]:
    """Polygon area against ``min_area`` (border-touching polygons exempt)."""
    violations: List[Violation] = []
    n_rows, n_cols = pattern.shape
    for poly in extract_polygons(pattern.topology, pattern.dx, pattern.dy):
        rows = [r for r, _ in poly.cells]
        cols = [c for _, c in poly.cells]
        touches_border = (
            min(rows) == 0
            or min(cols) == 0
            or max(rows) == n_rows - 1
            or max(cols) == n_cols - 1
        )
        if touches_border:
            continue
        area = poly.area
        if area < rules.min_area:
            region = GridRegion(min(rows), min(cols), max(rows), max(cols))
            violations.append(Violation("area", region, area, rules.min_area))
    return violations
