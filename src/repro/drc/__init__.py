"""Design-rule checking: rules, checker and violation reports."""

from repro.drc.checker import check_pattern, is_legal
from repro.drc.reference import reference_check_pattern
from repro.drc.rules import LAYER_RULES, DesignRules, rules_for_style
from repro.drc.violations import DRCReport, GridRegion, Violation

__all__ = [
    "DRCReport",
    "DesignRules",
    "GridRegion",
    "LAYER_RULES",
    "Violation",
    "check_pattern",
    "is_legal",
    "reference_check_pattern",
    "rules_for_style",
]
