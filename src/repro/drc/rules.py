"""Design rules: Space, Width and Area (Figure 3 of the paper).

A pattern is *legal* iff it is DRC-clean under these rules (Definition 1).
Per-layer presets mirror the two dataset styles: Layer-10001 is a dense
routing-like layer with a tight pitch, Layer-10003 a sparser blocky layer
with a relaxed pitch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class DesignRules:
    """Minimum-dimension design rules in nm (and nm^2 for area).

    Attributes:
        min_space: minimum separation between adjacent polygons.
        min_width: minimum extent of any shape span in either direction.
        min_area: minimum polygon area.
        name: rule-deck label, used in logs and reports.
    """

    min_space: int
    min_width: int
    min_area: int
    name: str = "default"

    def __post_init__(self) -> None:
        if self.min_space <= 0 or self.min_width <= 0 or self.min_area <= 0:
            raise ValueError("design rule values must be positive")

    @property
    def min_pitch(self) -> int:
        """Smallest legal line pitch (width + space)."""
        return self.min_width + self.min_space


#: Rule decks for the two dataset styles.  Values are chosen so that patterns
#: synthesised by :mod:`repro.data` are clean by construction while leaving
#: realistic headroom for generated topologies to violate them.
LAYER_RULES: Dict[str, DesignRules] = {
    "Layer-10001": DesignRules(
        min_space=30, min_width=40, min_area=4000, name="Layer-10001"
    ),
    "Layer-10003": DesignRules(
        min_space=60, min_width=80, min_area=16000, name="Layer-10003"
    ),
}


def rules_for_style(style: str) -> DesignRules:
    """Look up the rule deck for a dataset style tag."""
    try:
        return LAYER_RULES[style]
    except KeyError:
        raise KeyError(
            f"unknown style {style!r}; known styles: {sorted(LAYER_RULES)}"
        ) from None
