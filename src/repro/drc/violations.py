"""Violation records produced by the DRC checker.

Each violation localises the offence on the squish grid (cell coordinates)
so the LLM agent can target a repair via ``Topology_Modification``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class GridRegion:
    """Inclusive cell-coordinate bounding box ``(upper, left, bottom, right)``.

    Row indices grow downward in matrix order; ``upper <= bottom`` and
    ``left <= right``.
    """

    upper: int
    left: int
    bottom: int
    right: int

    def __post_init__(self) -> None:
        if self.bottom < self.upper or self.right < self.left:
            raise ValueError("inverted grid region")

    @property
    def rows(self) -> int:
        return self.bottom - self.upper + 1

    @property
    def cols(self) -> int:
        return self.right - self.left + 1

    def union(self, other: "GridRegion") -> "GridRegion":
        """Smallest region covering both."""
        return GridRegion(
            min(self.upper, other.upper),
            min(self.left, other.left),
            max(self.bottom, other.bottom),
            max(self.right, other.right),
        )

    def expanded(self, margin: int, shape: Tuple[int, int]) -> "GridRegion":
        """Grow by ``margin`` cells on every side, clamped to ``shape``."""
        rows, cols = shape
        return GridRegion(
            max(0, self.upper - margin),
            max(0, self.left - margin),
            min(rows - 1, self.bottom + margin),
            min(cols - 1, self.right + margin),
        )

    def as_tuple(self) -> Tuple[int, int, int, int]:
        return (self.upper, self.left, self.bottom, self.right)


@dataclass(frozen=True)
class Violation:
    """One design-rule violation.

    Attributes:
        rule: one of ``"space"``, ``"width"``, ``"area"``, ``"corner"``.
        region: offending cells on the squish grid.
        measured: measured value in nm (or nm^2 for area); 0 for corner.
        required: rule threshold the measurement fails.
        axis: ``"x"``/``"y"`` for directional rules, ``None`` otherwise.
    """

    rule: str
    region: GridRegion
    measured: int
    required: int
    axis: Optional[str] = None

    def describe(self) -> str:
        """Human/agent readable one-line description."""
        where = self.region.as_tuple()
        if self.rule == "corner":
            return f"corner-touching polygons at cells {where}"
        unit = "nm^2" if self.rule == "area" else "nm"
        axis = f" along {self.axis}" if self.axis else ""
        return (
            f"{self.rule} violation{axis} at cells {where}: "
            f"{self.measured} {unit} < required {self.required} {unit}"
        )


@dataclass
class DRCReport:
    """Outcome of a full DRC run over one pattern."""

    violations: List[Violation] = field(default_factory=list)

    @property
    def is_clean(self) -> bool:
        """True iff no rule is violated (Definition 1 legality)."""
        return not self.violations

    def count_by_rule(self) -> dict:
        """Histogram of violations per rule kind."""
        counts: dict = {}
        for v in self.violations:
            counts[v.rule] = counts.get(v.rule, 0) + 1
        return counts

    def worst_region(self) -> Optional[GridRegion]:
        """Bounding region around the densest violation cluster.

        Used by the agent as the modification target: the union of the
        regions of the most common rule kind keeps the repair local.
        """
        if not self.violations:
            return None
        counts = self.count_by_rule()
        dominant = max(counts, key=counts.get)
        regions = [v.region for v in self.violations if v.rule == dominant]
        merged = regions[0]
        for region in regions[1:]:
            merged = merged.union(region)
        return merged

    def summary(self) -> str:
        """Multi-line log text consumed by the LLM agent."""
        if self.is_clean:
            return "DRC clean"
        lines = [f"{len(self.violations)} violation(s): {self.count_by_rule()}"]
        lines.extend(v.describe() for v in self.violations[:8])
        if len(self.violations) > 8:
            lines.append(f"... and {len(self.violations) - 8} more")
        return "\n".join(lines)
