"""Design-rule checking on squish patterns.

Checks run directly on the squish representation, which is exact for
Manhattan geometry: run extents along rows/columns give widths and spaces,
and connected components give polygon areas.  Corner-touching polygons are a
zero-space violation that no geometry assignment can repair.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.drc.rules import DesignRules
from repro.drc.violations import DRCReport, GridRegion, Violation
from repro.geometry.grid import all_column_runs, all_row_runs, diagonal_touch_pairs
from repro.geometry.polygon import extract_polygons
from repro.squish.pattern import SquishPattern


def check_pattern(pattern: SquishPattern, rules: DesignRules) -> DRCReport:
    """Run all rule checks and return the full violation report."""
    report = DRCReport()
    report.violations.extend(_check_runs(pattern, rules))
    report.violations.extend(_check_corners(pattern))
    report.violations.extend(_check_areas(pattern, rules))
    return report


def is_legal(pattern: SquishPattern, rules: DesignRules) -> bool:
    """Definition 1: the pattern is legal iff DRC-clean."""
    return check_pattern(pattern, rules).is_clean


def _check_runs(pattern: SquishPattern, rules: DesignRules) -> List[Violation]:
    """Width of 1-runs and space of interior 0-runs, both axes."""
    violations: List[Violation] = []
    xs = np.concatenate(([0], np.cumsum(pattern.dx)))
    ys = np.concatenate(([0], np.cumsum(pattern.dy)))
    rows, cols = pattern.shape

    # Runs touching the window border are exempt from Width: the clipped
    # shape continues outside the pattern (standard window-DRC convention).
    for run in all_row_runs(pattern.topology):
        length = int(xs[run.stop] - xs[run.start])
        interior = 0 < run.start and run.stop < cols
        region = GridRegion(run.index, run.start, run.index, run.stop - 1)
        if run.value == 1 and interior and length < rules.min_width:
            violations.append(
                Violation("width", region, length, rules.min_width, axis="x")
            )
        elif run.value == 0 and interior and length < rules.min_space:
            violations.append(
                Violation("space", region, length, rules.min_space, axis="x")
            )

    for run in all_column_runs(pattern.topology):
        length = int(ys[run.stop] - ys[run.start])
        interior = 0 < run.start and run.stop < rows
        region = GridRegion(run.start, run.index, run.stop - 1, run.index)
        if run.value == 1 and interior and length < rules.min_width:
            violations.append(
                Violation("width", region, length, rules.min_width, axis="y")
            )
        elif run.value == 0 and interior and length < rules.min_space:
            violations.append(
                Violation("space", region, length, rules.min_space, axis="y")
            )
    return violations


def _check_corners(pattern: SquishPattern) -> List[Violation]:
    """Distinct polygons touching only at a corner (zero spacing)."""
    violations: List[Violation] = []
    for row, col in diagonal_touch_pairs(pattern.topology):
        region = GridRegion(row, col, row + 1, col + 1)
        violations.append(Violation("corner", region, 0, 1))
    return violations


def _check_areas(pattern: SquishPattern, rules: DesignRules) -> List[Violation]:
    """Polygon area against ``min_area`` (border-touching polygons exempt)."""
    violations: List[Violation] = []
    n_rows, n_cols = pattern.shape
    for poly in extract_polygons(pattern.topology, pattern.dx, pattern.dy):
        rows = [r for r, _ in poly.cells]
        cols = [c for _, c in poly.cells]
        touches_border = (
            min(rows) == 0
            or min(cols) == 0
            or max(rows) == n_rows - 1
            or max(cols) == n_cols - 1
        )
        if touches_border:
            continue
        area = poly.area
        if area < rules.min_area:
            region = GridRegion(min(rows), min(cols), max(rows), max(cols))
            violations.append(Violation("area", region, area, rules.min_area))
    return violations
