"""Design-rule checking on squish patterns.

Checks run directly on the squish representation, which is exact for
Manhattan geometry: run extents along rows/columns give widths and spaces,
and connected components give polygon areas.  Corner-touching polygons are a
zero-space violation that no geometry assignment can repair.

The hot path is fully vectorized: run extents come from
:class:`~repro.geometry.grid.RunSet` (all scan lines at once) and polygon
areas/bounding boxes from labelled-component reductions, so a DRC pass costs
a handful of NumPy sweeps instead of a Python loop per run.  Violation
objects are only materialised for the (few) offending runs/polygons, in the
same order the scalar reference produces them — :func:`check_pattern` with
``engine="reference"`` dispatches to :mod:`repro.drc.reference`, the
property-tested ground truth.
"""

from __future__ import annotations

from typing import List

import numpy as np
from scipy import ndimage

from repro.drc.rules import DesignRules
from repro.drc.violations import DRCReport, GridRegion, Violation
from repro.geometry.grid import (
    RunSet,
    column_run_set,
    diagonal_touch_pairs,
    label_components,
    row_run_set,
)
from repro.squish.pattern import SquishPattern

ENGINES = ("vectorized", "reference")


def check_pattern(
    pattern: SquishPattern, rules: DesignRules, engine: str = "vectorized"
) -> DRCReport:
    """Run all rule checks and return the full violation report."""
    if engine == "reference":
        from repro.drc.reference import reference_check_pattern

        return reference_check_pattern(pattern, rules)
    if engine != "vectorized":
        raise ValueError(f"unknown DRC engine {engine!r}; choose from {ENGINES}")
    report = DRCReport()
    # One labelling serves both the corner and the area check.
    labels = label_components(pattern.topology, connectivity=4)
    report.violations.extend(_check_runs(pattern, rules))
    report.violations.extend(_check_corners(pattern, labels))
    report.violations.extend(_check_areas(pattern, rules, labels))
    return report


def is_legal(
    pattern: SquishPattern, rules: DesignRules, engine: str = "vectorized"
) -> bool:
    """Definition 1: the pattern is legal iff DRC-clean."""
    return check_pattern(pattern, rules, engine=engine).is_clean


def _axis_run_violations(
    run_set: RunSet, coords: np.ndarray, rules: DesignRules, axis: str
) -> List[Violation]:
    """Vectorized width/space screening of one axis' runs.

    Runs touching the window border are exempt: the clipped shape continues
    outside the pattern (standard window-DRC convention).
    """
    lengths = coords[run_set.stop] - coords[run_set.start]
    interior = run_set.interior
    filled = run_set.value == 1
    bad = interior & np.where(
        filled, lengths < rules.min_width, lengths < rules.min_space
    )
    violations: List[Violation] = []
    for pos in np.flatnonzero(bad):
        index = int(run_set.index[pos])
        start = int(run_set.start[pos])
        last = int(run_set.stop[pos]) - 1
        if axis == "x":
            region = GridRegion(index, start, index, last)
        else:
            region = GridRegion(start, index, last, index)
        if filled[pos]:
            rule, required = "width", rules.min_width
        else:
            rule, required = "space", rules.min_space
        violations.append(
            Violation(rule, region, int(lengths[pos]), required, axis=axis)
        )
    return violations


def _check_runs(pattern: SquishPattern, rules: DesignRules) -> List[Violation]:
    """Width of 1-runs and space of interior 0-runs, both axes."""
    xs = np.concatenate(([0], np.cumsum(pattern.dx)))
    ys = np.concatenate(([0], np.cumsum(pattern.dy)))
    violations = _axis_run_violations(
        row_run_set(pattern.topology), xs, rules, "x"
    )
    violations.extend(
        _axis_run_violations(column_run_set(pattern.topology), ys, rules, "y")
    )
    return violations


def _check_corners(
    pattern: SquishPattern, labels: np.ndarray
) -> List[Violation]:
    """Distinct polygons touching only at a corner (zero spacing)."""
    violations: List[Violation] = []
    for row, col in diagonal_touch_pairs(pattern.topology, labels=labels):
        region = GridRegion(row, col, row + 1, col + 1)
        violations.append(Violation("corner", region, 0, 1))
    return violations


def _check_areas(
    pattern: SquishPattern, rules: DesignRules, labels: np.ndarray
) -> List[Violation]:
    """Polygon area against ``min_area`` (border-touching polygons exempt).

    Areas are exact integer reductions over the labelled components (cell
    area = ``dy[row] * dx[col]``); bounding boxes come from
    ``ndimage.find_objects`` so no per-cell Python work remains.
    """
    n_polygons = int(labels.max())
    if n_polygons == 0:
        return []
    rows_i, cols_i = np.nonzero(labels)
    labs = labels[rows_i, cols_i]
    cell_areas = pattern.dy[rows_i].astype(np.int64) * pattern.dx[cols_i]
    areas = np.zeros(n_polygons + 1, dtype=np.int64)
    np.add.at(areas, labs, cell_areas)

    violations: List[Violation] = []
    n_rows, n_cols = pattern.shape
    for label, slices in enumerate(ndimage.find_objects(labels), start=1):
        row_slice, col_slice = slices
        touches_border = (
            row_slice.start == 0
            or col_slice.start == 0
            or row_slice.stop == n_rows
            or col_slice.stop == n_cols
        )
        if touches_border:
            continue
        area = int(areas[label])
        if area < rules.min_area:
            region = GridRegion(
                row_slice.start,
                col_slice.start,
                row_slice.stop - 1,
                col_slice.stop - 1,
            )
            violations.append(Violation("area", region, area, rules.min_area))
    return violations
