"""Topology legalization: interval constraints, solvers, f_R(F, T)."""

from repro.legalize.constraints import (
    IntervalConstraint,
    extract_axis_constraints,
    requirement_per_line,
)
from repro.legalize.legalizer import (
    LegalizationResult,
    collect_legalize_timing,
    legalize,
    reset_legalize_timing,
)
from repro.legalize.solver import (
    AxisInfeasibleError,
    AxisSolution,
    solve_axis,
    solve_axis_lp,
)

__all__ = [
    "AxisInfeasibleError",
    "AxisSolution",
    "IntervalConstraint",
    "LegalizationResult",
    "collect_legalize_timing",
    "extract_axis_constraints",
    "legalize",
    "reset_legalize_timing",
    "requirement_per_line",
    "solve_axis",
    "solve_axis_lp",
]
