"""Topology legalization: interval constraints, solvers, f_R(F, T)."""

from repro.legalize.constraints import (
    IntervalConstraint,
    extract_axis_constraints,
    requirement_per_line,
)
from repro.legalize.legalizer import LegalizationResult, legalize
from repro.legalize.solver import (
    AxisInfeasibleError,
    AxisSolution,
    solve_axis,
    solve_axis_lp,
)

__all__ = [
    "AxisInfeasibleError",
    "AxisSolution",
    "IntervalConstraint",
    "LegalizationResult",
    "extract_axis_constraints",
    "legalize",
    "requirement_per_line",
    "solve_axis",
    "solve_axis_lp",
]
