"""Delta-vector solvers for interval-sum constraint systems.

The constraint system ``sum(d[a:b]) >= L`` with ``d >= min_delta`` and
``sum(d) == total`` is a system of difference constraints on the cumulative
scan-line positions ``X`` (``X_b - X_a >= L``).  Because every constraint
points forward (``a < b``), the graph is a DAG and the tightest feasible
positions are a single longest-path sweep — orders of magnitude faster than
a general LP while remaining exact.  A scipy ``linprog`` solver is kept as a
cross-check backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.legalize.constraints import IntervalConstraint


class AxisInfeasibleError(ValueError):
    """The axis budget cannot satisfy the constraint system.

    Attributes:
        required: minimum feasible total length in nm.
        total: available budget in nm.
        critical_span: cell span ``(start, stop)`` of the binding chain.
    """

    def __init__(self, required: int, total: int, critical_span: Tuple[int, int]):
        self.required = required
        self.total = total
        self.critical_span = critical_span
        super().__init__(
            f"axis needs {required} nm but only {total} nm available "
            f"(critical span {critical_span})"
        )


@dataclass
class AxisSolution:
    """Solved deltas plus solver diagnostics."""

    deltas: np.ndarray
    slack: int
    required: int


def solve_axis(
    n_cells: int,
    total: int,
    constraints: Sequence[IntervalConstraint],
    min_delta: int = 1,
    spread_slack: bool = True,
) -> AxisSolution:
    """Solve one axis via DAG longest path over cumulative positions.

    Returns deltas with ``sum == total`` and every constraint satisfied, or
    raises :class:`AxisInfeasibleError` carrying the critical span.

    When ``spread_slack`` is set the surplus budget is distributed
    monotonically across the axis instead of being dumped on the last cell,
    which keeps legalized patterns visually uniform (monotone offsets never
    invalidate a forward difference constraint).
    """
    if n_cells <= 0:
        raise ValueError("n_cells must be positive")
    if total < n_cells * min_delta:
        raise AxisInfeasibleError(n_cells * min_delta, total, (0, n_cells))

    outgoing: List[List[Tuple[int, int]]] = [[] for _ in range(n_cells + 1)]
    for c in constraints:
        if c.stop > n_cells:
            raise ValueError(f"constraint {c} exceeds axis length {n_cells}")
        outgoing[c.start].append((c.stop, c.min_length))

    # Longest path over node order 0..n; predecessor tracking recovers the
    # binding chain when the budget is exceeded.
    dist = np.zeros(n_cells + 1, dtype=np.int64)
    pred = np.arange(n_cells + 1) - 1
    for node in range(n_cells):
        step = dist[node] + min_delta
        if step > dist[node + 1]:
            dist[node + 1] = step
            pred[node + 1] = node
        for stop, length in outgoing[node]:
            reach = dist[node] + length
            if reach > dist[stop]:
                dist[stop] = reach
                pred[stop] = node

    required = int(dist[n_cells])
    if required > total:
        raise AxisInfeasibleError(
            required, total, _critical_span(pred, n_cells, dist)
        )

    positions = dist.copy()
    slack = total - required
    if spread_slack and slack > 0:
        offsets = (np.arange(n_cells + 1, dtype=np.int64) * slack) // n_cells
        positions = positions + offsets
    positions[n_cells] = total
    deltas = np.diff(positions)
    return AxisSolution(deltas=deltas, slack=slack, required=required)


def _critical_span(pred: np.ndarray, n_cells: int, dist: np.ndarray) -> Tuple[int, int]:
    """Span covered by the densest section of the binding chain.

    Walk the predecessor chain back from the terminal node and return the
    sub-span whose requirement density (nm per cell) is highest; this is the
    region the agent should regenerate.
    """
    chain = [n_cells]
    node = n_cells
    while node > 0:
        node = int(pred[node])
        chain.append(node)
    chain.reverse()
    best = (0, n_cells)
    best_density = -1.0
    for a, b in zip(chain[:-1], chain[1:]):
        density = float(dist[b] - dist[a]) / max(1, b - a)
        if density > best_density:
            best_density = density
            best = (a, b)
    return best


def solve_axis_lp(
    n_cells: int,
    total: int,
    constraints: Sequence[IntervalConstraint],
    min_delta: int = 1,
) -> Optional[np.ndarray]:
    """Reference LP backend (scipy HiGHS); returns ``None`` when infeasible.

    Exists to cross-validate :func:`solve_axis` in tests and for users who
    want to add objectives the longest-path formulation cannot express.
    """
    from scipy.optimize import linprog

    n_con = len(constraints)
    a_ub = np.zeros((n_con, n_cells))
    b_ub = np.zeros(n_con)
    for i, c in enumerate(constraints):
        a_ub[i, c.start : c.stop] = -1.0
        b_ub[i] = -float(c.min_length)
    a_eq = np.ones((1, n_cells))
    b_eq = np.array([float(total)])
    res = linprog(
        c=np.zeros(n_cells),
        A_ub=a_ub if n_con else None,
        b_ub=b_ub if n_con else None,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=[(float(min_delta), None)] * n_cells,
        method="highs",
    )
    if not res.success:
        return None
    return np.round(res.x).astype(np.int64)
