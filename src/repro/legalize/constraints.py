"""Geometry constraints extracted from a topology matrix.

Legalization (Eq. 13) assigns delta vectors to a topology so every design
rule holds.  For Manhattan geometry the Space and Width rules reduce to
lower bounds on *interval sums* of the delta vectors: every maximal 1-run
must stretch to at least ``min_width`` and every interior 0-run to at least
``min_space``.  Constraints from different rows over the same column span are
deduplicated, keeping the tightest bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.drc.rules import DesignRules
from repro.geometry.grid import (
    RunSet,
    as_topology,
    column_run_set,
    column_runs,
    row_run_set,
    row_runs,
)


@dataclass(frozen=True)
class IntervalConstraint:
    """Lower bound on the physical length of a half-open cell span.

    ``sum(deltas[start:stop]) >= min_length`` must hold; ``kind`` records the
    originating rule for diagnostics.
    """

    start: int
    stop: int
    min_length: int
    kind: str = "width"

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.stop:
            raise ValueError(f"bad span [{self.start}, {self.stop})")
        if self.min_length <= 0:
            raise ValueError("min_length must be positive")


def _axis_run_set(topology: np.ndarray, axis: str) -> RunSet:
    t = as_topology(topology)
    if axis == "x":
        return row_run_set(t)
    if axis == "y":
        return column_run_set(t)
    raise ValueError("axis must be 'x' or 'y'")


def extract_axis_constraints(
    topology: np.ndarray,
    axis: str,
    rules: DesignRules,
    engine: str = "vectorized",
) -> List[IntervalConstraint]:
    """Collect deduplicated interval constraints for one axis.

    ``axis="x"`` constrains the column deltas ``dx`` (scanning rows);
    ``axis="y"`` constrains the row deltas ``dy`` (scanning columns).

    The vectorized engine screens all runs at once and deduplicates spans
    with NumPy group-by reductions; ``engine="reference"`` keeps the original
    run-by-run dict loop as the property-test ground truth.
    """
    if engine == "reference":
        return _extract_axis_constraints_reference(topology, axis, rules)
    if engine != "vectorized":
        raise ValueError(f"unknown constraint engine {engine!r}")
    run_set = _axis_run_set(topology, axis)
    interior = run_set.interior
    # Border runs are exempt (the shape/space continues outside the window),
    # matching the DRC convention in repro.drc.checker.
    start = run_set.start[interior]
    if start.size == 0:
        return []
    stop = run_set.stop[interior]
    value = run_set.value[interior]
    bound = np.where(value == 1, rules.min_width, rules.min_space).astype(
        np.int64
    )

    # Group runs by span; keep the tightest bound per span and — for the
    # diagnostic ``kind`` — the first run (in scan order) achieving it,
    # mirroring the reference dict semantics exactly.
    span_key = start * np.int64(run_set.n_cells + 1) + stop
    unique_keys, inverse = np.unique(span_key, return_inverse=True)
    best = np.zeros(unique_keys.shape[0], dtype=np.int64)
    np.maximum.at(best, inverse, bound)
    achieves = bound == best[inverse]
    first = np.full(unique_keys.shape[0], start.shape[0], dtype=np.int64)
    np.minimum.at(first, inverse[achieves], np.flatnonzero(achieves))

    # np.unique sorts the composite key, which is (start, stop) lexicographic.
    return [
        IntervalConstraint(
            int(start[pos]),
            int(stop[pos]),
            int(best[group]),
            "width" if value[pos] == 1 else "space",
        )
        for group, pos in enumerate(first)
    ]


def _extract_axis_constraints_reference(
    topology: np.ndarray, axis: str, rules: DesignRules
) -> List[IntervalConstraint]:
    """Original scalar implementation (ground truth / benchmark baseline)."""
    t = as_topology(topology)
    if axis == "x":
        runs = [run for row in range(t.shape[0]) for run in row_runs(t, row)]
        n_cells = t.shape[1]
    elif axis == "y":
        runs = [
            run for col in range(t.shape[1]) for run in column_runs(t, col)
        ]
        n_cells = t.shape[0]
    else:
        raise ValueError("axis must be 'x' or 'y'")

    best: Dict[Tuple[int, int], IntervalConstraint] = {}
    for run in runs:
        interior = 0 < run.start and run.stop < n_cells
        if not interior:
            continue
        if run.value == 1:
            bound, kind = rules.min_width, "width"
        else:
            bound, kind = rules.min_space, "space"
        key = (run.start, run.stop)
        current = best.get(key)
        if current is None or current.min_length < bound:
            best[key] = IntervalConstraint(run.start, run.stop, bound, kind)
    return sorted(best.values(), key=lambda c: (c.start, c.stop))


def requirement_per_line(
    topology: np.ndarray, axis: str, rules: DesignRules, min_delta: int = 1
) -> np.ndarray:
    """Physical length each scan line needs on its own.

    For every row (``axis="x"``) or column (``axis="y"``) this sums the rule
    bounds of its runs, giving a fast per-line lower bound on the axis budget.
    The line with the largest requirement is the natural infeasibility
    witness reported back to the agent.
    """
    run_set = _axis_run_set(topology, axis)
    floor = run_set.lengths * np.int64(min_delta)
    bound = np.where(run_set.value == 1, rules.min_width, rules.min_space)
    contribution = np.where(
        run_set.interior, np.maximum(bound, floor), floor
    )
    req = np.zeros(run_set.n_lines, dtype=np.int64)
    np.add.at(req, run_set.index, contribution)
    return req
