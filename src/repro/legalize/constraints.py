"""Geometry constraints extracted from a topology matrix.

Legalization (Eq. 13) assigns delta vectors to a topology so every design
rule holds.  For Manhattan geometry the Space and Width rules reduce to
lower bounds on *interval sums* of the delta vectors: every maximal 1-run
must stretch to at least ``min_width`` and every interior 0-run to at least
``min_space``.  Constraints from different rows over the same column span are
deduplicated, keeping the tightest bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.drc.rules import DesignRules
from repro.geometry.grid import all_column_runs, all_row_runs, as_topology


@dataclass(frozen=True)
class IntervalConstraint:
    """Lower bound on the physical length of a half-open cell span.

    ``sum(deltas[start:stop]) >= min_length`` must hold; ``kind`` records the
    originating rule for diagnostics.
    """

    start: int
    stop: int
    min_length: int
    kind: str = "width"

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.stop:
            raise ValueError(f"bad span [{self.start}, {self.stop})")
        if self.min_length <= 0:
            raise ValueError("min_length must be positive")


def extract_axis_constraints(
    topology: np.ndarray, axis: str, rules: DesignRules
) -> List[IntervalConstraint]:
    """Collect deduplicated interval constraints for one axis.

    ``axis="x"`` constrains the column deltas ``dx`` (scanning rows);
    ``axis="y"`` constrains the row deltas ``dy`` (scanning columns).
    """
    t = as_topology(topology)
    if axis == "x":
        runs = all_row_runs(t)
        n_cells = t.shape[1]
    elif axis == "y":
        runs = all_column_runs(t)
        n_cells = t.shape[0]
    else:
        raise ValueError("axis must be 'x' or 'y'")

    best: Dict[Tuple[int, int], IntervalConstraint] = {}
    for run in runs:
        interior = 0 < run.start and run.stop < n_cells
        if not interior:
            # Border runs are exempt (the shape/space continues outside the
            # window), matching the DRC convention in repro.drc.checker.
            continue
        if run.value == 1:
            bound, kind = rules.min_width, "width"
        else:
            bound, kind = rules.min_space, "space"
        key = (run.start, run.stop)
        current = best.get(key)
        if current is None or current.min_length < bound:
            best[key] = IntervalConstraint(run.start, run.stop, bound, kind)
    return sorted(best.values(), key=lambda c: (c.start, c.stop))


def requirement_per_line(
    topology: np.ndarray, axis: str, rules: DesignRules, min_delta: int = 1
) -> np.ndarray:
    """Physical length each scan line needs on its own.

    For every row (``axis="x"``) or column (``axis="y"``) this sums the rule
    bounds of its runs, giving a fast per-line lower bound on the axis budget.
    The line with the largest requirement is the natural infeasibility
    witness reported back to the agent.
    """
    t = as_topology(topology)
    runs = all_row_runs(t) if axis == "x" else all_column_runs(t)
    n_lines = t.shape[0] if axis == "x" else t.shape[1]
    n_cells = t.shape[1] if axis == "x" else t.shape[0]
    req = np.zeros(n_lines, dtype=np.int64)
    for run in runs:
        interior = 0 < run.start and run.stop < n_cells
        if not interior:
            req[run.index] += run.length * min_delta
        elif run.value == 1:
            req[run.index] += max(rules.min_width, run.length * min_delta)
        else:
            req[run.index] += max(rules.min_space, run.length * min_delta)
    return req
