"""The non-linear legalization function ``f_R(F, T)`` (Eq. 13).

Given a topology matrix ``T``, a physical size ``F`` and a rule deck ``R``,
the legalizer assigns delta vectors so the decoded pattern is DRC-clean.
Width/Space rules are linear interval constraints solved exactly per axis;
the Area rule couples the axes and is handled by an iterative repair loop
(the "non-linear" part).  On failure the legalizer *explains itself*: the log
and ``failed_region`` identify the cells responsible, which is what enables
the LLM agent's mistake processing (Section 4.2).
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.drc.checker import check_pattern
from repro.drc.rules import DesignRules
from repro.drc.violations import DRCReport, GridRegion
from repro.geometry.grid import as_topology, diagonal_touch_pairs
from repro.legalize.constraints import (
    IntervalConstraint,
    extract_axis_constraints,
    requirement_per_line,
)
from repro.legalize.solver import AxisInfeasibleError, solve_axis
from repro.squish.pattern import SquishPattern


@dataclass
class LegalizationResult:
    """Outcome of one legalization attempt.

    Attributes:
        ok: True iff a DRC-clean pattern was produced.
        pattern: the legal pattern (None on failure).
        log: chronological solver messages, consumed by the agent.
        failed_region: grid region to blame on failure (None on success).
        report: final DRC report when a geometry was produced.
        area_iterations: how many area-repair rounds ran.
    """

    ok: bool
    pattern: Optional[SquishPattern] = None
    log: List[str] = field(default_factory=list)
    failed_region: Optional[GridRegion] = None
    report: Optional[DRCReport] = None
    area_iterations: int = 0

    def log_text(self) -> str:
        """The log as one string, the form the agent reads."""
        return "\n".join(self.log)


# Per-thread legalization accounting.  A served request runs all its
# legalize() calls on one worker thread, so the service can bracket a request
# with reset/collect to report the request's legalization wall-time without
# threading a timer through the agent pipeline.
_TIMING = threading.local()


def reset_legalize_timing() -> None:
    """Zero the calling thread's legalization call/time counters."""
    _TIMING.calls = 0
    _TIMING.seconds = 0.0


def collect_legalize_timing() -> Tuple[int, float]:
    """Return ``(calls, seconds)`` accumulated on the calling thread."""
    return (
        int(getattr(_TIMING, "calls", 0)),
        float(getattr(_TIMING, "seconds", 0.0)),
    )


def legalize(
    topology: np.ndarray,
    physical_size: Tuple[int, int],
    rules: DesignRules,
    style: Optional[str] = None,
    max_area_iterations: int = 4,
    engine: str = "vectorized",
) -> LegalizationResult:
    """Legalize ``topology`` into ``physical_size`` nm under ``rules``.

    Pipeline: corner pre-check (unfixable by geometry) -> per-axis interval
    solve -> area check -> iterative area repair -> final full DRC verify.
    ``engine`` selects the run/DRC implementation ("vectorized" is the
    production path; "reference" the scalar ground truth).
    """
    started = time.perf_counter()
    try:
        return _legalize(
            topology, physical_size, rules, style, max_area_iterations, engine
        )
    finally:
        _TIMING.calls = getattr(_TIMING, "calls", 0) + 1
        _TIMING.seconds = (
            getattr(_TIMING, "seconds", 0.0) + time.perf_counter() - started
        )


def _legalize(
    topology: np.ndarray,
    physical_size: Tuple[int, int],
    rules: DesignRules,
    style: Optional[str],
    max_area_iterations: int,
    engine: str,
) -> LegalizationResult:
    result = LegalizationResult(ok=False)
    t = as_topology(topology)
    width_nm, height_nm = int(physical_size[0]), int(physical_size[1])
    rows, cols = t.shape

    corners = diagonal_touch_pairs(t)
    if corners:
        row, col = corners[0]
        result.failed_region = GridRegion(
            max(0, row - 1), max(0, col - 1),
            min(rows - 1, row + 2), min(cols - 1, col + 2),
        )
        result.log.append(
            f"FAIL corner: {len(corners)} corner-touching polygon pair(s); "
            f"first at cells ({row},{col}); topology-level defect, "
            "no geometry assignment can satisfy the space rule"
        )
        return result

    x_constraints = extract_axis_constraints(t, "x", rules, engine=engine)
    y_constraints = extract_axis_constraints(t, "y", rules, engine=engine)
    result.log.append(
        f"extracted {len(x_constraints)} x / {len(y_constraints)} y "
        f"interval constraints for {rows}x{cols} topology"
    )

    extra_x: List[IntervalConstraint] = []
    extra_y: List[IntervalConstraint] = []
    for iteration in range(max_area_iterations):
        # Count rounds actually run (1-based), matching the success log's
        # "legalized in N round(s)".
        result.area_iterations = iteration + 1
        try:
            sol_x = solve_axis(cols, width_nm, x_constraints + extra_x)
        except AxisInfeasibleError as exc:
            _explain_axis_failure(result, t, "x", rules, exc, rows, cols)
            return result
        try:
            sol_y = solve_axis(rows, height_nm, y_constraints + extra_y)
        except AxisInfeasibleError as exc:
            _explain_axis_failure(result, t, "y", rules, exc, rows, cols)
            return result

        pattern = SquishPattern(
            topology=t.copy(), dx=sol_x.deltas, dy=sol_y.deltas, style=style
        )
        report = check_pattern(pattern, rules, engine=engine)
        result.report = report
        area_violations = [v for v in report.violations if v.rule == "area"]
        other = [v for v in report.violations if v.rule != "area"]
        if other:
            # Cannot happen for a correct solver; fail loudly if it does.
            result.failed_region = other[0].region
            result.log.append("FAIL internal: non-area violation after solve")
            result.log.append(report.summary())
            return result
        if not area_violations:
            result.ok = True
            result.pattern = pattern
            result.log.append(
                f"legalized in {iteration + 1} round(s); "
                f"x slack {sol_x.slack} nm, y slack {sol_y.slack} nm"
            )
            return result

        result.log.append(
            f"area repair round {iteration + 1}: "
            f"{len(area_violations)} undersized polygon(s)"
        )
        grew = _grow_area_constraints(
            pattern, area_violations, rules, extra_x, extra_y
        )
        if not grew:
            result.failed_region = area_violations[0].region
            result.log.append("FAIL area: repair constraints stopped growing")
            return result

    result.failed_region = (
        result.report.worst_region() if result.report else None
    )
    result.log.append(
        f"FAIL area: still violating after {max_area_iterations} repair rounds"
    )
    return result


def _explain_axis_failure(
    result: LegalizationResult,
    topology: np.ndarray,
    axis: str,
    rules: DesignRules,
    exc: AxisInfeasibleError,
    rows: int,
    cols: int,
) -> None:
    """Turn an infeasible axis into an actionable log + failed region."""
    req = requirement_per_line(topology, axis, rules)
    worst_line = int(np.argmax(req))
    a, b = exc.critical_span
    if axis == "x":
        region = GridRegion(worst_line, a, worst_line, max(a, b - 1))
    else:
        region = GridRegion(a, worst_line, max(a, b - 1), worst_line)
    region = region.expanded(2, (rows, cols))
    result.failed_region = region
    result.log.append(
        f"FAIL {axis}-axis: needs {exc.required} nm, budget {exc.total} nm; "
        f"critical span cells [{a},{b}); densest line index {worst_line} "
        f"requires {int(req[worst_line])} nm; "
        f"suggested repair region {region.as_tuple()}"
    )


def _grow_area_constraints(
    pattern: SquishPattern,
    area_violations,
    rules: DesignRules,
    extra_x: List[IntervalConstraint],
    extra_y: List[IntervalConstraint],
) -> bool:
    """Append interval constraints stretching undersized polygons.

    Scales each violating polygon's bounding box by ``sqrt(min_area/area)``
    (the area deficit is split evenly across both axes).  Returns False when
    no constraint got strictly tighter, which means the repair has stalled.
    """
    xs = pattern.x_coords()
    ys = pattern.y_coords()
    existing_x = {(c.start, c.stop): c.min_length for c in extra_x}
    existing_y = {(c.start, c.stop): c.min_length for c in extra_y}
    grew = False
    for violation in area_violations:
        region = violation.region
        scale = math.sqrt(rules.min_area / max(1, violation.measured)) * 1.05
        span_w = int(xs[region.right + 1] - xs[region.left])
        span_h = int(ys[region.bottom + 1] - ys[region.upper])
        want_w = int(math.ceil(span_w * scale))
        want_h = int(math.ceil(span_h * scale))
        key_x = (region.left, region.right + 1)
        key_y = (region.upper, region.bottom + 1)
        if want_w > existing_x.get(key_x, 0):
            existing_x[key_x] = want_w
            grew = True
        if want_h > existing_y.get(key_y, 0):
            existing_y[key_y] = want_h
            grew = True
    extra_x[:] = [
        IntervalConstraint(a, b, length, "area")
        for (a, b), length in sorted(existing_x.items())
    ]
    extra_y[:] = [
        IntervalConstraint(a, b, length, "area")
        for (a, b), length in sorted(existing_y.items())
    ]
    return grew
