"""Fitted-model registry: train once, serve many.

Every request that reaches :class:`~repro.serve.service.PatternService`
needs a fitted :class:`~repro.diffusion.model.ConditionalDiffusionModel`.
Training is seconds-cheap but far from free, and a production service must
never retrain per request — the registry caches fitted models keyed by the
full recipe that determines them: styles, window, dataset configuration and
seed.  Concurrent requests for the same key block on a per-key lock so the
model is fitted exactly once.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.data.dataset import DatasetConfig, build_training_set
from repro.data.styles import STYLES, TILE_NM
from repro.diffusion.model import ConditionalDiffusionModel


@dataclass(frozen=True)
class ModelKey:
    """Everything that determines a fitted back-end, hashable for caching.

    The defaults mirror :meth:`repro.core.chatpattern.ChatPattern.pretrained`:
    both styles, the paper's 128 window, 48 training tiles per style.
    """

    styles: Tuple[str, ...] = tuple(STYLES)
    window: int = 128
    train_count: int = 48
    seed: int = 2024
    tile_nm: int = TILE_NM
    map_scale: int = 8

    def dataset_config(self) -> DatasetConfig:
        return DatasetConfig(
            tile_nm=self.tile_nm,
            topology_size=self.window,
            map_scale=self.map_scale,
            seed=self.seed,
        )


def fit_model(key: ModelKey) -> ConditionalDiffusionModel:
    """Default builder: train the conditional back-end described by ``key``."""
    topologies, conditions = build_training_set(
        list(key.styles), key.train_count, key.dataset_config()
    )
    model = ConditionalDiffusionModel(
        window=key.window, n_classes=len(key.styles)
    )
    model.fit(topologies, conditions, np.random.default_rng(key.seed))
    return model


class ModelRegistry:
    """Thread-safe LRU cache of fitted models.

    Args:
        builder: ``key -> fitted model`` factory (default :func:`fit_model`).
        max_models: LRU capacity; the least-recently-used model is evicted
            when a new key would exceed it.
    """

    def __init__(
        self,
        builder: Optional[Callable[[ModelKey], ConditionalDiffusionModel]] = None,
        max_models: int = 8,
    ):
        if max_models < 1:
            raise ValueError("max_models must be >= 1")
        self._builder = builder or fit_model
        self._max_models = max_models
        self._models: "OrderedDict[ModelKey, ConditionalDiffusionModel]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self._key_locks: Dict[ModelKey, threading.Lock] = {}
        self._hits = 0
        self._misses = 0

    def get_or_fit(self, key: ModelKey) -> ConditionalDiffusionModel:
        """Return the cached model for ``key``, fitting it on first use."""
        with self._lock:
            model = self._models.get(key)
            if model is not None:
                self._hits += 1
                self._models.move_to_end(key)
                return model
            key_lock = self._key_locks.setdefault(key, threading.Lock())
        with key_lock:
            # Double-check: another thread may have finished fitting while
            # this one waited on the per-key lock.
            with self._lock:
                model = self._models.get(key)
                if model is not None:
                    self._hits += 1
                    self._models.move_to_end(key)
                    return model
            model = self._builder(key)
            self.put(key, model, _count_miss=True)
            return model

    def put(
        self,
        key: ModelKey,
        model: ConditionalDiffusionModel,
        _count_miss: bool = False,
    ) -> None:
        """Insert a pre-fitted model (e.g. a benchmark fixture) under ``key``."""
        if not model.fitted:
            raise ValueError("registry only caches fitted models")
        with self._lock:
            if _count_miss:
                self._misses += 1
            self._models[key] = model
            self._models.move_to_end(key)
            while len(self._models) > self._max_models:
                evicted_key, _ = self._models.popitem(last=False)
                # Drop the per-key fit lock with its model: worst case two
                # threads re-fit an evicted key concurrently (wasted work,
                # not corruption), and the lock table stays bounded.
                self._key_locks.pop(evicted_key, None)

    def __contains__(self, key: ModelKey) -> bool:
        with self._lock:
            return key in self._models

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    def clear(self) -> None:
        with self._lock:
            self._models.clear()
            self._key_locks.clear()

    def stats(self) -> Dict:
        with self._lock:
            return {
                "cached": len(self._models),
                "hits": self._hits,
                "misses": self._misses,
            }
