"""Fitted-model registry: train once, serve many — now across processes.

Every request that reaches :class:`~repro.serve.service.PatternService`
needs a fitted :class:`~repro.diffusion.model.ConditionalDiffusionModel`.
Training is seconds-cheap but far from free, and a production service must
never retrain per request — the registry caches fitted models keyed by the
full recipe that determines them.  The key vocabulary is shared with the
config system: :class:`ModelKey` derives from
:class:`~repro.api.config.TrainConfig`, so a pipeline config and the
registry describe a back-end identically.

Two cache tiers:

- **memory** — a thread-safe LRU; concurrent requests for the same key
  block on a per-key lock so the model is fitted exactly once.
- **disk** (optional ``save_dir``) — fitted models pickled under the
  recipe's content hash, so a *second process* (e.g. a repeated CLI run
  with ``--model-cache``) loads the fitted model instead of retraining.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

try:  # POSIX-only advisory locks; the cross-process single-flight fit
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

import numpy as np

from repro import faults
from repro.api.config import TrainConfig
from repro.data.dataset import build_training_set
from repro.diffusion.model import ConditionalDiffusionModel
from repro.obs.metrics import default_metrics

_CACHE_FORMAT = 1  # bump when the pickled model layout changes


@dataclass(frozen=True)
class ModelKey(TrainConfig):
    """The registry's cache key: exactly a :class:`TrainConfig` recipe.

    Deriving from ``TrainConfig`` keeps one recipe vocabulary between the
    config system and the registry; :meth:`from_config` upgrades a plain
    ``TrainConfig`` (the registry normalises its inputs, so either type
    works everywhere a key is accepted).
    """

    @classmethod
    def from_config(cls, config: TrainConfig) -> "ModelKey":
        if isinstance(config, cls):
            return config
        return cls(**{
            spec.name: getattr(config, spec.name)
            for spec in dataclasses.fields(TrainConfig)
        })


def fit_model(key: ModelKey) -> ConditionalDiffusionModel:
    """Default builder: train the conditional back-end described by ``key``."""
    topologies, conditions = build_training_set(
        list(key.styles), key.train_count, key.dataset_config()
    )
    model = ConditionalDiffusionModel(
        window=key.window, n_classes=len(key.styles)
    )
    model.fit(topologies, conditions, np.random.default_rng(key.seed))
    return model


class ModelRegistry:
    """Thread-safe LRU cache of fitted models, optionally disk-persistent.

    Args:
        builder: ``key -> fitted model`` factory (default :func:`fit_model`).
        max_models: LRU capacity; the least-recently-used model is evicted
            when a new key would exceed it (memory tier only — disk entries
            are never evicted).
        save_dir: directory for the persistent cache.  On a memory miss the
            registry tries ``save_dir/model-<recipe_hash>.pkl`` before
            fitting, and every freshly fitted model is written back, so the
            fit cost is paid once per recipe *per machine*, not per process.
            The disk tier is keyed by recipe only: every registry sharing a
            ``save_dir`` must use an equivalent ``builder``, or a
            stub-built model would be served to processes expecting the
            real recipe.
    """

    def __init__(
        self,
        builder: Optional[Callable[[ModelKey], ConditionalDiffusionModel]] = None,
        max_models: int = 8,
        save_dir: Optional[Union[str, Path]] = None,
        metrics=None,
    ):
        if max_models < 1:
            raise ValueError("max_models must be >= 1")
        self._builder = builder or fit_model
        self._max_models = max_models
        self._save_dir = (
            Path(save_dir).expanduser() if save_dir is not None else None
        )
        self._models: "OrderedDict[ModelKey, ConditionalDiffusionModel]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self._key_locks: Dict[ModelKey, threading.Lock] = {}
        self._hits = 0
        self._misses = 0
        self._disk_hits = 0
        self.metrics = metrics if metrics is not None else default_metrics()
        self._m_hits = self.metrics.counter(
            "repro_model_cache_hits_total",
            "Model resolutions served from a cache tier",
            labels=("tier",),
        )
        self._m_misses = self.metrics.counter(
            "repro_model_cache_misses_total",
            "Model resolutions that fitted from scratch",
        )
        self._m_resident = self.metrics.gauge(
            "repro_model_cache_resident", "Fitted models resident in memory"
        )

    @property
    def save_dir(self) -> Optional[Path]:
        return self._save_dir

    def cache_path(self, key: Union[ModelKey, TrainConfig]) -> Optional[Path]:
        """On-disk location of ``key``'s model (``None`` when not persistent)."""
        if self._save_dir is None:
            return None
        key = ModelKey.from_config(key)
        return self._save_dir / f"model-{key.recipe_hash()}.pkl"

    def get_or_fit(
        self, key: Union[ModelKey, TrainConfig]
    ) -> ConditionalDiffusionModel:
        """Return the cached model for ``key``, fitting it on first use."""
        return self.resolve(key)[0]

    def resolve(
        self,
        key: Union[ModelKey, TrainConfig],
        on_fit_start: Optional[Callable[[ModelKey], None]] = None,
    ) -> Tuple[ConditionalDiffusionModel, str]:
        """Like :meth:`get_or_fit`, but also reports where the model came
        from: ``"memory"``, ``"disk"`` or ``"fit"``.  ``on_fit_start`` is
        invoked just before the builder runs (progress reporting)."""
        key = ModelKey.from_config(key)
        with self._lock:
            model = self._models.get(key)
            if model is not None:
                self._hits += 1
                self._models.move_to_end(key)
                self._m_hits.inc(tier="memory")
                return model, "memory"
            key_lock = self._key_locks.setdefault(key, threading.Lock())
        with key_lock:
            # Double-check: another thread may have finished fitting while
            # this one waited on the per-key lock.
            with self._lock:
                model = self._models.get(key)
                if model is not None:
                    self._hits += 1
                    self._models.move_to_end(key)
                    self._m_hits.inc(tier="memory")
                    return model, "memory"
            model = self._load_from_disk(key)
            if model is not None:
                with self._lock:
                    self._disk_hits += 1
                self._m_hits.inc(tier="disk")
                self.put(key, model)
                return model, "disk"
            with self._fit_lock(key):
                # Single-flight across *processes*: while this one blocked
                # on the advisory lock, the winner may have published the
                # fitted model — re-check disk before paying for a refit
                # (prevents an N-worker retrain stampede at cold start).
                model = self._load_from_disk(key)
                if model is not None:
                    with self._lock:
                        self._disk_hits += 1
                    self._m_hits.inc(tier="disk")
                    self.put(key, model)
                    return model, "disk"
                if on_fit_start is not None:
                    on_fit_start(key)
                model = self._builder(key)
                self._ensure_compiled(model)
                self.put(key, model, _count_miss=True)
                self._save_to_disk(key, model)
                return model, "fit"

    @staticmethod
    def _ensure_compiled(model) -> bool:
        """Rehydrate the denoiser's compiled sampling tables, if it has any.

        ``fit`` compiles them itself, but models built by custom builders or
        unpickled from an older cache format may arrive without the compiled
        form — a registry-served model must always be sampling-ready.
        """
        hook = getattr(getattr(model, "denoiser", None), "compile_tables", None)
        if callable(hook):
            return bool(hook())
        return False

    @staticmethod
    def _compiled_provenance(model) -> bool:
        """Whether the model carries compiled tables (recorded on save)."""
        return bool(getattr(getattr(model, "denoiser", None), "_compiled", False))

    # -- disk tier -----------------------------------------------------

    @contextmanager
    def _fit_lock(self, key: ModelKey):
        """Advisory cross-process lock for ``key``'s fit (no-op in memory-only
        registries or where ``fcntl`` is unavailable).

        The lock file sits next to the cache entry and is left in place —
        unlinking it would race a concurrent locker onto a different inode,
        silently voiding the mutual exclusion.
        """
        path = self.cache_path(key)
        if path is None or fcntl is None:
            yield
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        lock_path = path.with_name(path.name + ".fitlock")
        handle = open(lock_path, "a+b")
        try:
            try:
                fcntl.flock(handle, fcntl.LOCK_EX)
            except OSError:  # pragma: no cover - exotic filesystems
                pass
            yield
        finally:
            try:
                fcntl.flock(handle, fcntl.LOCK_UN)
            except OSError:  # pragma: no cover
                pass
            handle.close()

    def _load_from_disk(
        self, key: ModelKey, retries: int = 3, retry_delay: float = 0.05
    ) -> Optional[ConditionalDiffusionModel]:
        path = self.cache_path(key)
        if path is None:
            return None
        for attempt in range(retries):
            if not path.exists():
                return None
            try:
                faults.fire("registry.disk_read")
                with open(path, "rb") as handle:
                    payload = pickle.load(handle)
                if payload.get("format") != _CACHE_FORMAT:
                    # A wrong-format payload is durable, not transient:
                    # retrying cannot fix it, so refit immediately.
                    return None
                model = payload["model"]
            except FileNotFoundError:
                return None
            except Exception:
                # A truncated or garbled read may be transient (a reader
                # racing a writer on a non-atomic filesystem, a torn NFS
                # page): retry briefly before degrading to a refit.  A
                # genuinely corrupt file exhausts the budget and refits —
                # the registry must never crash the service over cache
                # contents.
                if attempt + 1 < retries:
                    time.sleep(retry_delay * (attempt + 1))
                    continue
                return None
            if not getattr(model, "fitted", False):
                return None
            # Pre-compiled-table payloads (or denoisers whose __setstate__
            # does not self-heal) are compiled here, so a disk hit always
            # serves the fast sampling path.
            self._ensure_compiled(model)
            return model
        return None

    def ensure_on_disk(
        self, key: Union[ModelKey, TrainConfig], model: ConditionalDiffusionModel
    ) -> Optional[Path]:
        """Guarantee ``key``'s fitted model is present in the disk tier.

        The process-executor publish path: workers load models from disk by
        recipe hash, so a model bound directly into the engine (never
        resolved through :meth:`resolve`) must be written out before the
        first dispatch.  Returns the cache path, or ``None`` when the
        registry has no disk tier or the write failed.
        """
        path = self.cache_path(key)
        if path is None:
            return None
        if path.exists():
            return path
        key = ModelKey.from_config(key)
        with self._fit_lock(key):
            if path.exists():
                return path
            return self._save_to_disk(key, model)

    def _save_to_disk(self, key: ModelKey, model) -> Optional[Path]:
        path = self.cache_path(key)
        if path is None:
            return None
        path.parent.mkdir(parents=True, exist_ok=True)
        # Unique per writer: two processes saving the same recipe must not
        # interleave writes into one tmp file before the atomic publish.
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        payload = {
            "format": _CACHE_FORMAT,
            "recipe": key.as_dict(),
            # Provenance of the sampling-time representation: True when the
            # pickled denoiser carries its compiled logit tables, so readers
            # know whether a load rehydrates or recompiles.
            "compiled_tables": self._compiled_provenance(model),
            "model": model,
        }
        try:
            faults.fire("registry.disk_write")
            with open(tmp, "wb") as handle:
                pickle.dump(payload, handle)
            tmp.replace(path)  # atomic: concurrent readers see old or new
        except Exception:
            tmp.unlink(missing_ok=True)
            return None
        return path

    # -- memory tier ---------------------------------------------------

    def put(
        self,
        key: Union[ModelKey, TrainConfig],
        model: ConditionalDiffusionModel,
        _count_miss: bool = False,
    ) -> None:
        """Insert a pre-fitted model (e.g. a benchmark fixture) under ``key``."""
        if not model.fitted:
            raise ValueError("registry only caches fitted models")
        key = ModelKey.from_config(key)
        with self._lock:
            if _count_miss:
                self._misses += 1
                self._m_misses.inc()
            self._models[key] = model
            self._models.move_to_end(key)
            while len(self._models) > self._max_models:
                evicted_key, _ = self._models.popitem(last=False)
                # Drop the per-key fit lock with its model: worst case two
                # threads re-fit an evicted key concurrently (wasted work,
                # not corruption), and the lock table stays bounded.
                self._key_locks.pop(evicted_key, None)
            self._m_resident.set(len(self._models))

    def __contains__(self, key: Union[ModelKey, TrainConfig]) -> bool:
        key = ModelKey.from_config(key)
        with self._lock:
            return key in self._models

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    def clear(self) -> None:
        with self._lock:
            self._models.clear()
            self._key_locks.clear()
            self._m_resident.set(0)

    def stats(self) -> Dict:
        with self._lock:
            return {
                "cached": len(self._models),
                "hits": self._hits,
                "misses": self._misses,
                "disk_hits": self._disk_hits,
            }
