"""Single-model micro-batching facade over the serving engine.

The throughput lever of the serving subsystem: many concurrent requests
each ask for a handful of samples, and sampling cost is dominated by the
per-step walk of the reverse chain — which is almost as cheap for a
``(N, H, W)`` stack as for a single topology.  Compatible sampling jobs
(same topology shape; style conditions may differ freely, they chunk
inside the batched step) therefore coalesce into single calls of
:meth:`~repro.diffusion.model.ConditionalDiffusionModel.sample_batch`, so
N requests cost ~1 batched denoise trajectory instead of N.

Since the engine refactor the heavy lifting — admission, batching policy,
the executor pool — lives in :class:`~repro.serve.engine.ServeEngine`;
``MicroBatchScheduler`` is the classic one-model front door over a private
engine, with every engine knob (``policy``, ``engine_workers``,
``queue_limit``, ``deadline``) exposed as an optional argument.  Existing
callers keep the exact pre-engine behavior (one worker, greedy policy,
unbounded queue).

``BatchedSamplingModel`` is the client half: a drop-in stand-in for the
fitted model whose ``sample`` rides the shared scheduler while every other
attribute (``denoise_step``, ``noise_to``, ``schedule`` ...) delegates to
the real model, so modification/extension code paths work unchanged.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.diffusion.model import ConditionalDiffusionModel, SamplerSteps
from repro.obs.trace import NULL_TRACER
from repro.serve.engine import (
    BatchPolicy,
    EngineJob,
    ServeEngine,
    model_supports_sampler_steps,
)
from repro.serve.stats import BatchRecord, EngineStats, SchedulerStats

#: The scheduler's job type IS the engine's — one queue vocabulary.
SampleJob = EngineJob


class MicroBatchScheduler:
    """Gathers sampling jobs into batched denoise trajectories.

    A single-model facade over a private :class:`ServeEngine`: the classic
    constructor keeps its exact pre-engine semantics (one worker thread,
    greedy gather-window batching, unbounded queue), while the engine
    layers are a keyword away.

    Args:
        model: fitted diffusion back-end (must expose ``sample_batch``).
        gather_window: seconds the worker keeps collecting after the first
            job of a batch arrives.  Larger windows mean bigger batches and
            higher latency; jobs already queued are always drained.
        max_batch: cap on total *samples* per batched trajectory.
        sampler_steps: default reverse-step schedule for batched
            trajectories (``"full"`` | ``"bucketed"`` | int; ``None`` keeps
            the model's own default).  Individual jobs may override it.
        policy: batching policy name or :class:`BatchPolicy` instance
            (``"greedy"`` | ``"shape_bucketed"`` | ``"fair_share"`` |
            ``"adaptive"``).
        executor: execution tier (``"thread"`` | ``"process"``, or an
            :class:`~repro.serve.executors.ExecutorBackend` instance).
            The process tier needs an engine registry with a disk cache —
            prefer :class:`~repro.serve.engine.ServeEngine` directly there.
        engine_workers: executor threads draining batches in parallel.
        queue_limit: bound on queued jobs; beyond it ``submit`` raises
            :class:`~repro.serve.engine.QueueFullError` (``None`` =
            unbounded).
        deadline: default per-job deadline in seconds; expired queued jobs
            fail with :class:`~repro.serve.engine.DeadlineExpiredError`.

    Note on reproducibility: a batch's random stream is derived from the
    seeds of the jobs riding it, so results are reproducible for a fixed
    batch composition but — as with any micro-batching server — depend on
    which requests happen to coalesce.
    """

    def __init__(
        self,
        model: ConditionalDiffusionModel,
        gather_window: float = 0.02,
        max_batch: int = 64,
        sampler_steps: SamplerSteps = None,
        policy: Union[str, BatchPolicy] = "greedy",
        executor: str = "thread",
        engine_workers: int = 1,
        queue_limit: Optional[int] = None,
        deadline: Optional[float] = None,
    ):
        self._engine = ServeEngine(
            policy=policy,
            executor=executor,
            engine_workers=engine_workers,
            queue_limit=queue_limit,
            gather_window=gather_window,
            max_batch=max_batch,
            deadline=deadline,
        )
        self._client = self._engine.bind(
            model, sampler_steps=sampler_steps, label="scheduler"
        )
        self.model = model

    # -- knobs (mirrored onto the engine) ------------------------------

    @property
    def gather_window(self) -> float:
        return self._engine.gather_window

    @property
    def max_batch(self) -> int:
        return self._engine.max_batch

    @property
    def sampler_steps(self) -> SamplerSteps:
        return self._client.sampler_steps

    @property
    def engine(self) -> ServeEngine:
        """The underlying engine (policy, pool and admission layers)."""
        return self._engine

    # -- lifecycle -----------------------------------------------------

    @property
    def running(self) -> bool:
        return self._engine.running

    def start(self) -> "MicroBatchScheduler":
        self._engine.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Drain queued jobs, then stop the executor pool (see
        :meth:`ServeEngine.stop`)."""
        self._engine.stop(timeout=timeout)

    def __enter__(self) -> "MicroBatchScheduler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- submission ----------------------------------------------------

    def submit(
        self,
        count: int,
        condition: Optional[int],
        shape: Optional[Tuple[int, int]] = None,
        seed: int = 0,
        sampler_steps: SamplerSteps = None,
        source: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> SampleJob:
        """Queue a sampling job; returns immediately with its handle.

        Jobs may be submitted before :meth:`start` — they sit in the queue
        and form the first batch when the pool comes up.  Submitting to a
        *stopped* scheduler raises instead: no worker will ever drain the
        queue again, so the job's ``result()`` would hang forever.
        """
        return self._client.submit(
            count,
            condition,
            shape=shape,
            seed=seed,
            sampler_steps=sampler_steps,
            source=source,
            deadline=deadline,
        )

    # -- observability -------------------------------------------------

    @property
    def batch_records(self) -> List[BatchRecord]:
        return self._engine.batch_records

    def stats(self) -> SchedulerStats:
        return SchedulerStats.from_records(self.batch_records)

    def engine_stats(self) -> EngineStats:
        """The full engine view: scheduling plus admission counters."""
        return self._engine.stats()


class BatchedSamplingModel:
    """Per-request model client that routes ``sample`` through a scheduler.

    Quacks like the wrapped :class:`ConditionalDiffusionModel`: attribute
    access (``window``, ``fitted``, ``schedule``, ``denoise_step`` ...)
    delegates to the real model, so the agent's tools and the RePaint-style
    modification/extension operators run unmodified.  Only the hot path —
    full-trajectory sampling — is intercepted and coalesced across requests.

    One client is created per request so its counters double as the
    request's sampling statistics.  ``source`` tags this client's jobs for
    the fair-share policy (e.g. one tag per tenant), and ``deadline``
    bounds how long its jobs may sit queued.  ``tracer`` attaches each
    sampling call's lifecycle (admission → queue wait → batch gather →
    execute) as spans under the caller's current trace, using the
    timestamps the engine stamped on the job — so the trace follows the
    work across the executor threads without the engine knowing about
    tracing at all.  Default: no tracing.

    ``job`` optionally attaches a lifecycle :class:`~repro.serve.jobs.Job`:
    each sampling call then starts with a cancel checkpoint (so a
    cancelled request stops before queueing more engine work) and the same
    engine-stamped hops recorded as tracer spans are mirrored into the
    job's ``engine_events`` — one record, two views.
    """

    def __init__(
        self,
        scheduler,
        source: Optional[str] = None,
        deadline: Optional[float] = None,
        tracer=None,
        job=None,
    ):
        self._scheduler = scheduler
        self._model = scheduler.model
        self._source = source
        self._deadline = deadline
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._job = job
        # One client is usually driven by one request thread, but nothing
        # enforces that — operator code shares a client across the
        # engine's worker threads (and the hammer test does, on purpose).
        # ``+=`` on these counters is not atomic under free-threading, so
        # accumulation takes this lock.
        self._stats_lock = threading.Lock()
        self.queue_wait_seconds = 0.0
        self.sample_jobs = 0
        self.samples = 0
        self.degraded_jobs = 0
        self.batch_sizes: List[int] = []

    def __getattr__(self, name: str):
        return getattr(self._model, name)

    def sample(
        self,
        count: int,
        condition: Optional[int],
        rng: np.random.Generator,
        shape: Optional[Tuple[int, int]] = None,
        sampler_steps: SamplerSteps = None,
    ) -> np.ndarray:
        """Batched stand-in for ``ConditionalDiffusionModel.sample``."""
        if self._job is not None:
            # Cancel checkpoint: a cancelled request must not queue more
            # engine work (raises JobCancelled).
            self._job.check_cancelled()
        with self._tracer.span("sample", count=int(count)):
            submit_started = time.perf_counter()
            job = self._scheduler.submit(
                count,
                condition,
                shape=shape,
                # The job seed is drawn from the caller's stream, so a
                # request with a fixed base seed submits a reproducible
                # seed sequence.
                seed=int(rng.integers(0, 2**31 - 1)),
                sampler_steps=sampler_steps,
                source=self._source,
                deadline=self._deadline,
            )
            admitted_at = time.perf_counter()
            self._tracer.record("admission", submit_started, admitted_at)
            if self._job is not None:
                self._job.record_engine(
                    "admission", submit_started, admitted_at,
                    count=int(count),
                )
            result = job.result()
            # Attach the engine-side hops from the timestamps the workers
            # stamped on the job (they ran on other threads).
            if job.selected_at > 0:
                self._tracer.record(
                    "queue_wait", job.submitted_at, job.selected_at
                )
                if self._job is not None:
                    self._job.record_engine(
                        "queue_wait", job.submitted_at, job.selected_at
                    )
            if job.exec_started_at > 0:
                self._tracer.record(
                    "batch_gather", job.selected_at, job.exec_started_at,
                    batch_samples=job.batch_samples,
                )
                self._tracer.record(
                    "execute", job.exec_started_at, job.exec_ended_at,
                )
                if self._job is not None:
                    self._job.record_engine(
                        "batch_gather", job.selected_at, job.exec_started_at,
                        batch_samples=job.batch_samples,
                    )
                    self._job.record_engine(
                        "execute", job.exec_started_at, job.exec_ended_at
                    )
            if job.degrade_level > 0:
                # The adaptive policy traded this job's sampler quality
                # for latency; surface that in the trace and the
                # lifecycle record so the response can report it.
                self._tracer.record(
                    "degraded", job.selected_at, job.exec_ended_at,
                    level=job.degrade_level,
                    sampler_steps=str(job.sampler_steps),
                    requested=str(job.requested_sampler_steps),
                )
                if self._job is not None:
                    self._job.record_engine(
                        "degraded", job.selected_at, job.exec_ended_at,
                        level=job.degrade_level,
                        sampler_steps=str(job.sampler_steps),
                        requested=str(job.requested_sampler_steps),
                    )
        with self._stats_lock:
            self.queue_wait_seconds += job.queue_wait
            self.sample_jobs += 1
            self.samples += int(count)
            if job.degrade_level > 0:
                self.degraded_jobs += 1
            self.batch_sizes.append(job.batch_samples)
        return result


__all__ = [
    "BatchedSamplingModel",
    "MicroBatchScheduler",
    "SampleJob",
    "model_supports_sampler_steps",
]
