"""Request queue and micro-batching scheduler for diffusion sampling.

The throughput lever of the serving subsystem: many concurrent requests
each ask for a handful of samples, and sampling cost is dominated by the
per-step walk of the reverse chain — which is almost as cheap for a
``(N, H, W)`` stack as for a single topology.  The scheduler therefore
coalesces compatible sampling jobs (same topology shape; style conditions
may differ freely, they chunk inside the batched step) into single calls of
:meth:`~repro.diffusion.model.ConditionalDiffusionModel.sample_batch`, so N
requests cost ~1 batched denoise trajectory instead of N.

``BatchedSamplingModel`` is the client half: a drop-in stand-in for the
fitted model whose ``sample`` rides the shared scheduler while every other
attribute (``denoise_step``, ``noise_to``, ``schedule`` ...) delegates to
the real model, so modification/extension code paths work unchanged.
"""

from __future__ import annotations

import inspect
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.diffusion.model import ConditionalDiffusionModel, SamplerSteps
from repro.serve.stats import BatchRecord, SchedulerStats

_SENTINEL = object()


@dataclass
class SampleJob:
    """One request's sampling need, queued for batching."""

    count: int
    condition: Optional[int]
    shape: Tuple[int, int]
    seed: int
    #: reverse-step schedule override; ``None`` defers to the scheduler's
    #: configured default (jobs with different specs never share a batch —
    #: a batch is one trajectory)
    sampler_steps: SamplerSteps = None
    submitted_at: float = field(default_factory=time.perf_counter)
    future: "Future[np.ndarray]" = field(default_factory=Future)
    queue_wait: float = 0.0
    batch_samples: int = 0  # total samples of the batch this job rode in

    def result(self, timeout: Optional[float] = None) -> np.ndarray:
        """Block until the scheduler delivers this job's samples."""
        return self.future.result(timeout=timeout)


class MicroBatchScheduler:
    """Gathers sampling jobs into batched denoise trajectories.

    Args:
        model: fitted diffusion back-end (must expose ``sample_batch``).
        gather_window: seconds the worker keeps collecting after the first
            job of a batch arrives.  Larger windows mean bigger batches and
            higher latency; jobs already queued are always drained.
        max_batch: cap on total *samples* per batched trajectory.
        sampler_steps: default reverse-step schedule for batched
            trajectories (``"full"`` | ``"bucketed"`` | int; ``None`` keeps
            the model's own default).  Individual jobs may override it.

    Note on reproducibility: a batch's random stream is derived from the
    seeds of the jobs riding it, so results are reproducible for a fixed
    batch composition but — as with any micro-batching server — depend on
    which requests happen to coalesce.
    """

    def __init__(
        self,
        model: ConditionalDiffusionModel,
        gather_window: float = 0.02,
        max_batch: int = 64,
        sampler_steps: SamplerSteps = None,
    ):
        if gather_window < 0:
            raise ValueError("gather_window must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.model = model
        self.gather_window = float(gather_window)
        self.max_batch = int(max_batch)
        self.sampler_steps = sampler_steps
        # Pre-PR model stand-ins expose sample_batch(conditions, rng, shape)
        # without the step-schedule knob; detect that once so they keep
        # working as drop-in backends (they then sample their own way).
        try:
            parameters = inspect.signature(model.sample_batch).parameters
            self._model_takes_steps = "sampler_steps" in parameters or any(
                p.kind is inspect.Parameter.VAR_KEYWORD
                for p in parameters.values()
            )
        except (TypeError, ValueError):
            self._model_takes_steps = True
        self._queue: "queue.Queue" = queue.Queue()
        self._records: List[BatchRecord] = []
        self._records_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        # Serializes start/stop/submit so a submit cannot slip a job into
        # the queue between a stop()'s drain and its stopped-flag flip (the
        # job would hang forever), and a stop()'s final sweep cannot steal
        # jobs submitted to a concurrently restarted scheduler.  The worker
        # thread never takes this lock, so stop()'s join cannot deadlock.
        self._lifecycle_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "MicroBatchScheduler":
        with self._lifecycle_lock:
            if self.running:
                return self
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-serve-scheduler", daemon=True
            )
            self._thread.start()
            return self

    def stop(self, timeout: float = 10.0) -> None:
        """Drain queued jobs, then stop the worker thread.

        If the drain exceeds ``timeout`` the worker is hard-stopped (it
        finishes the in-flight batch and fails the rest).  The thread
        handle is only released once the worker is actually dead, so
        ``running`` never lies and a restart cannot race a live worker.
        """
        with self._lifecycle_lock:
            if not self.running:
                return
            self._queue.put(_SENTINEL)
            self._thread.join(timeout=timeout)
            if self._thread.is_alive():
                self._stop.set()
                self._thread.join(timeout=timeout)
            if self._thread is not None and not self._thread.is_alive():
                self._stop.set()
                self._thread = None
                # Hard-stop case: the worker died mid-queue, so sweep what
                # it never drained rather than strand those callers.
                self._fail_pending()

    def __enter__(self) -> "MicroBatchScheduler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- submission ----------------------------------------------------

    def submit(
        self,
        count: int,
        condition: Optional[int],
        shape: Optional[Tuple[int, int]] = None,
        seed: int = 0,
        sampler_steps: SamplerSteps = None,
    ) -> SampleJob:
        """Queue a sampling job; returns immediately with its handle.

        Jobs may be submitted before :meth:`start` — they sit in the queue
        and form the first batch when the worker comes up.  Submitting to a
        *stopped* scheduler raises instead: no worker will ever drain the
        queue again, so the job's ``result()`` would hang forever.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        job = SampleJob(
            count=int(count),
            condition=condition,
            shape=tuple(shape) if shape else (self.model.window,) * 2,
            seed=int(seed),
            sampler_steps=sampler_steps,
        )
        with self._lifecycle_lock:
            if self._stop.is_set() and not self.running:
                raise RuntimeError(
                    "scheduler is stopped; call start() before submitting"
                )
            self._queue.put(job)
        return job

    def _fail_pending(self) -> None:
        """Fail every job still queued so no caller hangs on ``result()``."""
        while True:
            try:
                leftover = self._queue.get_nowait()
            except queue.Empty:
                return
            if leftover is not _SENTINEL and not leftover.future.done():
                try:
                    leftover.future.set_exception(
                        RuntimeError("scheduler stopped before job ran")
                    )
                except Exception:  # already resolved by a concurrent sweep
                    pass

    # -- worker --------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                first = self._queue.get(timeout=0.05)
            except queue.Empty:
                continue
            if first is _SENTINEL:
                break
            jobs = [first]
            total = first.count
            deadline = time.perf_counter() + self.gather_window
            stopping = False
            while total < self.max_batch:
                remaining = deadline - time.perf_counter()
                try:
                    if remaining > 0:
                        nxt = self._queue.get(timeout=remaining)
                    else:
                        nxt = self._queue.get_nowait()
                except queue.Empty:
                    break
                if nxt is _SENTINEL:
                    stopping = True
                    break
                jobs.append(nxt)
                total += nxt.count
            self._execute(jobs)
            if stopping:
                break
        # Fail any jobs still queued after shutdown rather than hang callers.
        self._fail_pending()

    def _execute(self, jobs: Sequence[SampleJob]) -> None:
        now = time.perf_counter()
        for job in jobs:
            job.queue_wait = now - job.submitted_at
        # A batch is ONE trajectory, so jobs only coalesce when they agree
        # on both the topology shape and the reverse-step schedule.
        by_key: dict = {}
        for job in jobs:
            steps = (
                job.sampler_steps
                if job.sampler_steps is not None
                else self.sampler_steps
            )
            by_key.setdefault((job.shape, steps), []).append(job)
        for (shape, steps), group in by_key.items():
            conditions: List[Optional[int]] = []
            for job in group:
                conditions.extend([job.condition] * job.count)
            rng = np.random.default_rng(
                np.random.SeedSequence([job.seed % (2**32) for job in group])
            )
            started = time.perf_counter()
            kwargs = (
                {"sampler_steps": steps}
                if steps is not None and self._model_takes_steps
                else {}
            )
            try:
                samples = self.model.sample_batch(
                    conditions, rng, shape=shape, **kwargs
                )
            except Exception as exc:  # propagate to every waiting caller
                for job in group:
                    job.future.set_exception(exc)
                continue
            wall = time.perf_counter() - started
            with self._records_lock:
                self._records.append(
                    BatchRecord(
                        jobs=len(group),
                        samples=len(conditions),
                        shape=shape,
                        wall_seconds=wall,
                    )
                )
            offset = 0
            for job in group:
                job.batch_samples = len(conditions)
                job.future.set_result(samples[offset : offset + job.count])
                offset += job.count

    # -- observability -------------------------------------------------

    @property
    def batch_records(self) -> List[BatchRecord]:
        with self._records_lock:
            return list(self._records)

    def stats(self) -> SchedulerStats:
        return SchedulerStats.from_records(self.batch_records)


class BatchedSamplingModel:
    """Per-request model client that routes ``sample`` through a scheduler.

    Quacks like the wrapped :class:`ConditionalDiffusionModel`: attribute
    access (``window``, ``fitted``, ``schedule``, ``denoise_step`` ...)
    delegates to the real model, so the agent's tools and the RePaint-style
    modification/extension operators run unmodified.  Only the hot path —
    full-trajectory sampling — is intercepted and coalesced across requests.

    One client is created per request so its counters double as the
    request's sampling statistics.
    """

    def __init__(self, scheduler: MicroBatchScheduler):
        self._scheduler = scheduler
        self._model = scheduler.model
        self.queue_wait_seconds = 0.0
        self.sample_jobs = 0
        self.samples = 0
        self.batch_sizes: List[int] = []

    def __getattr__(self, name: str):
        return getattr(self._model, name)

    def sample(
        self,
        count: int,
        condition: Optional[int],
        rng: np.random.Generator,
        shape: Optional[Tuple[int, int]] = None,
        sampler_steps: SamplerSteps = None,
    ) -> np.ndarray:
        """Batched stand-in for ``ConditionalDiffusionModel.sample``."""
        job = self._scheduler.submit(
            count,
            condition,
            shape=shape,
            # The job seed is drawn from the caller's stream, so a request
            # with a fixed base seed submits a reproducible seed sequence.
            seed=int(rng.integers(0, 2**31 - 1)),
            sampler_steps=sampler_steps,
        )
        result = job.result()
        self.queue_wait_seconds += job.queue_wait
        self.sample_jobs += 1
        self.samples += int(count)
        self.batch_sizes.append(job.batch_samples)
        return result
