"""The layered serving engine: admission -> policy -> executors -> routing.

``ServeEngine`` decomposes what used to be one scheduler thread into four
explicit layers, each independently configurable:

1. **Admission** — a bounded request queue.  ``queue_limit`` caps the
   number of queued jobs; when full, :meth:`ServeEngine.submit` fast-fails
   with :class:`QueueFullError` instead of growing without bound.  Jobs may
   carry a deadline; a job still queued past its deadline fails with
   :class:`DeadlineExpiredError` rather than occupying a trajectory a
   caller has already given up on.
2. **Batching policy** — a pluggable :class:`BatchPolicy` decides which
   queued jobs form the next batch: ``greedy`` reproduces the classic
   gather-window FIFO behavior, ``shape_bucketed`` groups compatible jobs
   across the whole queue so one trajectory carries as many samples as
   possible, ``fair_share`` round-robins across request *sources* so a
   bulk client cannot starve interactive ones.
3. **Executor pool** — a pluggable :class:`ExecutorBackend`
   (:mod:`repro.serve.executors`): ``executor="thread"`` (default) runs
   ``engine_workers`` in-process threads, behavior-identical to the
   classic pool; ``executor="process"`` runs spawned worker processes
   that rehydrate their own fitted model from the disk registry and
   return batches through shared memory — true multi-core parallelism.
   Incompatible batches (different shapes, step schedules or models) no
   longer serialize behind each other.  ``stop`` drains gracefully,
   preserving the scheduler lifecycle guarantees (submit-after-stop
   raises, restart works, nothing ever hangs); a crashed process worker
   is respawned, its in-flight batch retried once, then failed with the
   terminal ``worker_crashed`` code.
4. **Routing** — the engine serves many models at once: :meth:`bind`
   resolves a :class:`~repro.serve.registry.ModelKey` through a
   :class:`~repro.serve.registry.ModelRegistry` (or accepts a pre-fitted
   model) and returns an :class:`EngineClient` whose jobs are tagged with
   their back-end.  A batch is always one trajectory of one model, but
   different models' batches execute concurrently on the pool.

:class:`~repro.serve.batching.MicroBatchScheduler` is now a thin
single-model facade over a private engine, so every existing caller gets
the new layers without an API change.
"""

from __future__ import annotations

import threading
import time
import weakref
from collections import OrderedDict, deque
from concurrent.futures import Future
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import faults
from repro.api.config import SERVE_POLICIES, TuneConfig
from repro.diffusion.model import SamplerSteps
from repro.obs.metrics import (
    DEFAULT_SIZE_BUCKETS,
    bucket_percentile,
    default_metrics,
)
from repro.serve.stats import BatchRecord, EngineStats, SchedulerStats
from repro.tune.controller import AdaptiveController, EngineLoadSnapshot


class EngineError(RuntimeError):
    """Base class of the engine's typed failure modes.

    Every subclass carries a stable machine-readable ``code`` so wire
    protocols and clients key on the code, never the message text.
    """

    code = "internal"


class QueueFullError(EngineError):
    """Admission rejected a job: the bounded queue is at ``queue_limit``.

    The backpressure signal of the serving engine — callers should shed
    load or retry later instead of queueing unboundedly.
    """

    code = "queue_full"


class DeadlineExpiredError(EngineError):
    """A job's deadline passed while it was still queued."""

    code = "deadline_expired"


class WorkerCrashedError(EngineError):
    """An executor worker died executing this job's batch — twice.

    The process tier retries an in-flight batch once on a fresh worker;
    only a second crash surfaces this terminal error to the affected jobs
    (the engine itself keeps serving on its remaining/respawned workers).
    """

    code = "worker_crashed"


class UnknownPolicyError(ValueError):
    """A batch-policy name is not in the registry.

    Carries the registered names as ``known`` (and lists them in the
    message), so callers — CLI validation, config errors — can show what
    *would* have worked.
    """

    def __init__(self, policy, known: Sequence[str]):
        self.policy = policy
        self.known = tuple(sorted(known))
        super().__init__(
            f"unknown batch policy {policy!r}; known: {list(self.known)}"
        )


def model_supports_sampler_steps(model) -> bool:
    """Explicit backend-protocol check for the step-schedule capability.

    A sampling back-end that understands the ``sampler_steps`` kwarg of
    ``sample_batch`` declares it with a truthy ``supports_sampler_steps``
    attribute (:class:`~repro.diffusion.model.ConditionalDiffusionModel`
    sets it as a class attribute).  Legacy stand-ins that lack the
    attribute are never passed the kwarg — they sample their own way.
    """
    return bool(getattr(model, "supports_sampler_steps", False))


# ---------------------------------------------------------------------------
# Jobs


class EngineJob:
    """One sampling job inside the engine (the unit the policies see).

    ``repro.serve.batching.SampleJob`` aliases this class, so the public
    scheduler surface is unchanged; the engine adds the routing/admission
    fields (``model``, ``source``, ``deadline``).
    """

    __slots__ = (
        "count",
        "condition",
        "shape",
        "seed",
        "sampler_steps",
        "source",
        "deadline",
        "model",
        "model_key",
        "model_label",
        "submitted_at",
        "future",
        "queue_wait",
        "batch_samples",
        "selected_at",
        "exec_started_at",
        "exec_ended_at",
        "requested_sampler_steps",
        "degrade_level",
    )

    def __init__(
        self,
        count: int,
        condition: Optional[int],
        shape: Tuple[int, int],
        seed: int = 0,
        sampler_steps: SamplerSteps = None,
        source: str = "default",
        deadline: Optional[float] = None,
        model=None,
        model_label: str = "model",
        model_key=None,
    ):
        self.count = int(count)
        self.condition = condition
        self.shape = tuple(shape)
        self.seed = int(seed)
        self.sampler_steps = sampler_steps
        self.source = source
        #: absolute ``time.perf_counter`` instant after which the job is
        #: dead on arrival at a worker (``None`` = no deadline)
        self.deadline = deadline
        self.model = model
        #: the recipe (:class:`~repro.serve.registry.ModelKey`) behind
        #: ``model`` — required by process-tier executors, whose workers
        #: resolve the model by recipe_hash rather than by object.
        self.model_key = model_key
        self.model_label = model_label
        self.submitted_at = time.perf_counter()
        self.future: "Future[np.ndarray]" = Future()
        self.queue_wait = 0.0
        self.batch_samples = 0  # total samples of the batch this job rode in
        # Lifecycle timestamps (perf_counter) stamped by the engine, the
        # substrate per-request traces are built from: when the policy
        # selected this job, and when its trajectory started/finished.
        self.selected_at = 0.0
        self.exec_started_at = 0.0
        self.exec_ended_at = 0.0
        # Adaptive-policy provenance: when the policy degrades a job's
        # step schedule at selection time, the original ask and the
        # controller level land here so the response can report it.
        self.requested_sampler_steps: SamplerSteps = None
        self.degrade_level = 0

    @property
    def batch_key(self) -> Tuple:
        """Trajectory compatibility: jobs coalesce only within one key."""
        return (id(self.model), self.shape, self.sampler_steps)

    def result(self, timeout: Optional[float] = None) -> np.ndarray:
        """Block until a worker delivers this job's samples."""
        return self.future.result(timeout=timeout)


class TrajectoryPlan:
    """One fully-derived trajectory: the unit an executor backend runs.

    :meth:`ServeEngine._plan` turns a selected batch into plans — jobs
    grouped by trajectory key, re-sorted into arrival order, conditions
    stacked and seeds collected — so every backend executes *identical*
    trajectories: the thread tier calls ``model.sample_batch`` in-process,
    the process tier ships everything but the model object to a worker
    that rebuilds the same rng from the same seeds.
    """

    __slots__ = (
        "jobs",
        "shape",
        "sampler_steps",
        "pass_sampler_steps",
        "model",
        "model_key",
        "model_label",
        "conditions",
        "seeds",
    )

    def __init__(
        self,
        jobs: List["EngineJob"],
        shape: Tuple[int, int],
        sampler_steps: SamplerSteps,
        pass_sampler_steps: bool,
        model,
        model_key,
        model_label: str,
        conditions: List[Optional[int]],
        seeds: List[int],
    ):
        self.jobs = jobs
        self.shape = shape
        self.sampler_steps = sampler_steps
        #: whether the thread tier would pass the ``sampler_steps`` kwarg
        #: (capability-checked against the *parent's* model object, so
        #: process workers make the identical call).
        self.pass_sampler_steps = pass_sampler_steps
        self.model = model
        self.model_key = model_key
        self.model_label = model_label
        self.conditions = conditions
        self.seeds = seeds

    @property
    def samples(self) -> int:
        return len(self.conditions)


# ---------------------------------------------------------------------------
# Batching policies


class BatchPolicy:
    """Strategy deciding which queued jobs form the next batch.

    ``select`` is called under the admission queue's lock with the queued
    jobs in arrival order; it must return a non-empty subset (when given a
    non-empty queue), which the engine removes and executes.  A selection
    may mix trajectory keys — the executor splits it into one trajectory
    per key and re-sorts each trajectory's jobs into arrival order, so a
    request's samples are reproducible for a fixed batch composition
    regardless of the order a policy picked the jobs in.

    Policies may keep state (e.g. fair-share rotation); the engine only
    calls ``select`` under the queue lock, so no extra locking is needed.
    Selection should stay O(jobs): it runs with admission blocked.
    """

    name = "base"

    def select(
        self, jobs: Sequence[EngineJob], max_batch: int
    ) -> List[EngineJob]:
        raise NotImplementedError

    def attach(self, engine: "ServeEngine") -> None:
        """Adoption hook: called once from ``ServeEngine.__init__``.

        Stateless policies ignore it; the adaptive policy uses it to grab
        the engine's metrics instruments and baseline gather window.
        """

    def tick(self, engine: "ServeEngine", now: float) -> None:
        """Periodic load hook, called under the engine's queue lock.

        Fires both when a worker is about to select a batch *and* on the
        idle wait loop — so a policy reacting to load keeps reacting when
        the queue is empty (that is what lets the adaptive policy restore
        full quality after a spike drains, instead of freezing at its
        last degraded level).  Must be cheap: it runs with admission
        blocked.  The base hook is a no-op.
        """


class GreedyPolicy(BatchPolicy):
    """Classic gather-window behavior: FIFO prefix up to ``max_batch``.

    Exactly the pre-engine scheduler: take jobs in arrival order until the
    sample budget is reached (the last job may overshoot it, as before).
    """

    name = "greedy"

    def select(self, jobs, max_batch):
        picked: List[EngineJob] = []
        total = 0
        for job in jobs:
            picked.append(job)
            total += job.count
            if total >= max_batch:
                break
        return picked


class ShapeBucketedPolicy(BatchPolicy):
    """Group compatible jobs across the *whole* queue, not a FIFO window.

    All queued jobs are bucketed by trajectory key (model, shape, step
    schedule) and the bucket with the most samples wins (ties: the bucket
    whose first job arrived earliest).  Interleaved mixed-shape traffic
    that greedy would fragment into tiny per-shape trajectories coalesces
    into full batches — and with multiple workers, the next-biggest bucket
    executes concurrently instead of waiting its turn.

    Anti-starvation aging: a minority-shape job on a busy queue would
    otherwise never belong to the biggest bucket.  Once the oldest queued
    job has waited longer than ``max_wait`` seconds, its bucket is
    selected regardless of size, so every bucket makes progress even on a
    single-worker engine under sustained majority-shape load.
    """

    name = "shape_bucketed"

    def __init__(self, max_wait: float = 0.25) -> None:
        self.max_wait = float(max_wait)

    def select(self, jobs, max_batch):
        buckets: "OrderedDict[Tuple, List[EngineJob]]" = OrderedDict()
        for job in jobs:
            buckets.setdefault(job.batch_key, []).append(job)
        oldest = min(jobs, key=lambda job: job.submitted_at)
        if time.perf_counter() - oldest.submitted_at > self.max_wait:
            best = buckets[oldest.batch_key]
        else:
            # Insertion order IS first-arrival order, so the enumeration
            # position breaks ties without rescanning the queue.
            best = min(
                buckets.values(),
                key=lambda group: -sum(job.count for job in group),
            )
        picked: List[EngineJob] = []
        total = 0
        for job in best:
            picked.append(job)
            total += job.count
            if total >= max_batch:
                break
        return picked


class FairSharePolicy(BatchPolicy):
    """Round-robin across request sources so no client starves another.

    Jobs are grouped by their ``source`` tag; sources are visited in
    least-served-first order (by cumulative samples served) and the batch
    is filled one job per source per round.  A bulk client with a hundred
    queued jobs therefore shares every batch with the interactive client
    that submitted one — instead of monopolizing the pool until its
    backlog drains.
    """

    name = "fair_share"

    def __init__(self) -> None:
        self._served: Dict[str, int] = {}

    def select(self, jobs, max_batch):
        by_source: "OrderedDict[str, deque]" = OrderedDict()
        for job in jobs:
            by_source.setdefault(job.source, deque()).append(job)
        # Least-served sources pick first; insertion (arrival) order breaks
        # ties so the rotation is deterministic.
        arrival = {source: i for i, source in enumerate(by_source)}
        ordered = sorted(
            by_source,
            key=lambda source: (self._served.get(source, 0), arrival[source]),
        )
        picked: List[EngineJob] = []
        total = 0
        while total < max_batch:
            progressed = False
            for source in ordered:
                queue = by_source[source]
                if not queue:
                    continue
                job = queue.popleft()
                picked.append(job)
                total += job.count
                progressed = True
                if total >= max_batch:
                    break
            if not progressed:
                break
        for job in picked:
            self._served[job.source] = (
                self._served.get(job.source, 0) + job.count
            )
        return picked


class AdaptivePolicy(BatchPolicy):
    """SLO-holding policy: greedy selection under a degrade controller.

    The online half of the ``repro.tune`` self-tuning subsystem.  Each
    tick (idle and pre-selection, under the queue lock) the policy feeds
    the engine's :class:`~repro.tune.controller.EngineLoadSnapshot` —
    queue depth, windowed queue-wait p95, worker busy fraction — to an
    :class:`~repro.tune.controller.AdaptiveController`.  Under sustained
    queue pressure the controller steps down a degrade ladder; while
    degraded, selected jobs' effective ``sampler_steps`` are rewritten
    toward ``"bucketed"`` (never below the configured floor, never above
    what the job asked for) and the engine's gather window is widened so
    batches coalesce harder.  When load calms, quality restores after the
    hysteresis window.  Every transition is counted
    (``repro_adaptive_degrade_total{direction}``), the current level is
    exported (``repro_adaptive_level``), and each degraded job carries
    its original ask in ``requested_sampler_steps``/``degrade_level`` so
    the response layer can stamp a ``degraded`` engine event.

    ``inner`` is the selection strategy being steered (greedy by default,
    matching the classic gather-window behavior when at full quality).
    """

    name = "adaptive"

    def __init__(
        self,
        controller: Optional[AdaptiveController] = None,
        config: Optional[TuneConfig] = None,
        inner: Optional[BatchPolicy] = None,
    ):
        if controller is not None and config is not None:
            raise ValueError("pass controller or config, not both")
        self.controller = (
            controller
            if controller is not None
            else AdaptiveController(config)
        )
        self.inner = inner if inner is not None else GreedyPolicy()
        self._base_gather: Optional[float] = None
        self._m_transitions = None
        self._m_level = None

    def attach(self, engine: "ServeEngine") -> None:
        self._base_gather = engine.gather_window
        self._m_transitions = engine._m_adaptive_transitions
        self._m_level = engine._m_adaptive_level

    def tick(self, engine: "ServeEngine", now: float) -> None:
        ctrl = self.controller
        if not ctrl.due(now):
            return
        before = ctrl.level
        level = ctrl.observe(engine._load_snapshot_locked(now))
        if level == before:
            return
        if self._m_transitions is not None:
            self._m_transitions.inc(
                direction="degrade" if level > before else "restore"
            )
            self._m_level.set(level)
        base = (
            self._base_gather
            if self._base_gather is not None
            else engine.gather_window
        )
        # Wider gathering while degraded, but never wide enough to spend
        # the SLO budget on waiting: cap at a quarter of the SLO.
        cap = max(base, 0.25 * ctrl.config.slo_p95)
        engine.gather_window = min(base * ctrl.gather_scale(), cap)

    def select(self, jobs, max_batch):
        picked = self.inner.select(jobs, max_batch)
        level = self.controller.level
        if level > 0:
            for job in picked:
                effective = self.controller.effective_steps(job.sampler_steps)
                if effective != job.sampler_steps:
                    job.requested_sampler_steps = job.sampler_steps
                    job.sampler_steps = effective
                    job.degrade_level = level
        return picked


_POLICY_CLASSES: Dict[str, Callable[[], BatchPolicy]] = {
    GreedyPolicy.name: GreedyPolicy,
    ShapeBucketedPolicy.name: ShapeBucketedPolicy,
    FairSharePolicy.name: FairSharePolicy,
    AdaptivePolicy.name: AdaptivePolicy,
}
assert set(_POLICY_CLASSES) == set(SERVE_POLICIES)


def resolve_batch_policy(policy: Union[str, BatchPolicy]) -> BatchPolicy:
    """Accept a policy instance or one of the registered policy names.

    Unknown names raise :class:`UnknownPolicyError` (a ``ValueError``)
    listing the registered names.
    """
    if isinstance(policy, BatchPolicy):
        return policy
    try:
        return _POLICY_CLASSES[policy]()
    except KeyError:
        raise UnknownPolicyError(policy, _POLICY_CLASSES) from None


# ---------------------------------------------------------------------------
# The engine


class ServeEngine:
    """Multi-worker, policy-driven, multi-model sampling engine.

    Args:
        registry: :class:`~repro.serve.registry.ModelRegistry` used by
            :meth:`bind` to resolve :class:`ModelKey` recipes.  Optional —
            an engine fed only pre-fitted models never needs one.
        policy: batching policy name (``"greedy"`` | ``"shape_bucketed"``
            | ``"fair_share"`` | ``"adaptive"``) or a :class:`BatchPolicy`
            instance (e.g. an :class:`AdaptivePolicy` built from a
            specific :class:`~repro.api.config.TuneConfig`).
        engine_workers: executor threads draining batches in parallel.
        queue_limit: max queued jobs before :meth:`submit` fast-fails with
            :class:`QueueFullError` (``None`` = unbounded, the legacy
            behavior).
        gather_window: seconds a worker keeps collecting after it sees the
            first queued job, giving concurrent submitters a chance to
            coalesce.  Skipped while draining or once a full batch is
            queued.
        max_batch: sample budget per selected batch.
        deadline: default per-job deadline in seconds from submission
            (``None`` = jobs never expire).  Per-job deadlines override it.
        executor: executor backend name (``"thread"`` | ``"process"``) or
            an :class:`~repro.serve.executors.ExecutorBackend` instance.
            ``"process"`` requires a registry with a disk tier and jobs
            that carry a ``model_key`` (bind by recipe, or pass ``key=``
            to :meth:`bind`).
        metrics: :class:`~repro.obs.metrics.MetricsRegistry` the engine
            reports into (``None`` = the process-wide default registry;
            pass :data:`~repro.obs.metrics.NULL_METRICS` to disable).
    """

    def __init__(
        self,
        registry=None,
        policy: Union[str, BatchPolicy] = "greedy",
        engine_workers: int = 1,
        queue_limit: Optional[int] = None,
        gather_window: float = 0.02,
        max_batch: int = 64,
        deadline: Optional[float] = None,
        executor="thread",
        metrics=None,
    ):
        if gather_window < 0:
            raise ValueError("gather_window must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if engine_workers < 1:
            raise ValueError("engine_workers must be >= 1")
        if queue_limit is not None and queue_limit < 1:
            raise ValueError("queue_limit must be >= 1 (or None)")
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be > 0 seconds (or None)")
        self.registry = registry
        self.policy = resolve_batch_policy(policy)
        self.engine_workers = int(engine_workers)
        self.queue_limit = queue_limit
        self.gather_window = float(gather_window)
        self.max_batch = int(max_batch)
        self.deadline = deadline

        # -- admission queue (layer 1) --------------------------------
        self._jobs: List[EngineJob] = []
        self._lock = threading.Lock()
        self._has_work = threading.Condition(self._lock)

        # -- executor pool (layer 3) ----------------------------------
        # Lazy import: executors imports engine types, so the backend
        # registry resolves at construction, not at module load.
        from repro.serve.executors import resolve_executor

        self.executor = resolve_executor(executor)
        self._draining = threading.Event()  # graceful: finish the queue
        self._halt = threading.Event()  # hard: finish in-flight, fail rest
        self._stopped = False  # a stopped engine refuses new jobs
        # Serializes start/stop/submit: a submit cannot slip a job between
        # a stop()'s drain and its stopped-flag flip, and a stop()'s sweep
        # cannot steal jobs from a concurrently restarted engine.  Workers
        # never take this lock, so joins cannot deadlock.
        self._lifecycle_lock = threading.Lock()

        # -- routing (layer 4) ----------------------------------------
        # Weak values: a binding must not pin its model in memory for the
        # engine's lifetime — long-lived multi-tenant engines rely on the
        # registry's LRU to bound resident fitted models, and dropping the
        # last client reference releases the model as before the engine.
        self._bindings: "weakref.WeakValueDictionary[int, EngineClient]" = (
            weakref.WeakValueDictionary()
        )
        self._bind_count = 0
        self._bind_lock = threading.Lock()

        # -- observability --------------------------------------------
        self._records: List[BatchRecord] = []
        self._records_lock = threading.Lock()
        self._submitted = 0
        self._rejected = 0
        self._expired = 0
        self.metrics = metrics if metrics is not None else default_metrics()
        m = self.metrics
        self._m_queue_depth = m.gauge(
            "repro_queue_depth", "Jobs currently queued for batching"
        )
        self._m_submitted = m.counter(
            "repro_jobs_submitted_total", "Jobs admitted into the engine"
        )
        self._m_rejected = m.counter(
            "repro_jobs_rejected_total",
            "Jobs fast-failed by admission backpressure",
        )
        self._m_expired = m.counter(
            "repro_jobs_expired_total",
            "Jobs whose deadline passed while still queued",
        )
        self._m_batch_size = m.histogram(
            "repro_batch_size_samples",
            "Samples per executed batch",
            buckets=DEFAULT_SIZE_BUCKETS,
            labels=("policy",),
        )
        self._m_gather_latency = m.histogram(
            "repro_gather_latency_seconds",
            "Worker wait from entering the gather loop to batch selection",
            labels=("policy",),
        )
        self._m_batch_latency = m.histogram(
            "repro_batch_latency_seconds",
            "Batched trajectory execution wall time",
            labels=("policy",),
        )
        self._m_queue_wait = m.histogram(
            "repro_queue_wait_seconds",
            "Per-job time from submission to batch selection",
        )
        self._m_worker_busy = m.counter(
            "repro_worker_busy_seconds_total",
            "Summed trajectory execution time per executor worker",
            labels=("worker",),
        )
        # Process-tier supervision instruments (stay at zero for threads).
        self._m_worker_restarts = m.counter(
            "repro_engine_worker_restarts_total",
            "Executor worker processes respawned after a crash",
            labels=("worker",),
        )
        self._m_ipc_roundtrip = m.histogram(
            "repro_ipc_roundtrip_seconds",
            "Process-executor dispatch overhead: round trip minus the "
            "child's own execution time",
            labels=("worker",),
        )
        self._m_worker_active = m.gauge(
            "repro_engine_worker_busy",
            "1 while an executor worker slot is executing a batch",
            labels=("worker",),
        )
        # Self-tuning instruments (stay at zero for static policies).
        self._m_adaptive_transitions = m.counter(
            "repro_adaptive_degrade_total",
            "Adaptive-policy level transitions (quality degrade/restore)",
            labels=("direction",),
        )
        self._m_adaptive_level = m.gauge(
            "repro_adaptive_level",
            "Current adaptive-policy degrade level (0 = full quality)",
        )

        # -- load-snapshot window state (read by the adaptive policy) --
        # Trajectory execution time accumulates here (under
        # ``_records_lock``) in addition to the per-worker counter, so
        # snapshots derive a busy fraction without scanning records.
        self._busy_total = 0.0
        self._load_prev: Optional[Tuple] = None
        self.policy.attach(self)

    # -- routing -------------------------------------------------------

    def bind(
        self,
        model_or_key,
        sampler_steps: SamplerSteps = None,
        source: str = "default",
        label: Optional[str] = None,
        key=None,
    ) -> "EngineClient":
        """Resolve a back-end and return its submission handle.

        ``model_or_key`` is either a pre-fitted model object or a
        :class:`~repro.serve.registry.ModelKey` /
        :class:`~repro.api.config.TrainConfig` recipe resolved through the
        engine's registry (fitting on first use).  Binding the same model
        object twice shares one routing token, so jobs from different
        clients of one model still coalesce.

        ``key`` names the recipe behind a pre-fitted model: process-tier
        executors resolve models by recipe_hash in their workers, so jobs
        they execute must carry one (binding by recipe sets it
        automatically).
        """
        from repro.api.config import TrainConfig

        if isinstance(model_or_key, TrainConfig):
            if self.registry is None:
                raise ValueError(
                    "binding a ModelKey requires an engine registry"
                )
            from repro.serve.registry import ModelKey

            key = ModelKey.from_config(model_or_key)
            model = self.registry.get_or_fit(key)
            label = label or f"model-{key.recipe_hash()[:8]}"
        else:
            model = model_or_key
            if key is not None:
                from repro.serve.registry import ModelKey

                key = ModelKey.from_config(key)
        token = id(model)
        with self._bind_lock:
            existing = self._bindings.get(token)
            if label is None:
                label = (
                    existing.label
                    if existing is not None
                    else f"model-{self._bind_count}"
                )
            self._bind_count += 1
            client = EngineClient(
                self,
                model,
                label,
                sampler_steps=sampler_steps,
                source=source,
                model_key=key,
            )
            self._bindings[token] = client
        return client

    # -- lifecycle -----------------------------------------------------

    @property
    def running(self) -> bool:
        return self.executor.running

    def start(self) -> "ServeEngine":
        with self._lifecycle_lock:
            if self.running:
                return self
            self._draining.clear()
            self._halt.clear()
            self._stopped = False
            self.executor.start(self)
            return self

    def stop(self, timeout: float = 10.0) -> None:
        """Drain queued jobs, then stop the worker pool.

        Graceful first: workers keep executing until the queue is empty
        (skipping gather windows), then exit.  If the drain exceeds
        ``timeout`` the pool is halted — workers finish their in-flight
        batch and every job still queued fails rather than hang its
        caller.  ``running`` only flips once every worker is actually
        dead, so a restart can never race a live pool.  Once the loops
        end, ``executor.shutdown()`` reaps backend resources (process
        workers, shared-memory segments) — no orphans survive.
        """
        with self._lifecycle_lock:
            if not self.running:
                # Idempotent resource sweep: loops may have exited on
                # their own (all-crashed slots), children could remain.
                self.executor.shutdown()
                return
            self._draining.set()
            with self._has_work:
                self._has_work.notify_all()
            deadline = time.perf_counter() + timeout
            self.executor.join(deadline)
            if self.executor.running:
                self._halt.set()
                with self._has_work:
                    self._has_work.notify_all()
                self.executor.join(time.perf_counter() + timeout)
            if not self.executor.running:
                self.executor.shutdown()
                self._stopped = True
                # Hard-halt case: sweep whatever the pool never drained.
                self._fail_pending("engine stopped before job ran")

    def __enter__(self) -> "ServeEngine":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- admission (layer 1) -------------------------------------------

    def submit_job(self, job: EngineJob) -> EngineJob:
        """Admit a fully-formed job into the queue (or fast-fail)."""
        if job.count < 1:
            raise ValueError("count must be >= 1")
        if job.model is None:
            raise ValueError("job must carry a model (use EngineClient)")
        if self.executor.requires_model_key and job.model_key is None:
            raise ValueError(
                f'the {self.executor.name!r} executor resolves models by '
                "recipe in its workers: bind by ModelKey/TrainConfig, or "
                "pass key= to bind() for a pre-fitted model"
            )
        if job.deadline is None and self.deadline is not None:
            job.deadline = job.submitted_at + self.deadline
        with self._lifecycle_lock:
            if self._stopped and not self.running:
                raise RuntimeError(
                    "engine is stopped; call start() before submitting"
                )
            with self._has_work:
                if (
                    self.queue_limit is not None
                    and len(self._jobs) >= self.queue_limit
                ):
                    self._rejected += 1
                    self._m_rejected.inc()
                    raise QueueFullError(
                        f"admission queue is full ({len(self._jobs)} queued, "
                        f"queue_limit={self.queue_limit}); retry later"
                    )
                self._jobs.append(job)
                self._submitted += 1
                self._m_submitted.inc()
                self._m_queue_depth.set(len(self._jobs))
                self._has_work.notify()
        return job

    def _fail_pending(self, message: str) -> None:
        """Fail every queued job so no caller hangs on ``result()``."""
        with self._has_work:
            leftovers, self._jobs = self._jobs, []
            self._m_queue_depth.set(0)
        for job in leftovers:
            if not job.future.done():
                try:
                    job.future.set_exception(RuntimeError(message))
                except Exception:  # already resolved by a concurrent sweep
                    pass

    def _expire_locked(self, now: float) -> List[EngineJob]:
        """Partition out deadline-expired jobs (queue lock held)."""
        if not any(job.deadline is not None for job in self._jobs):
            return []
        expired = [
            job
            for job in self._jobs
            if job.deadline is not None and now > job.deadline
        ]
        if expired:
            self._jobs = [job for job in self._jobs if job not in expired]
            self._expired += len(expired)
            self._m_expired.inc(len(expired))
            self._m_queue_depth.set(len(self._jobs))
        return expired

    @staticmethod
    def _fail_expired(expired: Sequence[EngineJob]) -> None:
        for job in expired:
            if not job.future.done():
                try:
                    job.future.set_exception(
                        DeadlineExpiredError(
                            f"job deadline expired after "
                            f"{time.perf_counter() - job.submitted_at:.3f}s "
                            "in queue"
                        )
                    )
                except Exception:
                    pass

    # -- executor pool (layer 3) ---------------------------------------

    def _worker_loop(self, index: int) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                break
            self._execute(batch, worker=index)
        if self._halt.is_set():
            self._fail_pending("engine stopped before job ran")

    def _queued_samples_locked(self) -> int:
        return sum(job.count for job in self._jobs)

    def _next_batch(self) -> Optional[List[EngineJob]]:
        """Block for work, honor the gather window, apply the policy.

        Returns ``None`` when the worker should exit: the pool is halting,
        or it is draining and the queue is empty.  Multiple workers may
        gather concurrently — selection runs under the queue lock, so each
        job lands in exactly one batch.
        """
        while True:
            expired: List[EngineJob] = []
            selected: Optional[List[EngineJob]] = None
            with self._has_work:
                while not self._jobs:
                    if self._halt.is_set() or self._draining.is_set():
                        return None
                    # Idle tick: load-reactive policies must keep seeing
                    # the (calm) queue while nothing is arriving, or a
                    # degraded level would outlive the spike that caused
                    # it.  No-op for the static policies.
                    self.policy.tick(self, time.perf_counter())
                    self._has_work.wait(timeout=0.05)
                # Gather latency starts the instant this worker first sees
                # queued work, so idle blocking above never counts.
                saw_work = time.perf_counter()
                self.policy.tick(self, saw_work)
                expired.extend(self._expire_locked(time.perf_counter()))
                if self._jobs:
                    if (
                        self.gather_window > 0
                        and not self._draining.is_set()
                        and not self._halt.is_set()
                        and self._queued_samples_locked() < self.max_batch
                    ):
                        gather_until = time.perf_counter() + self.gather_window
                        while (
                            self._queued_samples_locked() < self.max_batch
                            and not self._draining.is_set()
                            and not self._halt.is_set()
                        ):
                            remaining = gather_until - time.perf_counter()
                            if remaining <= 0:
                                break
                            self._has_work.wait(timeout=remaining)
                        expired.extend(
                            self._expire_locked(time.perf_counter())
                        )
                    if self._jobs:
                        selected = self.policy.select(
                            list(self._jobs), self.max_batch
                        )
                        if selected:
                            chosen = set(id(job) for job in selected)
                            self._jobs = [
                                job
                                for job in self._jobs
                                if id(job) not in chosen
                            ]
                            self._m_queue_depth.set(len(self._jobs))
            # Futures resolve outside the queue lock: a caller woken by
            # set_exception must never contend with admission.
            self._fail_expired(expired)
            if selected:
                self._m_gather_latency.observe(
                    time.perf_counter() - saw_work, policy=self.policy.name
                )
                return selected
            # Everything expired or another worker selected first — loop.

    # -- execution (one trajectory per compatible group) ----------------

    def _plan(
        self, jobs: Sequence[EngineJob], worker: int = 0
    ) -> List[TrajectoryPlan]:
        """Turn a selected batch into executable trajectory plans.

        Stamps selection timestamps, groups jobs by trajectory key, and
        derives each group's stacked conditions + seed list.  Every
        executor backend runs the returned plans — the derivation happens
        exactly once, so tiers cannot drift apart.
        """
        now = time.perf_counter()
        for job in jobs:
            job.queue_wait = now - job.submitted_at
            job.selected_at = now
            self._m_queue_wait.observe(job.queue_wait)
        groups: "OrderedDict[Tuple, List[EngineJob]]" = OrderedDict()
        for job in jobs:
            groups.setdefault(job.batch_key, []).append(job)
        plans: List[TrajectoryPlan] = []
        for (_, shape, steps), group in groups.items():
            # A trajectory's riders always line up in arrival order, so the
            # stacked conditions and the derived seed sequence — and hence
            # each job's samples — do not depend on the order the policy
            # happened to pick the jobs in (fair-share interleaves sources).
            group.sort(key=lambda job: job.submitted_at)
            model = group[0].model
            conditions: List[Optional[int]] = []
            for job in group:
                conditions.extend([job.condition] * job.count)
            plans.append(
                TrajectoryPlan(
                    jobs=group,
                    shape=shape,
                    sampler_steps=steps,
                    pass_sampler_steps=model_supports_sampler_steps(model),
                    model=model,
                    model_key=group[0].model_key,
                    model_label=group[0].model_label,
                    conditions=conditions,
                    seeds=[job.seed % (2**32) for job in group],
                )
            )
        return plans

    def _execute(self, jobs: Sequence[EngineJob], worker: int = 0) -> None:
        """In-process execution of a selected batch (the thread tier)."""
        for plan in self._plan(jobs, worker=worker):
            self._run_plan_local(plan, worker=worker)

    def _run_plan_local(self, plan: TrajectoryPlan, worker: int = 0) -> None:
        rng = np.random.default_rng(np.random.SeedSequence(plan.seeds))
        kwargs = (
            {"sampler_steps": plan.sampler_steps}
            if plan.sampler_steps is not None and plan.pass_sampler_steps
            else {}
        )
        started = time.perf_counter()
        try:
            faults.fire("engine.execute")
            samples = plan.model.sample_batch(
                plan.conditions, rng, shape=plan.shape, **kwargs
            )
        except Exception as exc:  # propagate to every waiting caller
            self._fail_plan(plan, exc)
            return
        wall = time.perf_counter() - started
        self._finish_plan(plan, samples, started, wall, worker=worker)

    def _finish_plan(
        self,
        plan: TrajectoryPlan,
        samples: np.ndarray,
        started: float,
        wall: float,
        worker: int = 0,
    ) -> None:
        """Record a delivered trajectory and distribute its samples.

        Called by every executor backend once a plan's samples exist —
        in-process for threads, copied out of shared memory for process
        workers.  ``started``/``wall`` are parent-clock dispatch time and
        duration, so traces stay consistent across tiers.
        """
        with self._records_lock:
            self._records.append(
                BatchRecord(
                    jobs=len(plan.jobs),
                    samples=plan.samples,
                    shape=plan.shape,
                    wall_seconds=wall,
                    model=plan.model_label,
                    worker=worker,
                    policy=self.policy.name,
                    started_at=started,
                )
            )
            self._busy_total += wall
        self._m_batch_size.observe(plan.samples, policy=self.policy.name)
        self._m_batch_latency.observe(wall, policy=self.policy.name)
        self._m_worker_busy.inc(wall, worker=str(worker))
        offset = 0
        for job in plan.jobs:
            job.batch_samples = plan.samples
            job.exec_started_at = started
            job.exec_ended_at = started + wall
            job.future.set_result(samples[offset : offset + job.count])
            offset += job.count

    @staticmethod
    def _fail_plan(plan: TrajectoryPlan, exc: BaseException) -> None:
        """Fail every rider of a plan (execution error or worker crash)."""
        for job in plan.jobs:
            if not job.future.done():
                try:
                    job.future.set_exception(exc)
                except Exception:
                    pass

    # -- observability -------------------------------------------------

    def _load_snapshot_locked(
        self, now: Optional[float] = None
    ) -> EngineLoadSnapshot:
        """Build a load snapshot; the caller holds the queue lock.

        ``queue_wait_p95`` and ``busy_fraction`` are *windowed*: derived
        from the deltas of the cumulative ``repro_queue_wait_seconds``
        bucket counts and the busy-seconds total since the previous
        snapshot, so the signals decay as soon as pressure does (the
        cumulative histogram alone would stay high long after a spike).
        With metrics disabled the p95 reads 0.0 and the controller falls
        back to its queue-depth and oldest-wait signals.
        """
        if now is None:
            now = time.perf_counter()
        depth = len(self._jobs)
        queued_samples = self._queued_samples_locked()
        oldest_wait = (
            now - min(job.submitted_at for job in self._jobs)
            if self._jobs
            else 0.0
        )
        counts = self._m_queue_wait.raw_counts()
        with self._records_lock:
            busy_total = self._busy_total
        p95 = 0.0
        busy_fraction = 0.0
        if self._load_prev is not None:
            prev_at, prev_counts, prev_busy = self._load_prev
            window = now - prev_at
            if window > 0:
                busy_fraction = min(
                    1.0,
                    max(0.0, busy_total - prev_busy)
                    / (window * self.engine_workers),
                )
            if counts is not None and prev_counts is not None:
                delta = [c - p for c, p in zip(counts, prev_counts)]
                if sum(delta) > 0:
                    p95 = bucket_percentile(
                        self._m_queue_wait.bounds, delta, 95.0
                    )
        self._load_prev = (now, counts, busy_total)
        return EngineLoadSnapshot(
            at=now,
            queue_depth=depth,
            queued_samples=queued_samples,
            oldest_wait=oldest_wait,
            queue_wait_p95=p95,
            busy_fraction=busy_fraction,
            workers=self.engine_workers,
        )

    def load_snapshot(self) -> EngineLoadSnapshot:
        """A thread-consistent view of current engine load.

        Note: windowed fields share their delta baseline with the
        adaptive policy's ticks — external polling therefore narrows the
        windows the policy sees (harmless, but worth knowing when reading
        ``queue_wait_p95`` next to controller decisions).
        """
        with self._has_work:
            return self._load_snapshot_locked()

    @property
    def batch_records(self) -> List[BatchRecord]:
        with self._records_lock:
            return list(self._records)

    def records_for(self, label: str) -> List[BatchRecord]:
        """Batch records of one bound model (routing-aware stats)."""
        return [r for r in self.batch_records if r.model == label]

    def stats(self) -> EngineStats:
        with self._has_work:
            queued = len(self._jobs)
            submitted = self._submitted
            rejected = self._rejected
            expired = self._expired
        return EngineStats(
            scheduler=SchedulerStats.from_records(self.batch_records),
            policy=self.policy.name,
            executor=self.executor.name,
            engine_workers=self.engine_workers,
            queue_limit=self.queue_limit,
            queued=queued,
            submitted=submitted,
            rejected=rejected,
            expired=expired,
            models=len(self._bindings),
        )


class EngineClient:
    """A model-bound submission handle: the routing layer's front door.

    Owns no threads — it tags jobs with its resolved back-end (and default
    step schedule / source) and forwards them to the shared engine.  Its
    surface mirrors the classic ``MicroBatchScheduler`` (``submit`` /
    ``stats`` / ``running`` / ``model``), so
    :class:`~repro.serve.batching.BatchedSamplingModel` and
    :class:`~repro.serve.service.PatternService` ride either transparently.
    """

    def __init__(
        self,
        engine: ServeEngine,
        model,
        label: str,
        sampler_steps: SamplerSteps = None,
        source: str = "default",
        model_key=None,
    ):
        self.engine = engine
        self.model = model
        self.label = label
        self.sampler_steps = sampler_steps
        self.source = source
        self.model_key = model_key

    @property
    def running(self) -> bool:
        return self.engine.running

    def start(self) -> "EngineClient":
        self.engine.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        self.engine.stop(timeout=timeout)

    def submit(
        self,
        count: int,
        condition: Optional[int],
        shape: Optional[Tuple[int, int]] = None,
        seed: int = 0,
        sampler_steps: SamplerSteps = None,
        source: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> EngineJob:
        """Queue a sampling job for this client's model; returns its handle.

        ``deadline`` is relative seconds from now; jobs still queued past
        it fail with :class:`DeadlineExpiredError`.  A full admission
        queue raises :class:`QueueFullError` immediately.
        """
        job = EngineJob(
            count=count,
            condition=condition,
            shape=tuple(shape) if shape else (self.model.window,) * 2,
            seed=seed,
            sampler_steps=(
                sampler_steps
                if sampler_steps is not None
                else self.sampler_steps
            ),
            source=source if source is not None else self.source,
            model=self.model,
            model_label=self.label,
            model_key=self.model_key,
        )
        if deadline is not None:
            if deadline <= 0:
                raise ValueError("deadline must be > 0 seconds")
            job.deadline = job.submitted_at + deadline
        return self.engine.submit_job(job)

    # -- observability (scoped to this model) --------------------------

    @property
    def batch_records(self) -> List[BatchRecord]:
        return self.engine.records_for(self.label)

    def stats(self) -> SchedulerStats:
        return SchedulerStats.from_records(self.batch_records)
