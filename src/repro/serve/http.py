"""Stdlib-only asyncio HTTP front-end over :class:`PatternService`.

The first wire protocol of the serving stack: requests enter as lifecycle
jobs (:mod:`repro.serve.jobs`) and every endpoint is a view of the job
table, so the process boundary adds no second bookkeeping layer.

Endpoints::

    POST   /v1/jobs           submit -> 202 {job_id} | 429 queue_full |
                              503 shutdown (draining; has Retry-After)
    GET    /v1/jobs/{id}      progress: state, stage, transitions,
                              stage_events, engine_events  | 404
    GET    /v1/jobs/{id}/result
                              200 result | 202 still running |
                              409 cancelled | 429 queue_full |
                              504 deadline_expired | 500 failed
    DELETE /v1/jobs/{id}      cancel: 200 honored | 409 conflict
                              (job already finished) | 404
    GET    /metrics           Prometheus text exposition (repro.obs)
    GET    /healthz           liveness + job-table counts

Status mapping is keyed on the job's stable ``error_code`` (never the
message text): the engine's admission backpressure surfaces as 429, its
deadline expiry as 504, a cancel race against a finished job as 409, a
process-executor worker lost mid-batch (``worker_crashed``) as 500.
Every 429 carries a ``Retry-After`` header derived from the service's
live batch latency (:meth:`PatternService.retry_after_hint`), so
backpressured clients pace their retries to how fast the queue actually
drains.

The server is a plain ``asyncio.start_server`` loop running on a
dedicated thread, so it embeds in tests (ephemeral port: ``port=0``), the
CLI (``repro serve --http``) and scripts the same way.  Handlers never
block the loop: job submission, status and cancel are sub-millisecond
job-table operations — the heavy work runs on the service's request pool
and the engine behind it.  ``serve_forever`` installs SIGINT/SIGTERM
handlers (both signals drain identically) and performs a graceful
shutdown: stop accepting, let every admitted job reach a terminal state,
then stop the service — which also reaps any process-executor workers
and their shared-memory segments, so a signalled exit leaves no orphan
children and nothing in ``/dev/shm``.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro import faults
from repro.faults import FaultError
from repro.obs.export import render_exposition
from repro.serve.engine import QueueFullError
from repro.serve.jobs import (
    CANCELLED,
    CODE_DEADLINE_EXPIRED,
    CODE_INVALID_REQUEST,
    CODE_QUEUE_FULL,
    CODE_SHUTDOWN,
    EXPIRED,
    SUCCEEDED,
)
from repro.serve.service import PatternService, ServeRequest

#: Submission bodies beyond this are rejected with 413.
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Request fields POST /v1/jobs accepts.
_SUBMIT_FIELDS = frozenset(
    {"text", "objective", "source", "deadline", "kind", "params",
     "client_job_id"}
)


class PatternHttpServer:
    """Asyncio HTTP server exposing a :class:`PatternService`.

    Args:
        service: the service to expose; ``start`` warms it (model resolve
            + engine up) before accepting, so no request ever pays — or
            blocks the event loop with — the model fit.
        host / port: bind address.  ``port=0`` binds an ephemeral port;
            read the real one from ``.port`` after ``start()``.
    """

    def __init__(
        self,
        service: PatternService,
        host: str = "127.0.0.1",
        port: int = 8763,
    ):
        self.service = service
        self.host = host
        self.port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._draining = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # -- lifecycle -----------------------------------------------------

    @property
    def running(self) -> bool:
        return self._server is not None and self._server.is_serving()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self, timeout: float = 120.0) -> "PatternHttpServer":
        """Warm the service, bind the socket, start serving (background
        thread); returns once the port is accepting."""
        if self._thread is not None:
            return self
        # The expensive part (model fit / registry load, engine start)
        # happens before the loop exists, so it cannot stall handlers.
        self.service.start()
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-http", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=timeout):
            raise RuntimeError("HTTP server failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"HTTP server failed to bind {self.host}:{self.port}"
            ) from self._startup_error
        return self

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            self._server = loop.run_until_complete(
                asyncio.start_server(self._handle_client, self.host, self.port)
            )
            self.port = self._server.sockets[0].getsockname()[1]
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            self._server.close()
            loop.run_until_complete(self._server.wait_closed())
            loop.close()

    def stop(self, drain: bool = True, stop_service: bool = True) -> None:
        """Stop the server; optionally drain admitted jobs and stop the
        service (the SIGINT path).  ``drain=False`` abandons queued work.

        The drain happens *while the event loop is still serving*: new
        submissions receive 503 + ``Retry-After`` (instead of a reset
        connection), status/result polls keep working, and only once
        every admitted job is terminal does the listener go down.
        """
        if drain:
            self._draining.set()
            self.service.drain()
        loop, self._loop = self._loop, None
        if loop is not None:
            loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None
        self._server = None
        self._ready.clear()
        self._draining.clear()
        if stop_service:
            self.service.stop()

    def serve_forever(self) -> None:
        """Blocking entrypoint with graceful drain on SIGINT/SIGTERM."""
        stop_requested = threading.Event()

        def _on_signal(signum, frame):
            stop_requested.set()

        previous = {
            sig: signal.signal(sig, _on_signal)
            for sig in (signal.SIGINT, signal.SIGTERM)
        }
        try:
            self.start()
            stop_requested.wait()
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)
            self.stop(drain=True, stop_service=True)

    def __enter__(self) -> "PatternHttpServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- connection handling -------------------------------------------

    async def _handle_client(self, reader, writer) -> None:
        extra_headers: Dict[str, str] = {}
        try:
            faults.fire("http.accept")
        except FaultError:
            # Injected accept failure: the client sees a dropped
            # connection, exactly like a crashed front-end.
            writer.close()
            return
        try:
            response = await self._handle_request(reader)
            # Handlers return (status, payload, content_type) or the same
            # plus a headers dict (e.g. Retry-After on 429).
            if len(response) == 4:
                status, payload, content_type, extra_headers = response
            else:
                status, payload, content_type = response
        except Exception as exc:  # defensive: a handler bug must not
            # kill the connection silently
            status, content_type = 500, "application/json"
            payload = json.dumps(
                {"error": f"{type(exc).__name__}: {exc}",
                 "error_code": "internal"}
            )
        try:
            faults.fire("http.respond")
            body = payload.encode("utf-8")
            extra = "".join(
                f"{name}: {value}\r\n"
                for name, value in (extra_headers or {}).items()
            )
            head = (
                f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"{extra}"
                "Connection: close\r\n"
                "\r\n"
            )
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
        except FaultError:
            pass  # injected respond failure: drop without answering
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()

    async def _handle_request(self, reader) -> Tuple:
        request_line = await reader.readline()
        if not request_line:
            return 400, _error_body("empty request"), "application/json"
        try:
            method, target, _version = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            return 400, _error_body("malformed request line"), "application/json"
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            return 400, _error_body("bad Content-Length"), "application/json"
        if length > MAX_BODY_BYTES:
            return (
                413,
                _error_body(f"body exceeds {MAX_BODY_BYTES} bytes"),
                "application/json",
            )
        body = await reader.readexactly(length) if length else b""
        return self._route(method.upper(), target, body)

    # -- routing -------------------------------------------------------

    def _route(self, method: str, target: str, body: bytes):
        parts = urlsplit(target)
        path = parts.path.rstrip("/") or "/"
        query = parse_qs(parts.query)
        if path == "/v1/jobs":
            if method == "POST":
                return self._submit(body)
            return self._method_not_allowed()
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            if rest.endswith("/result"):
                job_id = rest[: -len("/result")]
                if method == "GET":
                    return self._result(job_id, query)
                return self._method_not_allowed()
            job_id = rest
            if "/" in job_id:
                return self._not_found("unknown route")
            if method == "GET":
                return self._status(job_id)
            if method == "DELETE":
                return self._cancel(job_id)
            return self._method_not_allowed()
        if path == "/metrics" and method == "GET":
            exposition = render_exposition(self.service.metrics.snapshot())
            return 200, exposition, "text/plain; version=0.0.4; charset=utf-8"
        if path == "/healthz" and method == "GET":
            return (
                200,
                json.dumps({"ok": True, "jobs": self.service.jobs.counts()}),
                "application/json",
            )
        return self._not_found("unknown route")

    def _method_not_allowed(self):
        return 405, _error_body("method not allowed"), "application/json"

    def _not_found(self, message: str):
        return (
            404,
            _error_body(message, code="not_found"),
            "application/json",
        )

    # -- endpoints -----------------------------------------------------

    def _submit(self, body: bytes):
        if self._draining.is_set() or not self.service.accepting:
            # Graceful drain: refuse loudly and retryably instead of
            # resetting the connection — the client backs off and
            # resubmits against the restarted server.
            return (
                503,
                _error_body(
                    "service is draining; retry after the restart",
                    code=CODE_SHUTDOWN,
                ),
                "application/json",
                self._retry_after_headers(),
            )
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return (
                400,
                _error_body(f"bad JSON body: {exc}"),
                "application/json",
            )
        if not isinstance(payload, dict):
            return (
                400,
                _error_body("body must be a JSON object"),
                "application/json",
            )
        unknown = set(payload) - _SUBMIT_FIELDS
        if unknown:
            return (
                400,
                _error_body(
                    f"unknown fields {sorted(unknown)}; "
                    f"allowed: {sorted(_SUBMIT_FIELDS)}"
                ),
                "application/json",
            )
        kind = payload.get("kind", "chat")
        text = payload.get("text", "")
        if kind == "chat" and not text:
            return (
                400,
                _error_body('"text" is required for kind="chat"'),
                "application/json",
            )
        client_job_id = payload.get("client_job_id")
        if client_job_id is not None and (
            not isinstance(client_job_id, str) or not client_job_id
        ):
            return (
                400,
                _error_body('"client_job_id" must be a non-empty string'),
                "application/json",
            )
        try:
            request = ServeRequest(
                text=text,
                objective=payload.get("objective", "legality"),
                source=payload.get("source", "default"),
                deadline=payload.get("deadline"),
                kind=kind,
                params=payload.get("params"),
                client_job_id=client_job_id,
            )
            job = self.service.submit_job(request, enforce_queue_limit=True)
        except QueueFullError as exc:
            return (
                429,
                _error_body(str(exc), code=exc.code),
                "application/json",
                self._retry_after_headers(),
            )
        except (ValueError, TypeError) as exc:
            return 400, _error_body(str(exc)), "application/json"
        return (
            202,
            json.dumps(
                {
                    "job_id": job.job_id,
                    "state": job.state,
                    "status_url": f"/v1/jobs/{job.job_id}",
                    "result_url": f"/v1/jobs/{job.job_id}/result",
                }
            ),
            "application/json",
        )

    def _status(self, job_id: str):
        status = self.service.job_status(job_id)
        if status is None:
            return self._not_found(f"unknown job {job_id!r}")
        return 200, json.dumps(status), "application/json"

    def _cancel(self, job_id: str):
        job, effective = self.service.cancel_job(job_id)
        if job is None:
            return self._not_found(f"unknown job {job_id!r}")
        if not effective:
            # The cancel lost the race: the job already reached a
            # different terminal state.
            return (
                409,
                json.dumps(
                    {
                        "error": (
                            f"job {job_id} already finished in state "
                            f"{job.state}; nothing to cancel"
                        ),
                        "error_code": "conflict",
                        "job_id": job_id,
                        "state": job.state,
                    }
                ),
                "application/json",
            )
        return (
            200,
            json.dumps(
                {
                    "job_id": job_id,
                    "state": job.state,
                    "cancel_requested": job.cancel_requested,
                }
            ),
            "application/json",
        )

    def _result(self, job_id: str, query: Dict):
        job = self.service.jobs.get(job_id)
        if job is None:
            return self._not_found(f"unknown job {job_id!r}")
        job.maybe_expire()
        if not job.is_terminal:
            return (
                202,
                json.dumps(
                    {
                        "job_id": job_id,
                        "state": job.state,
                        "stage": job.stage,
                        "detail": "job has not reached a terminal state yet",
                    }
                ),
                "application/json",
            )
        if job.state == SUCCEEDED:
            include_topologies = query.get("topologies", ["0"])[0] in (
                "1",
                "true",
            )
            return (
                200,
                json.dumps(_result_payload(job, include_topologies)),
                "application/json",
            )
        # Terminal failures map by stable code, never by message text.
        status = 500
        if job.error_code == CODE_SHUTDOWN:
            # Shed during a drain, not cancelled by the user: retryable.
            status = 503
        elif job.state == CANCELLED:
            status = 409
        elif job.state == EXPIRED or job.error_code == CODE_DEADLINE_EXPIRED:
            status = 504
        elif job.error_code == CODE_QUEUE_FULL:
            status = 429
        elif job.error_code == CODE_INVALID_REQUEST:
            status = 400
        body = json.dumps(
            {
                "job_id": job_id,
                "state": job.state,
                "error": job.error,
                "error_code": job.error_code,
            }
        )
        if status in (429, 503):
            return status, body, "application/json", self._retry_after_headers()
        return status, body, "application/json"

    def _retry_after_headers(self) -> Dict[str, str]:
        """``Retry-After`` for backpressure responses, from live latency."""
        return {"Retry-After": str(self.service.retry_after_hint())}


def _error_body(message: str, code: str = CODE_INVALID_REQUEST) -> str:
    return json.dumps({"error": message, "error_code": code})


def _result_payload(job, include_topologies: bool) -> Dict:
    """JSON view of a succeeded job's outcome (library + stage record)."""
    response = job.response
    result = response.result if response is not None else None
    payload: Dict = {
        "job_id": job.job_id,
        "state": job.state,
        "produced": job.produced,
        "stage_events": [e.as_dict() for e in job.stage_events],
    }
    if response is not None:
        payload["request_id"] = response.request.request_id
        payload["stats"] = {
            "wall_seconds": round(response.stats.wall_seconds, 4),
            "queue_wait_seconds": round(
                response.stats.queue_wait_seconds, 4
            ),
            "samples": response.stats.samples,
            "store_added": response.stats.store_added,
            "store_deduplicated": response.stats.store_deduplicated,
        }
    if result is None:
        return payload
    payload["dropped"] = result.dropped
    scores = getattr(result, "scores", None)
    if scores:
        payload["scores"] = scores
    timings = getattr(result, "timings", None)
    if timings is not None:
        payload["timings"] = [t.as_dict() for t in timings]
    library = getattr(result, "library", None)
    if library is not None:
        patterns = []
        for index, pattern in enumerate(library):
            entry: Dict = {"index": index}
            topology = getattr(pattern, "topology", None)
            if topology is not None:
                entry["shape"] = list(topology.shape)
                if include_topologies:
                    entry["topology"] = topology.astype(int).tolist()
            patterns.append(entry)
        payload["library"] = patterns
    return payload


__all__ = [
    "MAX_BODY_BYTES",
    "PatternHttpServer",
]
