"""Blocking client SDK for the :mod:`repro.serve.http` API.

Stdlib-only (``http.client``), one connection per call — the simplest
correct client for scripts, CI smoke jobs and the load benchmark::

    client = ServeClient("http://127.0.0.1:8763")
    job_id = client.submit(kind="pipeline", params={"count": 2})
    final = client.wait(job_id, timeout=120)       # polls GET status
    assert final["state"] == "SUCCEEDED"
    result = client.result(job_id)                 # GET .../result
    print(result["produced"], client.metrics()[:80])

Failures raise :class:`ServeClientError` carrying the HTTP status and the
server's stable machine-readable ``code`` (``queue_full``,
``deadline_expired``, ``cancelled``, ...), so callers branch on codes,
never on message text.

Resilience: construct with ``retries > 0`` and :meth:`submit` rides out
backpressure (429), drains (503) and transport failures with capped,
jittered exponential backoff that honors the server's ``Retry-After``
hint.  Retried submissions are made *idempotent* by a client job id —
auto-generated when not supplied — so a retry after a lost response can
never run the same work twice: the server returns the job it already
created under that key.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import uuid
from typing import Dict, Optional
from urllib.parse import urlsplit

from repro.serve.jobs import TERMINAL_STATES

#: Error codes (and statuses) submit() treats as retryable.
RETRYABLE_CODES = frozenset({"queue_full", "shutdown", "transport"})
RETRYABLE_STATUSES = frozenset({429, 503})


class ServeClientError(RuntimeError):
    """An HTTP request that did not succeed.

    Attributes:
        status: HTTP status code (0 for transport-level failures).
        code: the server's stable error code (``queue_full`` | ... |
            ``unknown`` when the response carried none).
        payload: the decoded response body, when there was one.
        retry_after: seconds the server suggested waiting before a retry
            (the ``Retry-After`` header on 429 backpressure responses);
            ``None`` when the response carried no hint.
    """

    def __init__(
        self,
        message: str,
        status: int = 0,
        code: str = "unknown",
        payload: Optional[Dict] = None,
        retry_after: Optional[int] = None,
    ):
        super().__init__(message)
        self.status = status
        self.code = code
        self.payload = payload or {}
        self.retry_after = retry_after


class JobTimeout(ServeClientError):
    """``wait`` ran out of client-side patience (the job keeps running)."""


class ServeClient:
    """Blocking HTTP client for a :class:`PatternHttpServer`.

    Args:
        base_url: e.g. ``http://127.0.0.1:8763`` (scheme optional).
        timeout: per-request socket timeout in seconds.
        retries: submission retry budget (0 = fail fast, the default).
        backoff_base / backoff_cap: exponential backoff window in
            seconds; attempt *n* sleeps ``min(cap, base * 2**n)`` plus
            proportional jitter, or the server's ``Retry-After`` when
            the response carried one (still capped).
        rng: injectable randomness source for the jitter (tests).
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retries: int = 0,
        backoff_base: float = 0.1,
        backoff_cap: float = 5.0,
        rng: Optional[random.Random] = None,
    ):
        if "//" not in base_url:
            base_url = "http://" + base_url
        parts = urlsplit(base_url)
        if not parts.hostname:
            raise ValueError(f"cannot parse host from {base_url!r}")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.timeout = timeout
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.retries = int(retries)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self._rng = rng or random.Random()
        # Backpressure pacing hint from the most recent response
        # (Retry-After header, 429s); None when the server sent none.
        self.last_retry_after: Optional[int] = None
        #: backoff sleeps performed by submit() over this client's life
        self.retries_performed = 0

    # -- transport -----------------------------------------------------

    def _request(
        self, method: str, path: str, body: Optional[Dict] = None
    ):
        """One request -> (status, decoded payload | text)."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            data = json.dumps(body).encode("utf-8") if body is not None else None
            headers = {"Content-Type": "application/json"} if data else {}
            try:
                conn.request(method, path, body=data, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException) as exc:
                raise ServeClientError(
                    f"request {method} {path} failed: {exc}", code="transport"
                ) from exc
            content_type = response.headers.get("Content-Type", "")
            retry_after = response.headers.get("Retry-After")
            try:
                self.last_retry_after = (
                    int(retry_after) if retry_after is not None else None
                )
            except ValueError:
                self.last_retry_after = None
            if content_type.startswith("application/json"):
                payload = json.loads(raw.decode("utf-8") or "{}")
            else:
                payload = raw.decode("utf-8")
            return response.status, payload
        finally:
            conn.close()

    def _raise_for(self, method: str, path: str, status: int, payload):
        body = payload if isinstance(payload, dict) else {}
        raise ServeClientError(
            f"{method} {path} -> {status}: "
            f"{body.get('error', payload)}",
            status=status,
            code=body.get("error_code", "unknown"),
            payload=body,
            retry_after=self.last_retry_after,
        )

    # -- API -----------------------------------------------------------

    def _backoff_delay(
        self, attempt: int, retry_after: Optional[int]
    ) -> float:
        """Capped, jittered exponential backoff honoring ``Retry-After``."""
        if retry_after is not None and retry_after > 0:
            delay = float(retry_after)
        else:
            delay = self.backoff_base * (2 ** attempt)
        delay = min(self.backoff_cap, delay)
        # Full proportional jitter de-synchronizes a fleet of clients
        # all backpressured by the same event.
        return delay * (0.5 + 0.5 * self._rng.random())

    def submit(
        self,
        text: str = "",
        kind: str = "chat",
        objective: Optional[str] = None,
        source: Optional[str] = None,
        deadline: Optional[float] = None,
        params: Optional[Dict] = None,
        client_job_id: Optional[str] = None,
        retries: Optional[int] = None,
    ) -> str:
        """POST /v1/jobs; returns the job id (raises on 4xx/5xx —
        notably ``code == "queue_full"`` on backpressure).

        With a retry budget (``retries`` here, or the constructor's),
        retryable failures — 429 backpressure, 503 drain, transport
        errors — are retried with capped jittered exponential backoff,
        honoring the server's ``Retry-After``.  A ``client_job_id`` is
        auto-generated for retried submissions so a retry after a lost
        response resolves to the server-side job already created.
        """
        budget = self.retries if retries is None else int(retries)
        if budget > 0 and client_job_id is None:
            client_job_id = f"ck-{uuid.uuid4().hex}"
        body: Dict = {"text": text, "kind": kind}
        if objective is not None:
            body["objective"] = objective
        if source is not None:
            body["source"] = source
        if deadline is not None:
            body["deadline"] = deadline
        if params is not None:
            body["params"] = params
        if client_job_id is not None:
            body["client_job_id"] = client_job_id
        attempt = 0
        while True:
            try:
                status, payload = self._request("POST", "/v1/jobs", body)
                if status != 202:
                    self._raise_for("POST", "/v1/jobs", status, payload)
                return payload["job_id"]
            except ServeClientError as exc:
                retryable = (
                    exc.status in RETRYABLE_STATUSES
                    or exc.code in RETRYABLE_CODES
                )
                if not retryable or attempt >= budget:
                    raise
                time.sleep(self._backoff_delay(attempt, exc.retry_after))
                self.retries_performed += 1
                attempt += 1

    def status(self, job_id: str) -> Dict:
        """GET /v1/jobs/{id}: the full progress view."""
        path = f"/v1/jobs/{job_id}"
        status, payload = self._request("GET", path)
        if status != 200:
            self._raise_for("GET", path, status, payload)
        return payload

    def result(self, job_id: str, include_topologies: bool = False) -> Dict:
        """GET /v1/jobs/{id}/result for a SUCCEEDED job.

        Raises :class:`ServeClientError` with the mapped status otherwise:
        202 still running, 409 cancelled, 429 queue_full, 504 deadline.
        """
        path = f"/v1/jobs/{job_id}/result"
        if include_topologies:
            path += "?topologies=1"
        status, payload = self._request("GET", path)
        if status != 200:
            self._raise_for("GET", path, status, payload)
        return payload

    def cancel(self, job_id: str) -> Dict:
        """DELETE /v1/jobs/{id}; raises on 404/409 (cancel-conflict)."""
        path = f"/v1/jobs/{job_id}"
        status, payload = self._request("DELETE", path)
        if status != 200:
            self._raise_for("DELETE", path, status, payload)
        return payload

    def wait(
        self,
        job_id: str,
        timeout: float = 120.0,
        interval: float = 0.05,
    ) -> Dict:
        """Poll GET status until the job is terminal; returns the final
        status view.  Raises :class:`JobTimeout` when patience runs out."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in TERMINAL_STATES:
                return status
            if time.monotonic() >= deadline:
                raise JobTimeout(
                    f"job {job_id} still {status['state']} "
                    f"after {timeout:.1f}s",
                    code="timeout",
                    payload=status,
                )
            time.sleep(interval)

    def metrics(self) -> str:
        """GET /metrics: the Prometheus text exposition."""
        status, payload = self._request("GET", "/metrics")
        if status != 200:
            self._raise_for("GET", "/metrics", status, payload)
        return payload

    def health(self) -> Dict:
        status, payload = self._request("GET", "/healthz")
        if status != 200:
            self._raise_for("GET", "/healthz", status, payload)
        return payload


__all__ = [
    "JobTimeout",
    "RETRYABLE_CODES",
    "RETRYABLE_STATUSES",
    "ServeClient",
    "ServeClientError",
]
