"""The multi-request pattern-generation service front-end.

``PatternService`` turns the one-request-at-a-time ``ChatPattern`` facade
into a batched service: requests are handled concurrently on a worker pool,
each one running the ordinary agent pipeline (auto-format, plan, execute)
against a :class:`~repro.serve.batching.BatchedSamplingModel` client whose
sampling rides the shared :class:`~repro.serve.engine.ServeEngine` — the
layered execution engine providing admission control (``queue_limit``
backpressure, per-job deadlines), pluggable batching policies and a
multi-worker executor pool.  The fitted back-end comes from a
:class:`~repro.serve.registry.ModelRegistry`, so repeated services (or
repeated keys) skip retraining, and produced patterns are persisted through
the shared :class:`~repro.api.pipeline.PatternPipeline` primitives into an
indexed :class:`~repro.serve.store.LibraryStore`.

Several services may share one engine (pass ``engine=``): each routes its
own :class:`ModelKey` through it, so a single executor pool serves many
models/tenants, with the fair-share policy keeping any one of them from
starving the rest.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import faults
from repro.agent.backend import LLMBackend, SimulatedLLM
from repro.api.config import PipelineConfig
from repro.faults import FaultPlan
from repro.api.pipeline import PatternPipeline, PipelineResult
from repro.core.chatpattern import ChatPattern, ChatResult
from repro.diffusion.model import ConditionalDiffusionModel
from repro.drc.rules import DesignRules
from repro.legalize.legalizer import (
    collect_legalize_timing,
    reset_legalize_timing,
)
from repro.metrics.legality import LegalityResult, default_legalize_workers
from repro.obs.export import SnapshotWriter
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.serve.batching import BatchedSamplingModel
from repro.serve.engine import (
    AdaptivePolicy,
    EngineClient,
    QueueFullError,
    ServeEngine,
)
from repro.serve.jobs import (
    CODE_SHUTDOWN,
    PERSISTING,
    QUEUED,
    RUNNING,
    Job,
    JobTable,
    error_code_for,
)
from repro.serve.registry import ModelKey, ModelRegistry
from repro.serve.stats import LegalizeStageRecord, RequestStats, SchedulerStats
from repro.serve.store import LibraryStore

#: Parameters a ``kind="pipeline"`` request may carry.
_PIPELINE_PARAMS = frozenset({"count", "style", "size", "seed"})


@dataclass
class ServeRequest:
    """One generation request entering the service.

    ``source`` tags the request's sampling jobs for the engine's
    fair-share policy (e.g. ``"bulk"`` vs ``"interactive"``); ``deadline``
    bounds, in seconds, how long its jobs may sit queued before failing
    with a typed error (``None`` defers to the engine default).

    ``kind`` selects the execution path: ``"chat"`` (default) runs the
    full natural-language agent pipeline on ``text``; ``"pipeline"`` runs
    the typed stage chain (sample -> legalize -> score -> persist)
    directly with ``params`` (``count`` / ``style`` / ``size`` / ``seed``)
    — the path whose :class:`~repro.api.pipeline.PipelineResult.timings`
    mirror the job's per-stage progress one to one.

    ``client_job_id`` is an optional client-supplied idempotency key:
    resubmitting with the same key returns the *existing* job instead of
    running the work twice — the safe-retry contract the client SDK's
    backoff relies on.
    """

    text: str
    objective: str = "legality"
    request_id: int = 0
    source: str = "default"
    deadline: Optional[float] = None
    kind: str = "chat"
    params: Optional[Dict] = None
    client_job_id: Optional[str] = None


@dataclass
class ServeResponse:
    """One request's full outcome: agent result plus service metrics.

    A request that raised is fault-isolated: ``result`` is ``None``,
    ``error`` carries the message and ``error_code`` the stable
    machine-readable code (``queue_full`` | ``deadline_expired`` |
    ``cancelled`` | ``invalid_request`` | ``legalize_failed`` |
    ``shutdown`` | ``worker_crashed`` | ``internal``) wire protocols and
    clients key on —
    while every other request in the same ``serve`` call completes
    normally.  ``job_id`` names the lifecycle job that tracked this
    request (``None`` for pre-job code paths).
    """

    request: ServeRequest
    result: Optional[Union[ChatResult, PipelineResult]]
    stats: RequestStats
    error: Optional[str] = None
    error_code: Optional[str] = None
    job_id: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def produced(self) -> int:
        return self.result.produced if self.result is not None else 0

    @property
    def dropped(self) -> int:
        return self.result.dropped if self.result is not None else 0

    def summary(self) -> str:
        if self.result is None:
            return f"{self.stats.summary()}\nFAILED: {self.error}"
        return f"{self.stats.summary()}\n{self.result.summary()}"


@dataclass
class ServiceStats:
    """Service-level aggregate over one lifetime."""

    requests: int
    produced: int
    dropped: int
    scheduler: SchedulerStats
    registry: Dict = field(default_factory=dict)
    store: Optional[Dict] = None
    legalize_calls: int = 0
    legalize_seconds: float = 0.0
    legalize_stages: List[LegalizeStageRecord] = field(default_factory=list)
    engine: Optional[Dict] = None
    jobs: Optional[Dict] = None

    def as_dict(self) -> Dict:
        payload = {
            "requests": self.requests,
            "produced": self.produced,
            "dropped": self.dropped,
            "scheduler": self.scheduler.as_dict(),
            "registry": dict(self.registry),
            "legalize_calls": self.legalize_calls,
            "legalize_seconds": round(self.legalize_seconds, 4),
            "legalize_stages": [s.as_dict() for s in self.legalize_stages],
        }
        if self.store is not None:
            payload["store"] = self.store
        if self.engine is not None:
            payload["engine"] = dict(self.engine)
        if self.jobs is not None:
            payload["jobs"] = dict(self.jobs)
        return payload


class PatternService:
    """Batched, engine-backed, registry- and store-integrated service.

    Args:
        model: a pre-fitted back-end; bypasses the registry when given
            (benchmark/test convenience).
        model_key: recipe of the back-end to request from the registry
            (default :class:`ModelKey` defaults).
        registry: shared :class:`ModelRegistry`; a private one is created
            when omitted.
        store: optional :class:`LibraryStore`.  Every request's legal
            output is persisted into it (deduplicated), and the agent's
            ``Save_Library`` tool targets it.
        backend_factory: per-request LLM backend factory; each request gets
            its own instance so transcripts never interleave across threads.
        gather_window / max_batch: engine batching knobs (see
            :class:`ServeEngine`).
        max_workers: concurrent request executors (the agent-side pool;
            the sampling-side pool is ``engine_workers``).
        base_seed: per-request seeds derive from this, so a served workload
            is reproducible for a fixed batch composition.
        max_retries: per-pattern legalization recovery budget.
        config: the :class:`PipelineConfig` backing the per-request
            pipelines (sampling/legalization knobs); scheduler/worker
            arguments above still win, keeping the old constructor a thin
            facade.  Use :meth:`from_config` to derive everything from one
            config object.
        policy / executor / engine_workers / queue_limit / deadline:
            engine layers (batching policy, execution tier, executor pool
            size, admission bound, default job deadline); ``None`` defers
            to ``config.serve``.  ``executor="process"`` requires a
            registry with a disk tier (``config.model_cache``) so worker
            processes can load the fitted model by recipe hash.
        engine: a pre-built (possibly shared) :class:`ServeEngine`.  The
            service then only *binds* its model to it — ``stop`` leaves a
            shared engine running for its other tenants.
        metrics / tracer: explicit observability sinks.  When omitted and
            ``config.obs.enabled``, the service builds a *private*
            :class:`~repro.obs.metrics.MetricsRegistry` (with the
            configured latency buckets) and
            :class:`~repro.obs.trace.Tracer` and threads them through
            every component it constructs; disabled configs get the
            shared no-op instances.
    """

    def __init__(
        self,
        model: Optional[ConditionalDiffusionModel] = None,
        model_key: Optional[ModelKey] = None,
        registry: Optional[ModelRegistry] = None,
        store: Optional[LibraryStore] = None,
        backend_factory: Optional[Callable[[], LLMBackend]] = None,
        gather_window: float = 0.02,
        max_batch: int = 64,
        max_workers: int = 8,
        base_seed: int = 0,
        max_retries: int = 2,
        config: Optional[PipelineConfig] = None,
        policy: Optional[str] = None,
        executor: Optional[str] = None,
        engine_workers: Optional[int] = None,
        queue_limit: Optional[int] = None,
        deadline: Optional[float] = None,
        engine: Optional[ServeEngine] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.config = config or PipelineConfig()
        serve_cfg = self.config.serve
        obs_cfg = self.config.obs
        faults_cfg = getattr(self.config, "faults", None)
        # A private registry/tracer per service (unless injected): its
        # snapshots then describe exactly this service's traffic, and two
        # services in one process never mix series.
        if metrics is not None:
            self.metrics = metrics
        elif obs_cfg.enabled:
            self.metrics = MetricsRegistry(
                latency_buckets=obs_cfg.latency_buckets
            )
        else:
            self.metrics = NULL_METRICS
        if tracer is not None:
            self.tracer = tracer
        elif obs_cfg.enabled:
            self.tracer = Tracer(max_spans=obs_cfg.max_spans)
        else:
            self.tracer = NULL_TRACER
        self._m_requests = self.metrics.counter(
            "repro_requests_total",
            "Requests served, by outcome",
            labels=("status",),
        )
        self._m_request_latency = self.metrics.histogram(
            "repro_request_latency_seconds",
            "End-to-end request wall time",
        )
        self._m_job_states = self.metrics.counter(
            "repro_job_terminal_total",
            "Lifecycle jobs reaching a terminal state",
            labels=("state",),
        )
        self._m_jobs_active = self.metrics.gauge(
            "repro_jobs_active",
            "Lifecycle jobs admitted but not yet terminal",
        )
        # An enabled FaultConfig installs the process-wide plan here —
        # before any component below can hit a seam — so a configured
        # server boots faulty end to end (the chaos-smoke contract).
        # Disabled configs leave whatever plan is active (usually the
        # null plan) untouched.
        if faults_cfg is not None and faults_cfg.enabled:
            faults.install(FaultPlan.from_config(faults_cfg, metrics=self.metrics))
        self._snapshot_writer: Optional[SnapshotWriter] = None
        self._model = model
        self.model_key = model_key or ModelKey.from_config(self.config.train)
        self.registry = registry or ModelRegistry(
            save_dir=self.config.model_cache, metrics=self.metrics
        )
        if store is None and self.config.store.store_dir:
            store = LibraryStore(
                self.config.store.store_dir, metrics=self.metrics
            )
        self.store = store
        self._backend_factory = backend_factory or SimulatedLLM
        self._gather_window = gather_window
        self._max_batch = max_batch
        self.max_workers = int(max_workers)
        self.base_seed = int(base_seed)
        self.max_retries = int(max_retries)
        self.policy = policy if policy is not None else serve_cfg.policy
        self.executor = (
            executor if executor is not None else serve_cfg.executor
        )
        if (
            engine is None
            and self.executor == "process"
            and self.registry.save_dir is None
        ):
            raise ValueError(
                "executor='process' requires a disk model cache so worker "
                "processes can load fitted models by recipe hash; set "
                "model_cache (or pass a registry with save_dir)"
            )
        self.engine_workers = int(
            engine_workers
            if engine_workers is not None
            else serve_cfg.engine_workers
        )
        self.queue_limit = (
            queue_limit if queue_limit is not None else serve_cfg.queue_limit
        )
        self.deadline = deadline if deadline is not None else serve_cfg.deadline
        self._engine = engine
        self._owns_engine = engine is None
        self._client: Optional[EngineClient] = None
        #: lifecycle registry behind submit/cancel/status and the HTTP API
        #: (``serve.state_dir`` makes it journal + rehydrate across restarts)
        self.jobs = JobTable(
            ttl=serve_cfg.job_ttl,
            state_dir=serve_cfg.state_dir,
            metrics=self.metrics,
        )
        self._pool: Optional[ThreadPoolExecutor] = None
        self._responses: List[ServeResponse] = []
        self._legalize_stages: List[LegalizeStageRecord] = []
        # Aggregation must stay consistent while many request threads (and
        # overlapping serve() calls) finish concurrently.
        self._stats_lock = threading.Lock()
        # Overlapping serve() calls may both find the service cold; the
        # lock makes engine construction + model binding happen once.
        self._start_lock = threading.Lock()
        # Request ids must be unique across overlapping serve() calls: they
        # seed per-request RNG streams, so a collision would make two live
        # requests sample identically.
        self._id_lock = threading.Lock()
        self._last_request_id = 0

    @classmethod
    def from_config(
        cls,
        config: PipelineConfig,
        model: Optional[ConditionalDiffusionModel] = None,
        registry: Optional[ModelRegistry] = None,
        store: Optional[LibraryStore] = None,
        backend_factory: Optional[Callable[[], LLMBackend]] = None,
        engine: Optional[ServeEngine] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> "PatternService":
        """Build a service entirely from one :class:`PipelineConfig`.

        The model recipe comes from ``config.train`` (resolved through the
        registry, including the ``config.model_cache`` disk tier), every
        engine/scheduler/worker knob from ``config.serve``, the store
        from ``config.store.store_dir`` and the observability layer from
        ``config.obs`` (the store itself is opened by the constructor, so
        its counters land in the service's registry).
        """
        serve = config.serve
        return cls(
            model=model,
            registry=registry,
            store=store,
            backend_factory=backend_factory,
            gather_window=serve.gather_window,
            max_batch=serve.max_batch,
            max_workers=serve.max_workers,
            base_seed=serve.base_seed,
            max_retries=serve.max_retries,
            policy=serve.policy,
            executor=serve.executor,
            engine_workers=serve.engine_workers,
            queue_limit=serve.queue_limit,
            deadline=serve.deadline,
            engine=engine,
            config=config,
            metrics=metrics,
            tracer=tracer,
        )

    def _next_request_id(self) -> int:
        with self._id_lock:
            self._last_request_id += 1
            return self._last_request_id

    def _reserve_request_ids(self, ids: Sequence[int]) -> None:
        """Advance the counter past caller-supplied ids so autos can't collide."""
        with self._id_lock:
            self._last_request_id = max(self._last_request_id, *ids)

    # -- lifecycle -----------------------------------------------------

    @property
    def running(self) -> bool:
        return self._engine is not None and self._engine.running

    @property
    def accepting(self) -> bool:
        """Whether new submissions would be executed (False mid-drain)."""
        return self._pool is not None

    @property
    def model(self) -> Optional[ConditionalDiffusionModel]:
        return self._model

    @property
    def engine(self) -> Optional[ServeEngine]:
        return self._engine

    @property
    def scheduler(self) -> Optional[EngineClient]:
        """This service's model-bound submission handle on the engine."""
        return self._client

    def start(self) -> "PatternService":
        """Resolve the model (registry hit or fit), bind it to the engine
        and bring the executor pool up."""
        with self._start_lock:
            if self.running and self._client is not None:
                return self
            if self._engine is None:
                # The adaptive policy is configured, not just named: its
                # hysteresis controller reads ``config.tune`` (SLO, degrade
                # ladder, thresholds), which the bare registry name can't
                # carry.
                policy = (
                    AdaptivePolicy(config=self.config.tune)
                    if self.policy == "adaptive"
                    else self.policy
                )
                self._engine = ServeEngine(
                    registry=self.registry,
                    policy=policy,
                    executor=self.executor,
                    engine_workers=self.engine_workers,
                    queue_limit=self.queue_limit,
                    gather_window=self._gather_window,
                    max_batch=self._max_batch,
                    deadline=self.deadline,
                    metrics=self.metrics,
                )
            obs_cfg = self.config.obs
            if (
                obs_cfg.enabled
                and obs_cfg.snapshot_path
                and self._snapshot_writer is None
            ):
                self._snapshot_writer = SnapshotWriter(
                    self.metrics,
                    obs_cfg.snapshot_path,
                    interval=obs_cfg.snapshot_interval,
                ).start()
            if self._model is None:
                self._model = self.registry.get_or_fit(self.model_key)
            if self._client is None or self._client.model is not self._model:
                self._client = self._engine.bind(
                    self._model,
                    # The serving default rides the config's step schedule;
                    # per-job overrides still win inside the engine.
                    sampler_steps=self.config.sample.sampler_steps,
                    label=f"model-{self.model_key.recipe_hash()[:8]}",
                    # The recipe identity rides every job so process
                    # workers can resolve the same fitted model from the
                    # shared disk cache.
                    key=self.model_key,
                )
            if self._pool is None:
                # Persistent request pool: submitted jobs outlive any one
                # serve() call (the HTTP path submits and returns).
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-serve-request",
                )
            self._engine.start()
            return self

    def drain(self) -> None:
        """Graceful drain: finish every admitted job, stop the pool.

        Jobs already queued or running complete normally (honoring any
        cancel requests at their checkpoints); new submissions fail with
        the ``shutdown`` code.  :meth:`start` builds a fresh pool, so a
        drained service can serve again.
        """
        with self._start_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def stop(self) -> None:
        """Drain requests, then stop an owned engine.

        A *shared* engine (passed in via ``engine=``) keeps running — its
        other tenants still depend on it; only the owner stops it.  The
        service's own telemetry outputs always close: the snapshot writer
        performs a final dump and the configured ``trace_path`` receives
        the collected spans as JSON lines.
        """
        self.drain()
        if self._engine is not None and self._owns_engine:
            self._engine.stop()
        self.jobs.close()
        if self.store is not None:
            self.store.close()
        if self._snapshot_writer is not None:
            self._snapshot_writer.stop(write_final=True)
            self._snapshot_writer = None
        trace_path = self.config.obs.trace_path
        if trace_path and self.tracer.enabled:
            self.tracer.export_jsonl(trace_path)

    def __enter__(self) -> "PatternService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- serving -------------------------------------------------------

    def serve(
        self, requests: Sequence[Union[str, ServeRequest]]
    ) -> List[ServeResponse]:
        """Handle many requests concurrently; returns responses in order.

        This is the batched counterpart of calling
        ``ChatPattern.handle_request`` in a loop: all requests run at once
        (up to ``max_workers``) and their sampling work coalesces in the
        engine.
        """
        if not requests:
            return []
        resolved = [
            request
            if isinstance(request, ServeRequest)
            else ServeRequest(text=request)
            for request in requests
        ]
        explicit_ids = [r.request_id for r in resolved if r.request_id != 0]
        if explicit_ids:
            self._reserve_request_ids(explicit_ids)
        jobs = [self.submit_job(request) for request in resolved]
        responses = []
        for job in jobs:
            job.wait()
            responses.append(job.response)
        return responses

    def handle(
        self, text: str, objective: str = "legality"
    ) -> ServeResponse:
        """Serve a single request (still through the engine)."""
        return self.serve([ServeRequest(text=text, objective=objective)])[0]

    # -- job lifecycle --------------------------------------------------

    def submit_job(
        self,
        request: Union[str, ServeRequest],
        enforce_queue_limit: bool = False,
    ) -> Job:
        """Admit a request as a lifecycle job; returns immediately.

        The job lands QUEUED on the persistent request pool; poll it with
        :meth:`job_status`, block with ``job.wait()``, stop it with
        :meth:`cancel_job`.  With ``enforce_queue_limit`` (the HTTP
        path), admission fails with the engine's typed
        :class:`~repro.serve.engine.QueueFullError` once ``queue_limit``
        jobs are already waiting — the blocking :meth:`serve` path keeps
        its engine-level-only backpressure, unchanged.
        """
        self.start()
        if not isinstance(request, ServeRequest):
            request = ServeRequest(text=request)
        if request.client_job_id:
            # Idempotent resubmission: the same client key returns the
            # job already created for it (whatever state it is in) —
            # a retried POST after a lost response runs the work once.
            existing = self.jobs.find_client(request.client_job_id)
            if existing is not None:
                return existing
        if request.request_id == 0:
            request.request_id = self._next_request_id()
        else:
            self._reserve_request_ids([request.request_id])
        if (
            enforce_queue_limit
            and self.queue_limit is not None
            and self.jobs.queued_count() >= self.queue_limit
        ):
            raise QueueFullError(
                f"admission queue is full ({self.jobs.queued_count()} "
                f"jobs waiting, queue_limit={self.queue_limit}); retry later"
            )
        deadline = (
            request.deadline if request.deadline is not None else self.deadline
        )
        job = self.jobs.create(
            request=request,
            deadline=deadline,
            client_id=request.client_job_id,
        )
        job.transition(QUEUED)
        self._m_jobs_active.inc()
        pool = self._pool
        try:
            if pool is None:
                raise RuntimeError("service request pool is not running")
            pool.submit(self._run_job, job)
        except RuntimeError:
            # The pool shut down between start() and here (service is
            # draining): fail the job instead of hanging its waiters.
            self._finish_job(
                job,
                ServeResponse(
                    request=request,
                    result=None,
                    stats=RequestStats(request_id=request.request_id),
                    error="service is draining; job was not executed",
                    error_code=CODE_SHUTDOWN,
                    job_id=job.job_id,
                ),
            )
        return job

    def cancel_job(self, job_id: str) -> Tuple[Optional[Job], bool]:
        """Request cancellation of a job by id.

        Returns ``(job, effective)``: ``job`` is ``None`` for unknown ids;
        ``effective`` is ``True`` when the cancel took (queued jobs are
        cancelled outright and never execute; running jobs stop at their
        next checkpoint; an already-CANCELLED job reports ``True``
        idempotently) and ``False`` when the job already finished in
        another terminal state.
        """
        job = self.jobs.get(job_id)
        if job is None:
            return None, False
        was_terminal = job.is_terminal
        effective = job.request_cancel()
        if effective and not was_terminal and job.is_terminal:
            # Cancelled straight out of the queue: no worker will ever
            # touch it, so account for the terminal state here.
            self._account_terminal(job)
        return job, effective

    def job_status(self, job_id: str) -> Optional[Dict]:
        """The full progress view of a job (``None`` for unknown ids)."""
        job = self.jobs.get(job_id)
        if job is None:
            return None
        job.maybe_expire()
        return job.as_dict()

    def _account_terminal(self, job: Job) -> None:
        self._m_job_states.inc(state=job.state)
        self._m_jobs_active.dec()

    def _finish_job(self, job: Job, response: ServeResponse) -> None:
        """Stamp the terminal state + response onto a job, record stats."""
        job.response = response
        if job.is_terminal:
            # Cancelled-while-queued or expired: the terminal state (and
            # its accounting) is already on the job.
            pass
        elif response.error is None:
            job.succeed(produced=response.produced)
            self._account_terminal(job)
        else:
            job.fail(response.error, code=response.error_code or "internal")
            self._account_terminal(job)
        # Re-journal with the response attached so a restored record
        # carries the produced count (the transition hook ran earlier,
        # before the response existed; last record wins at replay).
        self.jobs.persist(job)
        with self._stats_lock:
            self._responses.append(response)

    def _run_job(self, job: Job) -> None:
        """Request-pool entry: execute one admitted job to a terminal state.

        Never raises — a failure here would vanish into the pool.
        """
        request: ServeRequest = job.request
        try:
            if job.is_terminal:
                # Cancelled while queued: DELETE prevented its execution.
                if job.response is None:
                    job.response = ServeResponse(
                        request=request,
                        result=None,
                        stats=RequestStats(request_id=request.request_id),
                        error=job.error,
                        error_code=job.error_code,
                        job_id=job.job_id,
                    )
                    with self._stats_lock:
                        self._responses.append(job.response)
                return
            if job.maybe_expire():
                self._account_terminal(job)
                job.response = ServeResponse(
                    request=request,
                    result=None,
                    stats=RequestStats(request_id=request.request_id),
                    error=job.error,
                    error_code=job.error_code,
                    job_id=job.job_id,
                )
                with self._stats_lock:
                    self._responses.append(job.response)
                return
            response = self._handle_one(request, job=job)
            self._finish_job(job, response)
        except Exception as exc:  # pragma: no cover - defensive
            self._finish_job(
                job,
                ServeResponse(
                    request=request,
                    result=None,
                    stats=RequestStats(request_id=request.request_id),
                    error=f"{type(exc).__name__}: {exc}",
                    error_code=error_code_for(exc, state=job.state),
                    job_id=job.job_id,
                ),
            )

    def _run_pipeline_request(
        self, pipeline: PatternPipeline, request: ServeRequest
    ) -> PipelineResult:
        """Execute a ``kind="pipeline"`` request: the typed stage chain."""
        params = dict(request.params or {})
        unknown = set(params) - _PIPELINE_PARAMS
        if unknown:
            raise ValueError(
                f"unknown pipeline params {sorted(unknown)}; "
                f"allowed: {sorted(_PIPELINE_PARAMS)}"
            )
        result = pipeline.sample(
            count=params.get("count"),
            style=params.get("style"),
            size=params.get("size"),
            seed=params.get("seed"),
        )
        return pipeline.persist(pipeline.score(pipeline.legalize(result)))

    def _handle_one(
        self, request: ServeRequest, job: Optional[Job] = None
    ) -> ServeResponse:
        started = time.perf_counter()
        if job is not None:
            job.transition(RUNNING, stage=request.kind)
        client = BatchedSamplingModel(
            self._client,
            source=request.source,
            deadline=request.deadline,
            tracer=self.tracer,
            job=job,
        )
        result: Optional[Union[ChatResult, PipelineResult]] = None
        error: Optional[str] = None
        error_code: Optional[str] = None
        # One pipeline per request, bound to the batched client: the agent
        # tools, the persistence below and the CLI all share these stage
        # primitives.  The job rides the pipeline, so each stage entry is
        # a cancel checkpoint + state transition and each StageTiming is
        # mirrored into the job's stage_events.
        pipeline = PatternPipeline(
            self.config,
            model=client,
            store=self.store,
            metrics=self.metrics,
            tracer=self.tracer,
            job=job,
        )
        # The whole agent pipeline for this request runs on this thread, so
        # the thread-local legalization counters isolate its legalize cost
        # — and the root span opened here parents every stage span and
        # every engine-side hop the batched client records.
        reset_legalize_timing()
        with self.tracer.trace(
            "request",
            request_id=request.request_id,
            source=request.source,
            objective=request.objective,
        ):
            try:  # fault isolation: one bad request must not sink the
                # batch, and that covers per-request setup too
                if request.kind == "pipeline":
                    result = self._run_pipeline_request(pipeline, request)
                elif request.kind == "chat":
                    chat = ChatPattern(
                        model=client,
                        backend=self._backend_factory(),
                        max_retries=self.max_retries,
                        base_seed=self.base_seed + 7919 * request.request_id,
                        store=self.store,
                        pipeline=pipeline,
                    )
                    result = chat.handle_request(
                        request.text, objective=request.objective
                    )
                else:
                    raise ValueError(
                        f"unknown request kind {request.kind!r}; "
                        "known: chat, pipeline"
                    )
            except Exception as exc:
                error = f"{type(exc).__name__}: {exc}"
                # Classify while the job still shows the failing stage
                # (LEGALIZING at this point means legalization raised).
                error_code = error_code_for(
                    exc, state=job.state if job is not None else None
                )
            legalize_calls, legalize_seconds = collect_legalize_timing()
            stats = RequestStats(
                request_id=request.request_id,
                wall_seconds=time.perf_counter() - started,
                queue_wait_seconds=client.queue_wait_seconds,
                sample_jobs=client.sample_jobs,
                samples=client.samples,
                degraded_jobs=client.degraded_jobs,
                batch_sizes=list(client.batch_sizes),
                produced=result.produced if result is not None else 0,
                dropped=result.dropped if result is not None else 0,
                legalize_calls=legalize_calls,
                legalize_seconds=legalize_seconds,
            )
            if isinstance(result, PipelineResult):
                # The pipeline chain already ran its persist stage; just
                # surface its store accounting.
                stats.store_added = result.store_added
                stats.store_deduplicated = result.store_deduplicated
            elif result is not None and len(result.library):
                # Unconditional persistence through the pipeline primitive:
                # the add is idempotent (content-hash dedup), so patterns
                # the agent already saved via Save_Library simply show up
                # in `store_deduplicated` here.  No-op without a store.
                if job is not None:
                    # Direct transition (no cancel checkpoint): the result
                    # already exists, cancelling now would only lose it.
                    job.transition(PERSISTING, stage="persist")
                with self.tracer.span(
                    "store_persist", patterns=len(result.library)
                ):
                    report = pipeline.persist_library(result.library)
                if report is not None:
                    stats.store_added = report.added
                    stats.store_deduplicated = report.deduplicated
        self._m_requests.inc(status="error" if error else "ok")
        self._m_request_latency.observe(time.perf_counter() - started)
        return ServeResponse(
            request=request,
            result=result,
            stats=stats,
            error=error,
            error_code=error_code,
            job_id=job.job_id if job is not None else None,
        )

    # -- batch legalization stage --------------------------------------

    def legalize_and_store(
        self,
        topologies: Sequence[np.ndarray],
        style: str,
        rules: Optional[DesignRules] = None,
        physical_size: Optional[Tuple[int, int]] = None,
        max_workers: Optional[int] = None,
    ) -> LegalityResult:
        """Post-sampling pipeline stage: batch-legalize, persist the legal.

        Raw topologies (e.g. a batched sampling trajectory the caller pulled
        straight off the engine) run through the shared
        :class:`PatternPipeline` legalize/persist primitives: they fan out
        over :func:`legalize_many`'s worker pool and DRC-clean results are
        persisted into the attached store (content-hash deduplicated).  Each
        invocation is recorded as a :class:`LegalizeStageRecord` in
        :meth:`stats`.
        """
        items = list(topologies)
        if max_workers is None:
            max_workers = self.config.legalize.max_workers
        workers = (
            max_workers if max_workers is not None else default_legalize_workers()
        )
        # Mirror legalize_many's clamp so the record shows the pool actually
        # used, not the requested ceiling.
        workers = max(1, min(int(workers), len(items) or 1))
        pipeline = PatternPipeline(
            self.config,
            model=self._model,
            store=self.store,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        result = pipeline.legalize_topologies(
            items,
            style,
            rules=rules,
            physical_size=physical_size,
            max_workers=workers,
        )
        record = LegalizeStageRecord(
            topologies=result.total,
            legal=len(result.legal),
            wall_seconds=result.wall_seconds,
            workers=workers,
        )
        report = pipeline.persist_library(result.legal)
        if report is not None:
            record.store_added = report.added
            record.store_deduplicated = report.deduplicated
        with self._stats_lock:
            self._legalize_stages.append(record)
        return result

    # -- observability -------------------------------------------------

    def retry_after_hint(self) -> int:
        """Seconds a backpressured (429) client should wait before retrying.

        Derived from live service latency — the gather window plus the
        mean wall time of the most recent batches — so the hint tracks how
        fast the engine is actually draining the queue rather than being a
        fixed constant.  Clamped to [1, 60] whole seconds (the HTTP
        ``Retry-After`` grammar wants a non-negative integer).
        """
        estimate = self._gather_window
        engine = self._engine
        if engine is not None:
            recent = engine.batch_records[-8:]
            if recent:
                estimate += sum(r.wall_seconds for r in recent) / len(recent)
        return max(1, min(60, int(estimate + 0.999)))

    @property
    def responses(self) -> List[ServeResponse]:
        with self._stats_lock:
            return list(self._responses)

    def stats(self) -> ServiceStats:
        scheduler_stats = (
            self._client.stats()
            if self._client is not None
            else SchedulerStats.from_records([])
        )
        with self._stats_lock:
            responses = list(self._responses)
            legalize_stages = list(self._legalize_stages)
        return ServiceStats(
            requests=len(responses),
            produced=sum(r.produced for r in responses),
            dropped=sum(r.dropped for r in responses),
            scheduler=scheduler_stats,
            registry=self.registry.stats(),
            store=self.store.stats() if self.store is not None else None,
            legalize_calls=sum(r.stats.legalize_calls for r in responses),
            legalize_seconds=sum(
                r.stats.legalize_seconds for r in responses
            ),
            legalize_stages=legalize_stages,
            engine=(
                self._engine.stats().as_dict()
                if self._engine is not None
                else None
            ),
            jobs=self.jobs.counts(),
        )
