"""Job lifecycle state machine: one observable record per served request.

Every request entering the serving stack is tracked as a :class:`Job` — an
explicit state machine

    PENDING -> QUEUED -> RUNNING(stage) -> LEGALIZING -> PERSISTING
            -> {SUCCEEDED, FAILED, CANCELLED, EXPIRED}

with a monotonic transition log, per-stage progress events and engine-side
hop records (admission, queue wait, batch gather, execute).  The three
layers write into it rather than keeping parallel books:

- :class:`~repro.api.pipeline.PatternPipeline` stage execution enters a
  stage (a cancel checkpoint + state transition) and then reports the
  executed stage through the same ``PipelineResult._record`` call that
  produces :class:`~repro.api.pipeline.StageTiming` — so a job's
  ``stage_events`` and ``PipelineResult.timings`` are two views of one
  record, equal field for field.
- :class:`~repro.serve.batching.BatchedSamplingModel` converts the
  timestamps the :class:`~repro.serve.engine.ServeEngine` workers stamp on
  each sampling job into ``engine_events`` on the lifecycle job.
- :class:`~repro.serve.service.PatternService` owns the QUEUED/RUNNING
  edges and the terminal transition, mapping the engine's typed errors
  (:class:`~repro.serve.engine.QueueFullError`,
  :class:`~repro.serve.engine.DeadlineExpiredError`) to terminal states
  with stable machine-readable codes.

Cancellation is cooperative: :meth:`Job.request_cancel` on a queued job
cancels it outright (it never executes); on a running job it raises
:class:`JobCancelled` at the next checkpoint — every pipeline stage entry
and every engine sampling submission checks.  Terminal states are
absorbing: double-cancel and cancel-after-success are idempotent no-ops.

:class:`JobTable` is the thread-safe registry behind the HTTP API:
ids -> jobs, with TTL-bounded retention of terminal jobs so a long-lived
server does not accumulate every job it ever ran.
"""

from __future__ import annotations

import itertools
import json
import logging
import os
import re
import secrets
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

_log = logging.getLogger("repro.serve.jobs")

# -- states -----------------------------------------------------------------

PENDING = "PENDING"  # created, not yet admitted to the worker pool
QUEUED = "QUEUED"  # admitted, waiting for a request worker
RUNNING = "RUNNING"  # executing (``stage`` names the active stage)
LEGALIZING = "LEGALIZING"  # the legalize stage (DRC + constraint solve)
PERSISTING = "PERSISTING"  # writing the produced library to the store
SUCCEEDED = "SUCCEEDED"
FAILED = "FAILED"
CANCELLED = "CANCELLED"
EXPIRED = "EXPIRED"  # deadline passed (queued too long, or mid-flight)

TERMINAL_STATES = frozenset({SUCCEEDED, FAILED, CANCELLED, EXPIRED})
ACTIVE_STATES = frozenset({RUNNING, LEGALIZING, PERSISTING})
JOB_STATES = (
    PENDING,
    QUEUED,
    RUNNING,
    LEGALIZING,
    PERSISTING,
    SUCCEEDED,
    FAILED,
    CANCELLED,
    EXPIRED,
)

#: Legal forward edges of the state machine.  Active states may move
#: freely among themselves (sample -> legalize -> score -> persist revisits
#: RUNNING after LEGALIZING); terminal states have no outgoing edges.
_ALLOWED: Dict[str, frozenset] = {
    PENDING: frozenset({QUEUED}) | ACTIVE_STATES | TERMINAL_STATES,
    QUEUED: ACTIVE_STATES | TERMINAL_STATES,
    RUNNING: ACTIVE_STATES | TERMINAL_STATES,
    LEGALIZING: ACTIVE_STATES | TERMINAL_STATES,
    PERSISTING: ACTIVE_STATES | TERMINAL_STATES,
    SUCCEEDED: frozenset(),
    FAILED: frozenset(),
    CANCELLED: frozenset(),
    EXPIRED: frozenset(),
}

#: Pipeline stages that are first-class states; everything else is RUNNING.
_STAGE_STATES = {"legalize": LEGALIZING, "persist": PERSISTING}

# -- error codes ------------------------------------------------------------

CODE_QUEUE_FULL = "queue_full"
CODE_DEADLINE_EXPIRED = "deadline_expired"
CODE_CANCELLED = "cancelled"
CODE_INVALID_REQUEST = "invalid_request"
CODE_LEGALIZE_FAILED = "legalize_failed"
CODE_SHUTDOWN = "shutdown"
CODE_WORKER_CRASHED = "worker_crashed"
CODE_SERVER_RESTART = "server_restart"
CODE_INTERNAL = "internal"

ERROR_CODES = (
    CODE_QUEUE_FULL,
    CODE_DEADLINE_EXPIRED,
    CODE_CANCELLED,
    CODE_INVALID_REQUEST,
    CODE_LEGALIZE_FAILED,
    CODE_SHUTDOWN,
    CODE_WORKER_CRASHED,
    CODE_SERVER_RESTART,
    CODE_INTERNAL,
)


class JobError(RuntimeError):
    """Base class of job lifecycle errors."""


class JobStateError(JobError):
    """An illegal state-machine edge was requested (a programming error,
    never a data-dependent condition)."""


class JobCancelled(JobError):
    """Raised at a cancel checkpoint after :meth:`Job.request_cancel`.

    Control flow, not a fault: the service maps it to the CANCELLED
    terminal state, and the agent's tool dispatcher re-raises it instead
    of converting it to a tool failure.
    """

    code = CODE_CANCELLED


def error_code_for(exc: BaseException, state: Optional[str] = None) -> str:
    """Stable machine-readable code for a request failure.

    Typed exceptions carry their own ``code`` attribute (the engine's
    :class:`QueueFullError`/:class:`DeadlineExpiredError` and
    :class:`JobCancelled`); bad-input errors map to ``invalid_request``;
    anything else raised while the job was in the LEGALIZING state is a
    ``legalize_failed``; the rest is ``internal``.
    """
    code = getattr(exc, "code", None)
    if isinstance(code, str) and code:
        return code
    if isinstance(exc, (ValueError, KeyError, TypeError)):
        return CODE_INVALID_REQUEST
    if state == LEGALIZING:
        return CODE_LEGALIZE_FAILED
    return CODE_INTERNAL


def terminal_state_for(code: str) -> str:
    """The terminal state a failure code lands in."""
    if code == CODE_CANCELLED or code == CODE_SHUTDOWN:
        return CANCELLED
    if code == CODE_DEADLINE_EXPIRED:
        return EXPIRED
    return FAILED


# -- records ----------------------------------------------------------------


@dataclass
class JobTransition:
    """One edge of a job's state machine (``t`` is seconds since creation)."""

    state: str
    t: float
    stage: Optional[str] = None
    detail: Dict = field(default_factory=dict)

    def as_dict(self) -> Dict:
        out: Dict = {"state": self.state, "t": round(self.t, 6)}
        if self.stage is not None:
            out["stage"] = self.stage
        if self.detail:
            out["detail"] = dict(self.detail)
        return out


@dataclass
class StageEvent:
    """One executed pipeline stage — the job-side view of
    :class:`~repro.api.pipeline.StageTiming`, serialized identically."""

    stage: str
    seconds: float
    detail: Dict = field(default_factory=dict)

    def as_dict(self) -> Dict:
        return {
            "stage": self.stage,
            "seconds": round(self.seconds, 4),
            **({"detail": dict(self.detail)} if self.detail else {}),
        }


@dataclass
class EngineEvent:
    """One engine-side hop of the job's sampling work, built from the
    timestamps the executor workers stamped on the engine job."""

    kind: str  # admission | queue_wait | batch_gather | execute
    t: float  # offset from job creation, seconds
    seconds: float
    detail: Dict = field(default_factory=dict)

    def as_dict(self) -> Dict:
        out: Dict = {
            "kind": self.kind,
            "t": round(self.t, 6),
            "seconds": round(self.seconds, 6),
        }
        if self.detail:
            out["detail"] = dict(self.detail)
        return out


# -- the job ----------------------------------------------------------------


class Job:
    """One tracked request: state machine + transition log + progress.

    Thread-safe: the request worker, the engine-event writer and any
    number of status/cancel callers may touch it concurrently.  The
    transition log is monotonic by construction (timestamps are clamped to
    never run backwards, appends happen under the lock).
    """

    def __init__(
        self,
        job_id: str,
        request=None,
        deadline: Optional[float] = None,
    ):
        self.job_id = job_id
        self.request = request
        self.created_at = time.perf_counter()
        self.created_unix = time.time()
        #: absolute ``perf_counter`` instant after which a still-queued job
        #: expires (``None`` = no deadline)
        self.deadline_at = (
            self.created_at + deadline if deadline is not None else None
        )
        self._lock = threading.RLock()
        self.state = PENDING
        self.stage: Optional[str] = None
        self.transitions: List[JobTransition] = [JobTransition(PENDING, 0.0)]
        self.stage_events: List[StageEvent] = []
        self.engine_events: List[EngineEvent] = []
        self.error: Optional[str] = None
        self.error_code: Optional[str] = None
        self.cancel_requested = False
        self.finished_at: Optional[float] = None
        #: the service attaches the full :class:`ServeResponse` here when
        #: the job reaches a terminal state
        self.response = None
        #: client-supplied idempotency key (see :meth:`JobTable.create`)
        self.client_id: Optional[str] = None
        #: called with the job right after a terminal transition (the
        #: :class:`JobTable` journal hook; errors are logged, not raised)
        self.on_terminal = None
        #: for jobs rehydrated from a state journal: the frozen dict view
        self._restored_view: Optional[Dict] = None
        self.restored = False
        self._done = threading.Event()

    # -- state machine -------------------------------------------------

    def _now(self) -> float:
        # Clamped so the log can never run backwards even if the clock
        # resolution makes two transitions land on the same tick.
        t = time.perf_counter() - self.created_at
        last = self.transitions[-1].t if self.transitions else 0.0
        return max(t, last)

    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def transition(
        self, state: str, stage: Optional[str] = None, **detail
    ) -> bool:
        """Move to ``state``; returns False (a no-op) once terminal.

        Illegal *forward* edges raise :class:`JobStateError` — they are
        programming errors.  Transitions requested after a terminal state
        merely return ``False``: terminal states are absorbing, which is
        what makes double-cancel and cancel-after-success idempotent.
        """
        if state not in _ALLOWED:
            raise JobStateError(f"unknown job state {state!r}")
        notify = None
        with self._lock:
            if self.is_terminal:
                return False
            if state not in _ALLOWED[self.state]:
                raise JobStateError(
                    f"illegal transition {self.state} -> {state} "
                    f"(job {self.job_id})"
                )
            self.state = state
            self.stage = stage if state in ACTIVE_STATES else None
            self.transitions.append(
                JobTransition(state, self._now(), stage=stage, detail=detail)
            )
            if state in TERMINAL_STATES:
                self.finished_at = time.perf_counter()
                self._done.set()
                notify = self.on_terminal
        if notify is not None:
            try:
                notify(self)
            except Exception:
                _log.exception(
                    "terminal hook failed for job %s", self.job_id
                )
        return True

    # -- cancellation --------------------------------------------------

    def request_cancel(self) -> bool:
        """Ask the job to stop; returns whether the cancel is effective.

        Still PENDING/QUEUED: cancelled outright (it will never execute).
        Active: the flag is set and honored at the next checkpoint.
        Already CANCELLED: True (idempotent).  Any other terminal state:
        False — the job already finished, there is nothing to cancel.
        """
        with self._lock:
            if self.state == CANCELLED:
                return True
            if self.is_terminal:
                return False
            self.cancel_requested = True
            if self.state in (PENDING, QUEUED):
                self.error_code = CODE_CANCELLED
                self.error = "cancelled before execution"
                self.transition(CANCELLED, reason="cancelled_while_queued")
            return True

    def check_cancelled(self) -> None:
        """Cancel checkpoint: raise :class:`JobCancelled` if requested."""
        if self.cancel_requested:
            raise JobCancelled(f"job {self.job_id} cancelled")

    # -- stage + engine hooks ------------------------------------------

    def enter_stage(self, stage: str, **detail) -> None:
        """Pipeline hook: cancel checkpoint + transition into a stage.

        ``legalize`` and ``persist`` are first-class states; every other
        stage is RUNNING with the stage name attached.
        """
        self.check_cancelled()
        self.transition(_STAGE_STATES.get(stage, RUNNING), stage=stage, **detail)

    def record_stage(
        self, stage: str, seconds: float, detail: Optional[Dict] = None
    ) -> None:
        """Record one executed stage (the ``StageTiming`` mirror)."""
        with self._lock:
            self.stage_events.append(
                StageEvent(stage, seconds, dict(detail or {}))
            )

    def record_engine(
        self, kind: str, start: float, end: float, **detail
    ) -> None:
        """Record one engine-side hop from engine-stamped timestamps."""
        with self._lock:
            self.engine_events.append(
                EngineEvent(
                    kind,
                    t=max(start - self.created_at, 0.0),
                    seconds=max(end - start, 0.0),
                    detail=detail,
                )
            )

    # -- terminal helpers ----------------------------------------------

    def succeed(self, **detail) -> bool:
        return self.transition(SUCCEEDED, **detail)

    def fail(self, error: str, code: str = CODE_INTERNAL, **detail) -> bool:
        with self._lock:
            if self.is_terminal:
                return False
            # Error fields are set before the transition so the terminal
            # hook (state journaling) snapshots a complete record.
            self.error = error
            self.error_code = code
            return self.transition(terminal_state_for(code), code=code, **detail)

    def expire(self, reason: str = "deadline expired") -> bool:
        return self.fail(reason, code=CODE_DEADLINE_EXPIRED)

    def maybe_expire(self) -> bool:
        """Lazily expire a still-waiting job whose deadline has passed."""
        with self._lock:
            if (
                self.deadline_at is not None
                and not self.is_terminal
                and self.state in (PENDING, QUEUED)
                and time.perf_counter() > self.deadline_at
            ):
                waited = time.perf_counter() - self.created_at
                return self.expire(
                    f"job deadline expired after {waited:.3f}s in queue"
                )
            return False

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self._done.wait(timeout=timeout)

    # -- views ---------------------------------------------------------

    @property
    def elapsed_seconds(self) -> float:
        end = (
            self.finished_at
            if self.finished_at is not None
            else time.perf_counter()
        )
        return end - self.created_at

    @property
    def produced(self) -> int:
        response = self.response
        if response is None or response.result is None:
            if self._restored_view is not None:
                return int(self._restored_view.get("produced", 0))
            return 0
        return response.result.produced

    def as_dict(self) -> Dict:
        """The full JSON-safe progress view (the HTTP status payload)."""
        with self._lock:
            if self._restored_view is not None:
                return dict(self._restored_view)
            out: Dict = {
                "job_id": self.job_id,
                "state": self.state,
                "stage": self.stage,
                "created_unix": round(self.created_unix, 3),
                "elapsed_seconds": round(self.elapsed_seconds, 4),
                "cancel_requested": self.cancel_requested,
                "transitions": [t.as_dict() for t in self.transitions],
                "stage_events": [e.as_dict() for e in self.stage_events],
                "engine_events": [e.as_dict() for e in self.engine_events],
            }
            if self.error is not None:
                out["error"] = self.error
            if self.error_code is not None:
                out["error_code"] = self.error_code
            if self.client_id is not None:
                out["client_id"] = self.client_id
            if self.is_terminal:
                out["produced"] = self.produced
            request = self.request
            if request is not None:
                out["request"] = {
                    "text": getattr(request, "text", None),
                    "kind": getattr(request, "kind", "chat"),
                    "objective": getattr(request, "objective", None),
                    "source": getattr(request, "source", None),
                    "request_id": getattr(request, "request_id", None),
                }
            return out

    @classmethod
    def restore(cls, payload: Dict) -> "Job":
        """Rehydrate a terminal job from its journaled ``as_dict`` view.

        The restored job is read-only in practice: terminal states are
        absorbing, so status/result/cancel calls behave exactly as they
        would against the original object — except the TTL window
        restarts at boot (``finished_at`` is *now*), giving pollers a
        full retention period after a restart.
        """
        if payload.get("state") not in TERMINAL_STATES:
            raise JobStateError(
                f"can only restore terminal jobs, got state "
                f"{payload.get('state')!r}"
            )
        job = cls(payload["job_id"])
        with job._lock:
            job.state = payload["state"]
            job.created_unix = float(payload.get("created_unix", job.created_unix))
            job.error = payload.get("error")
            job.error_code = payload.get("error_code")
            job.client_id = payload.get("client_id")
            job.cancel_requested = bool(payload.get("cancel_requested", False))
            job.stage_events = [
                StageEvent(
                    e["stage"], e["seconds"], dict(e.get("detail", {}))
                )
                for e in payload.get("stage_events", [])
            ]
            view = dict(payload)
            view["restored"] = True
            job._restored_view = view
            job.restored = True
            job.finished_at = time.perf_counter()
            job._done.set()
        return job


# -- the table --------------------------------------------------------------


class JobStateStore:
    """Append-only fsynced journal of job records under a state directory.

    One JSON line per event: ``create`` when a job is admitted to the
    table, ``terminal`` (the full ``Job.as_dict`` snapshot) when it
    finishes — appended again by :meth:`JobTable.persist` once the
    service attaches the response, so the last record wins at replay.
    Boot compacts the journal down to one terminal record per surviving
    job.  A torn trailing line (crash mid-append) is dropped at replay,
    never propagated.
    """

    _JOURNAL_NAME = "jobs.jsonl"

    def __init__(self, state_dir: Union[str, Path]):
        self.dir = Path(state_dir)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.path = self.dir / self._JOURNAL_NAME
        self._lock = threading.Lock()
        self._handle = None

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def _append(self, entry: Dict) -> None:
        with self._lock:
            if self._handle is None:
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def record_create(self, job: Job) -> None:
        self._append(
            {
                "op": "create",
                "job_id": job.job_id,
                "client_id": job.client_id,
                "created_unix": round(job.created_unix, 3),
                "request": (
                    {
                        "text": getattr(job.request, "text", None),
                        "kind": getattr(job.request, "kind", "chat"),
                        "objective": getattr(job.request, "objective", None),
                        "source": getattr(job.request, "source", None),
                        "request_id": getattr(job.request, "request_id", None),
                    }
                    if job.request is not None
                    else None
                ),
            }
        )

    def record_terminal(self, job: Job) -> None:
        self._append({"op": "terminal", "record": job.as_dict()})

    def replay(self) -> Tuple[Dict[str, Dict], Dict[str, Dict]]:
        """Read the journal back: ``(terminal_records, orphan_creates)``.

        ``terminal_records`` maps job id -> last terminal snapshot;
        ``orphan_creates`` maps job id -> create payload for jobs that
        never reached a journaled terminal state (in flight at crash).
        """
        terminals: Dict[str, Dict] = {}
        creates: Dict[str, Dict] = {}
        if not self.path.exists():
            return terminals, creates
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                if not line.strip():
                    continue
                try:
                    entry = json.loads(line)
                    op = entry["op"]
                except (ValueError, KeyError, TypeError):
                    break  # torn trailing write from a crash
                if op == "create":
                    creates[entry["job_id"]] = entry
                elif op == "terminal":
                    record = entry.get("record") or {}
                    job_id = record.get("job_id")
                    if job_id:
                        terminals[job_id] = record
        for job_id in terminals:
            creates.pop(job_id, None)
        return terminals, creates

    def compact(self, records: List[Dict]) -> None:
        """Atomically rewrite the journal as one terminal line per job."""
        tmp = self.path.with_name(self._JOURNAL_NAME + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(
                    json.dumps({"op": "terminal", "record": record},
                               sort_keys=True)
                    + "\n"
                )
            handle.flush()
            os.fsync(handle.fileno())
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            os.replace(tmp, self.path)


_JOB_ID_RE = re.compile(r"^job-(\d+)-[0-9a-f]+$")


class JobTable:
    """Thread-safe id -> :class:`Job` registry with TTL-bounded retention.

    Terminal jobs are kept ``ttl`` seconds past their finish so pollers
    can still read the outcome, then purged lazily on the next table
    access — no background reaper thread.  Live jobs are never purged.

    With ``state_dir`` set, the table journals every job through a
    :class:`JobStateStore` and rehydrates on construction: terminal jobs
    come back pollable (instead of 404) and jobs that were in flight at
    the crash are resurrected as FAILED with the stable
    ``server_restart`` code — a client polling a pre-restart id gets a
    truthful answer, never silence.
    """

    def __init__(
        self,
        ttl: float = 600.0,
        state_dir: Optional[Union[str, Path]] = None,
        metrics=None,
    ):
        if ttl <= 0:
            raise ValueError("job ttl must be > 0 seconds")
        self.ttl = float(ttl)
        self._jobs: "Dict[str, Job]" = {}
        self._by_client: Dict[str, str] = {}
        self._lock = threading.Lock()
        self._counter = itertools.count(1)
        self.state_store: Optional[JobStateStore] = None
        #: terminal jobs rehydrated at boot / in-flight jobs resurrected
        #: as FAILED ``server_restart``
        self.restored = 0
        self.resurrected = 0
        if state_dir is not None:
            self.state_store = JobStateStore(state_dir)
            self._restore()
        if metrics is not None and (self.restored or self.resurrected):
            restored_metric = metrics.counter(
                "repro_jobs_restored_total",
                "Jobs rehydrated from the state journal at boot",
                labels=("outcome",),
            )
            if self.restored:
                restored_metric.inc(self.restored, outcome="terminal")
            if self.resurrected:
                restored_metric.inc(self.resurrected, outcome="resurrected")

    def _restore(self) -> None:
        terminals, orphans = self.state_store.replay()
        max_serial = 0
        for job_id, payload in terminals.items():
            try:
                job = Job.restore(payload)
            except (JobStateError, KeyError, TypeError, ValueError):
                _log.warning("dropping unreadable job record %r", job_id)
                continue
            self._jobs[job.job_id] = job
            if job.client_id:
                self._by_client[job.client_id] = job.job_id
            self.restored += 1
        for job_id, entry in orphans.items():
            view = {
                "job_id": job_id,
                "state": terminal_state_for(CODE_SERVER_RESTART),
                "error": "server restarted while the job was in flight",
                "error_code": CODE_SERVER_RESTART,
                "created_unix": entry.get("created_unix"),
                "client_id": entry.get("client_id"),
                "request": entry.get("request"),
                "produced": 0,
            }
            job = Job.restore(view)
            self._jobs[job.job_id] = job
            if job.client_id:
                self._by_client[job.client_id] = job.job_id
            self.resurrected += 1
        for job_id in self._jobs:
            match = _JOB_ID_RE.match(job_id)
            if match:
                max_serial = max(max_serial, int(match.group(1)))
        self._counter = itertools.count(max_serial + 1)
        # One terminal line per surviving job; orphan resurrections are
        # durable from here on (a second restart must not forget them).
        self.state_store.compact(
            [job.as_dict() for job in self._jobs.values()]
        )

    def _on_job_terminal(self, job: Job) -> None:
        if self.state_store is not None:
            self.state_store.record_terminal(job)

    def persist(self, job: Job) -> None:
        """Re-journal a terminal job (after the response was attached)."""
        if self.state_store is not None and job.is_terminal:
            self.state_store.record_terminal(job)

    def create(
        self,
        request=None,
        deadline: Optional[float] = None,
        client_id: Optional[str] = None,
    ) -> Job:
        job_id = f"job-{next(self._counter):06d}-{secrets.token_hex(4)}"
        job = Job(job_id, request=request, deadline=deadline)
        job.client_id = client_id
        if self.state_store is not None:
            job.on_terminal = self._on_job_terminal
        with self._lock:
            self._purge_locked()
            self._jobs[job_id] = job
            if client_id:
                self._by_client[client_id] = job_id
        if self.state_store is not None:
            self.state_store.record_create(job)
        return job

    def find_client(self, client_id: str) -> Optional[Job]:
        """The job previously submitted under a client idempotency key."""
        with self._lock:
            self._purge_locked()
            job_id = self._by_client.get(client_id)
            return self._jobs.get(job_id) if job_id else None

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            self._purge_locked()
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            self._purge_locked()
            return list(self._jobs.values())

    def __len__(self) -> int:
        with self._lock:
            self._purge_locked()
            return len(self._jobs)

    def counts(self) -> Dict[str, int]:
        """Jobs per state (for stats/metrics endpoints)."""
        counts: Dict[str, int] = {}
        for job in self.jobs():
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    def queued_count(self) -> int:
        """Jobs admitted but not yet running — the admission-bound gauge."""
        return sum(
            1 for job in self.jobs() if job.state in (PENDING, QUEUED)
        )

    def purge(self) -> int:
        """Drop terminal jobs older than ``ttl``; returns how many."""
        with self._lock:
            return self._purge_locked()

    def _purge_locked(self) -> int:
        now = time.perf_counter()
        stale = [
            job_id
            for job_id, job in self._jobs.items()
            if job.finished_at is not None
            and now - job.finished_at > self.ttl
        ]
        for job_id in stale:
            client_id = self._jobs[job_id].client_id
            if client_id and self._by_client.get(client_id) == job_id:
                del self._by_client[client_id]
            del self._jobs[job_id]
        return len(stale)

    def close(self) -> None:
        """Release the state journal handle, if any."""
        if self.state_store is not None:
            self.state_store.close()


__all__ = [
    "ACTIVE_STATES",
    "CANCELLED",
    "CODE_CANCELLED",
    "CODE_DEADLINE_EXPIRED",
    "CODE_INTERNAL",
    "CODE_INVALID_REQUEST",
    "CODE_LEGALIZE_FAILED",
    "CODE_QUEUE_FULL",
    "CODE_SERVER_RESTART",
    "CODE_SHUTDOWN",
    "CODE_WORKER_CRASHED",
    "ERROR_CODES",
    "EXPIRED",
    "EngineEvent",
    "FAILED",
    "JOB_STATES",
    "Job",
    "JobCancelled",
    "JobError",
    "JobStateError",
    "JobStateStore",
    "JobTable",
    "JobTransition",
    "LEGALIZING",
    "PENDING",
    "PERSISTING",
    "QUEUED",
    "RUNNING",
    "SUCCEEDED",
    "StageEvent",
    "TERMINAL_STATES",
    "error_code_for",
    "terminal_state_for",
]
