"""Indexed, content-addressed pattern store layered over :mod:`repro.io.store`.

Flat ``.npz`` libraries are fine for handing a result to one user, but a
service accumulating patterns across many requests needs deduplication and
querying.  The ``LibraryStore`` keeps one single-pattern ``.npz`` object
(written with :func:`repro.io.store.save_library`) per *unique* squish
topology, keyed by a content hash of ``(style, topology)``, plus a JSON
index holding the queryable characteristics: style, topology size, physical
size and legality.  Duplicate topologies — common when many requests ask
for the same styles — are counted, not re-stored.

Durability contract (the crash-safety half of this module):

- ``add()`` is **write-ahead journaled**: the object file is written
  first, then a JSONL record is appended to ``journal.jsonl`` and
  fsynced, and only then does the in-memory index mutate.  Once ``add()``
  returns, the pattern survives any crash.
- ``_flush()`` publishes the index atomically — temp file written,
  fsynced, ``os.replace``d, parent directory fsynced — and stamps the
  journal high-water mark (``journal_seq``) into the payload, after
  which the journal is compacted.
- Boot replays journal entries *newer* than the index's ``journal_seq``
  (tolerating a torn trailing line from a mid-append crash), so a crash
  between an acked ``add()`` and the next index flush loses nothing.
  Replays are counted in ``repro_store_journal_replays_total``.

Named fault sites (``store.object_write``, ``store.journal_append``,
``store.journal_sync``, ``store.flush_tmp``, ``store.flush_publish``,
``store.flush_compact``) let the chaos suite kill the process at every
step of that protocol and property-test the recovery.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro import faults
from repro.io.store import load_library, save_library
from repro.obs.metrics import default_metrics
from repro.squish.pattern import PatternLibrary, SquishPattern

_INDEX_NAME = "index.json"
_JOURNAL_NAME = "journal.jsonl"
_INDEX_VERSION = 1


def pattern_content_hash(pattern: SquishPattern) -> str:
    """Content hash of a squish topology under its style tag.

    Two patterns with the same style and the same topology matrix hash
    equally even when their delta vectors differ: topology identity is what
    the paper's diversity metric (Eq. 8) counts, so it is the right dedup
    granularity — the first-seen geometry is the one kept on disk.
    """
    digest = hashlib.sha256()
    digest.update(str(pattern.style).encode("utf-8"))
    digest.update(b"|")
    rows, cols = pattern.topology.shape
    digest.update(f"{rows}x{cols}|".encode("ascii"))
    digest.update(np.ascontiguousarray(pattern.topology, dtype=np.uint8).tobytes())
    return digest.hexdigest()


@dataclass
class StoreRecord:
    """Index entry: the queryable characteristics of one stored pattern."""

    content_hash: str
    style: Optional[str]
    rows: int
    cols: int
    physical_width: int
    physical_height: int
    legal: Optional[bool]
    file: str
    duplicates: int = 0

    def as_dict(self) -> Dict:
        return {
            "content_hash": self.content_hash,
            "style": self.style,
            "rows": self.rows,
            "cols": self.cols,
            "physical_width": self.physical_width,
            "physical_height": self.physical_height,
            "legal": self.legal,
            "file": self.file,
            "duplicates": self.duplicates,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "StoreRecord":
        return cls(**data)


@dataclass
class StoreReport:
    """Outcome of adding a batch of patterns."""

    added: int = 0
    deduplicated: int = 0
    hashes: List[str] = field(default_factory=list)


class LibraryStore:
    """Content-hash-indexed pattern store rooted at a directory.

    One instance is safe for concurrent use from many threads (a reentrant
    lock guards index mutations) and persistent: re-opening the same root
    reads the JSON index back.  Use a single instance per root — each
    instance caches the index in memory and rewrites it wholesale on add,
    so two live instances on the same directory would clobber each other's
    entries.
    """

    def __init__(self, root: Union[str, Path], metrics=None):
        self.root = Path(root)
        (self.root / "objects").mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._records: Dict[str, StoreRecord] = {}
        self._journal = None
        self._journal_seq = 0
        self.metrics = metrics if metrics is not None else default_metrics()
        self._m_added = self.metrics.counter(
            "repro_store_added_total", "Unique patterns written to the store"
        )
        self._m_deduplicated = self.metrics.counter(
            "repro_store_deduplicated_total",
            "Patterns deduplicated against an existing topology",
        )
        self._m_unique = self.metrics.gauge(
            "repro_store_unique_patterns", "Unique patterns in the store index"
        )
        self._m_replays = self.metrics.counter(
            "repro_store_journal_replays_total",
            "Journal entries replayed at boot (acked adds newer than the index)",
        )
        self._load_index()
        #: Journal entries applied during this boot (0 after a clean stop).
        self.journal_replayed = self._replay_journal()
        self._m_unique.set(len(self._records))
        if self.journal_replayed:
            self._m_replays.inc(self.journal_replayed)
            with self._lock:
                self._flush()

    # -- persistence ---------------------------------------------------

    @property
    def index_path(self) -> Path:
        return self.root / _INDEX_NAME

    @property
    def journal_path(self) -> Path:
        return self.root / _JOURNAL_NAME

    def close(self) -> None:
        """Release the journal file handle (the index is already durable)."""
        with self._lock:
            if self._journal is not None:
                self._journal.close()
                self._journal = None

    def _load_index(self) -> None:
        if not self.index_path.exists():
            return
        payload = json.loads(self.index_path.read_text())
        for entry in payload.get("patterns", []):
            record = StoreRecord.from_dict(entry)
            self._records[record.content_hash] = record
        self._journal_seq = int(payload.get("journal_seq", 0))

    def _replay_journal(self) -> int:
        """Apply journal entries newer than the index; returns the count.

        A torn trailing line (crash mid-append, before the fsync was
        acked) terminates the replay: nothing after it was acknowledged
        to a caller, so dropping it is correct, not lossy.
        """
        if not self.journal_path.exists():
            return 0
        index_seq = self._journal_seq
        max_seq = self._journal_seq
        applied = 0
        with open(self.journal_path, "r", encoding="utf-8") as handle:
            for line in handle:
                if not line.strip():
                    continue
                try:
                    entry = json.loads(line)
                    seq = int(entry["seq"])
                    op = entry["op"]
                except (ValueError, KeyError, TypeError):
                    break
                if seq <= index_seq:
                    continue
                if op == "add":
                    record = StoreRecord.from_dict(entry["record"])
                    self._records.setdefault(record.content_hash, record)
                elif op == "dup":
                    record = self._records.get(entry["hash"])
                    if record is not None:
                        record.duplicates += 1
                        if record.legal is None and entry.get("legal") is not None:
                            record.legal = bool(entry["legal"])
                max_seq = max(max_seq, seq)
                applied += 1
        self._journal_seq = max_seq
        return applied

    def _journal_handle(self):
        if self._journal is None:
            self._journal = open(self.journal_path, "a", encoding="utf-8")
        return self._journal

    def _append_journal(self, entry: Dict) -> None:
        """Write-ahead: the entry is durable (fsynced) before this returns."""
        self._journal_seq += 1
        entry["seq"] = self._journal_seq
        handle = self._journal_handle()
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
        handle.flush()
        faults.fire("store.journal_append")
        os.fsync(handle.fileno())
        faults.fire("store.journal_sync")

    @staticmethod
    def _fsync_dir(path: Path) -> None:
        """Make a rename durable: fsync the directory holding it."""
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-specific
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform-specific
            pass
        finally:
            os.close(fd)

    def _flush(self) -> None:
        payload = {
            "version": _INDEX_VERSION,
            "journal_seq": self._journal_seq,
            "patterns": [r.as_dict() for r in self._records.values()],
        }
        tmp = self.index_path.with_name(_INDEX_NAME + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, indent=1))
            handle.flush()
            os.fsync(handle.fileno())
        faults.fire("store.flush_tmp")
        os.replace(tmp, self.index_path)
        self._fsync_dir(self.root)
        faults.fire("store.flush_publish")
        # Every journaled entry is now in the published index; truncate.
        self._compact_journal()
        faults.fire("store.flush_compact")

    def _compact_journal(self) -> None:
        if self._journal is not None:
            self._journal.close()
            self._journal = None
        with open(self.journal_path, "w", encoding="utf-8") as handle:
            handle.flush()
            os.fsync(handle.fileno())

    # -- writing -------------------------------------------------------

    def add(
        self, pattern: SquishPattern, legal: Optional[bool] = None, flush: bool = True
    ) -> tuple:
        """Store one pattern; returns ``(content_hash, was_new)``.

        A pattern whose ``(style, topology)`` is already present is deduped:
        its duplicate counter increments and nothing is written to the
        object tree.  A known ``legal`` verdict upgrades a record whose
        legality was previously unknown.

        Durability: by the time this returns, the add is journaled and
        fsynced — a crash at any later point replays it at next boot.
        """
        content_hash = pattern_content_hash(pattern)
        with self._lock:
            record = self._records.get(content_hash)
            if record is not None:
                self._append_journal(
                    {"op": "dup", "hash": content_hash, "legal": legal}
                )
                record.duplicates += 1
                if record.legal is None and legal is not None:
                    record.legal = legal
                self._m_deduplicated.inc()
                if flush:
                    self._flush()
                return content_hash, False
            rel = Path("objects") / content_hash[:2] / f"{content_hash}.npz"
            target = self.root / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            faults.fire("store.object_write")
            written = save_library(
                PatternLibrary(patterns=[pattern], name=content_hash), target
            )
            record = StoreRecord(
                content_hash=content_hash,
                style=pattern.style,
                rows=pattern.shape[0],
                cols=pattern.shape[1],
                physical_width=pattern.physical_width,
                physical_height=pattern.physical_height,
                legal=legal,
                file=str(written.relative_to(self.root)),
            )
            self._append_journal({"op": "add", "record": record.as_dict()})
            self._records[content_hash] = record
            self._m_added.inc()
            self._m_unique.set(len(self._records))
            if flush:
                self._flush()
            return content_hash, True

    def add_library(
        self, library: PatternLibrary, legal: Optional[bool] = None
    ) -> StoreReport:
        """Store every pattern of a library, deduplicating as it goes.

        The index is flushed once at the end, not per pattern.
        """
        report = StoreReport()
        with self._lock:
            for pattern in library:
                content_hash, was_new = self.add(pattern, legal=legal, flush=False)
                report.hashes.append(content_hash)
                if was_new:
                    report.added += 1
                else:
                    report.deduplicated += 1
            if len(library):
                self._flush()
        return report

    # -- reading -------------------------------------------------------

    def get(self, content_hash: str) -> SquishPattern:
        """Load one stored pattern by its content hash."""
        with self._lock:
            record = self._records.get(content_hash)
        if record is None:
            raise KeyError(f"unknown content hash {content_hash!r}")
        return load_library(self.root / record.file)[0]

    def record(self, content_hash: str) -> StoreRecord:
        """Index entry for one content hash (no pattern data loaded)."""
        with self._lock:
            try:
                return self._records[content_hash]
            except KeyError:
                raise KeyError(
                    f"unknown content hash {content_hash!r}"
                ) from None

    def query(
        self,
        style: Optional[str] = None,
        legal: Optional[bool] = None,
        min_size: Optional[int] = None,
        max_size: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> PatternLibrary:
        """Load every stored pattern matching the given characteristics.

        ``min_size`` / ``max_size`` bound the larger topology edge
        (``max(rows, cols)``); ``legal`` filters on the recorded verdict
        (records with unknown legality match only ``legal=None``).
        """
        with self._lock:
            records = list(self._records.values())
        matches = PatternLibrary(name=f"{self.root.name}-query")
        for record in records:
            if style is not None and record.style != style:
                continue
            if legal is not None and record.legal is not legal:
                continue
            edge = max(record.rows, record.cols)
            if min_size is not None and edge < min_size:
                continue
            if max_size is not None and edge > max_size:
                continue
            matches.add(load_library(self.root / record.file)[0])
            if limit is not None and len(matches) >= limit:
                break
        return matches

    # -- observability -------------------------------------------------

    def records(self) -> List[StoreRecord]:
        """Snapshot of every index row."""
        with self._lock:
            return list(self._records.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def styles(self) -> List[str]:
        with self._lock:
            return sorted(
                {r.style for r in self._records.values() if r.style is not None}
            )

    def stats(self) -> Dict:
        with self._lock:
            records = list(self._records.values())
        by_style: Dict[str, int] = {}
        for record in records:
            by_style[str(record.style)] = by_style.get(str(record.style), 0) + 1
        return {
            "unique": len(records),
            "duplicates": sum(r.duplicates for r in records),
            "legal": sum(1 for r in records if r.legal is True),
            "by_style": by_style,
        }
