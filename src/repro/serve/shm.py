"""Shared-memory arena: zero-copy array transport across process workers.

The process executor tier (:mod:`repro.serve.executors`) must move sampled
batches — ``(N, H, W)`` uint8 stacks — from worker processes back to the
engine without pickling megabytes of array through a pipe on every batch.
This module is the transport: arrays cross the process boundary as plain
:class:`ArrayRef` descriptors (``segment name, shape, dtype, offset``) over
a ``multiprocessing.shared_memory`` segment, and only the tiny descriptor
is pickled.

Ownership model (the part that keeps ``/dev/shm`` clean):

- The **parent** (arena owner) creates every segment.  It knows the result
  shape before dispatching a batch, so it pre-allocates the destination,
  ships the descriptor in the work message, and the child only *attaches*
  and writes.  A worker killed mid-batch therefore can never leak a
  segment the parent does not already track — crash cleanup is entirely
  the parent's :meth:`ShmArena.release`/:meth:`ShmArena.close`.
- Segments are **refcounted** in the arena: :meth:`ShmArena.retain` for
  each additional reader, :meth:`ShmArena.release` per finished reader;
  the backing segment is closed + unlinked when the count reaches zero.
  :meth:`ShmArena.close` force-releases everything (engine shutdown).
- Attaching (child side) goes through :func:`attach_ref`, which
  *suppresses* the ``resource_tracker`` registration the attach would
  otherwise perform: on Python < 3.13 every attach registers the name
  (bpo-39959), and since spawn-children share the parent's tracker
  process, a child-side unregister-after-attach would erase the *owner's*
  registration — so the attach must simply never register.  The creating
  arena's registration stays intact, which keeps the tracker's
  crash-of-owner cleanup working.

Every segment name carries the :data:`SHM_PREFIX` prefix, so leak checks
(tests, the ``procpool-smoke`` CI job) can assert ``/dev/shm`` holds no
``repro_shm_*`` entries after shutdown — see :func:`leaked_segments`.
"""

from __future__ import annotations

import os
import secrets
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path
from typing import Dict, List, Tuple

import numpy as np

from repro import faults

#: Name prefix of every arena segment (leak checks grep for it).
SHM_PREFIX = "repro_shm"


class ShmError(RuntimeError):
    """A shared-memory transport operation failed."""


@dataclass(frozen=True)
class ArrayRef:
    """Wire descriptor of an array living in a shared-memory segment.

    The pickled payload of the hot path: ~100 bytes regardless of the
    array size.  ``offset`` allows sub-views into one segment; the current
    executors allocate one segment per batch, so it is 0 in practice.
    """

    name: str
    shape: Tuple[int, ...]
    dtype: str
    offset: int = 0

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count * np.dtype(self.dtype).itemsize

    def as_tuple(self) -> Tuple:
        """Plain-tuple form for pipe messages (no class pickling)."""
        return (self.name, tuple(self.shape), self.dtype, self.offset)

    @classmethod
    def from_tuple(cls, data: Tuple) -> "ArrayRef":
        name, shape, dtype, offset = data
        return cls(
            name=name, shape=tuple(shape), dtype=dtype, offset=int(offset)
        )


_tracker_patch_lock = threading.Lock()


@contextmanager
def _suppress_tracker_register():
    """Silence ``resource_tracker.register`` for the enclosed attach.

    Attaching registers the segment name on Python < 3.13 (bpo-39959).
    Spawn-children share the owner's tracker process, so an attach-side
    registration followed by unregister would erase the owner's entry and
    make the owner's eventual ``unlink`` fail noisily inside the tracker.
    Suppressing the registration entirely leaves exactly one tracker
    entry — the creator's — for the segment's whole life.
    """
    with _tracker_patch_lock:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            yield
        finally:
            resource_tracker.register = original


def attach_ref(ref: ArrayRef) -> Tuple[np.ndarray, shared_memory.SharedMemory]:
    """Attach to a ref's segment; returns ``(view, segment)``.

    The view is writable and zero-copy; the caller must ``segment.close()``
    once done with it (:func:`write_into` / :func:`read_copy` wrap the
    common patterns).  Never unlinks — the owning arena does that.
    """
    faults.fire("shm.attach")
    try:
        with _suppress_tracker_register():
            segment = shared_memory.SharedMemory(name=ref.name)
    except FileNotFoundError:
        raise ShmError(
            f"shared-memory segment {ref.name!r} is gone "
            "(owner released it, or it never existed)"
        ) from None
    view = np.ndarray(
        ref.shape,
        dtype=np.dtype(ref.dtype),
        buffer=segment.buf,
        offset=ref.offset,
    )
    return view, segment


def write_into(ref: ArrayRef, array: np.ndarray) -> None:
    """Copy ``array`` into the ref's segment (the child-side write path)."""
    if tuple(array.shape) != tuple(ref.shape):
        raise ShmError(
            f"array shape {tuple(array.shape)} does not match "
            f"descriptor shape {tuple(ref.shape)}"
        )
    view, segment = attach_ref(ref)
    try:
        faults.fire("shm.write")
        view[...] = array
    finally:
        del view  # the buffer view must die before the segment closes
        segment.close()


def read_copy(ref: ArrayRef) -> np.ndarray:
    """Attach, copy out, detach: a standalone (non-owner) read."""
    view, segment = attach_ref(ref)
    try:
        return np.array(view, copy=True)
    finally:
        del view
        segment.close()


def sweep_stale_segments(prefix: str = SHM_PREFIX) -> List[str]:
    """Unlink arena segments whose owning process is gone.

    A SIGKILLed parent (or a machine crash before the resource tracker
    ran) can strand ``repro_shm_*`` files in ``/dev/shm`` forever.  The
    arena name format — ``{prefix}_{pid}_{seq}_{token}`` — records the
    owner's pid, so a boot-time sweep can tell *stale* (owner dead) from
    *live* (another serve process on this machine): only segments whose
    owner fails the ``kill(pid, 0)`` liveness probe are removed.

    Returns the names unlinked.  Safe to call concurrently with live
    arenas; a no-op on platforms without ``/dev/shm``.
    """
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():
        return []
    removed: List[str] = []
    for path in shm_dir.glob(f"{prefix}_*"):
        fields = path.name[len(prefix) + 1:].split("_")
        try:
            owner_pid = int(fields[0])
        except (IndexError, ValueError):
            continue  # not an arena name; leave it alone
        try:
            os.kill(owner_pid, 0)
            continue  # owner alive — segment is in use
        except ProcessLookupError:
            pass  # owner dead: stale
        except PermissionError:
            continue  # alive, owned by another user
        try:
            path.unlink()
            removed.append(path.name)
        except OSError:
            continue  # raced another sweeper, or perms — both fine
    return sorted(removed)


def leaked_segments(prefix: str = SHM_PREFIX) -> List[str]:
    """Arena-named segments currently present in ``/dev/shm``.

    The post-shutdown leak check: after every arena closed, this must be
    empty.  Returns ``[]`` on platforms without a ``/dev/shm``.
    """
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():
        return []
    return sorted(p.name for p in shm_dir.glob(f"{prefix}_*"))


class _Segment:
    __slots__ = ("memory", "refcount")

    def __init__(self, memory: shared_memory.SharedMemory):
        self.memory = memory
        self.refcount = 1


class ShmArena:
    """Owner-side registry of refcounted shared-memory segments.

    One arena per process executor: the supervisor threads allocate result
    segments through it, readers retain/release, and ``close()`` on engine
    shutdown unlinks anything still live (e.g. batches a crashed worker
    never delivered).  Thread-safe — supervisor threads share one arena.
    """

    def __init__(self, prefix: str = SHM_PREFIX):
        self._prefix = prefix
        self._segments: Dict[str, _Segment] = {}
        self._lock = threading.Lock()
        self._seq = 0

    # -- allocation ----------------------------------------------------

    def _next_name(self) -> str:
        with self._lock:
            self._seq += 1
            seq = self._seq
        # pid + counter + random token: unique across processes, arenas
        # and restarts, while keeping the greppable prefix.
        return f"{self._prefix}_{os.getpid()}_{seq}_{secrets.token_hex(4)}"

    def allocate(self, shape: Tuple[int, ...], dtype="uint8") -> ArrayRef:
        """Create a zero-filled segment sized for ``shape``/``dtype``."""
        ref = ArrayRef(
            name=self._next_name(),
            shape=tuple(int(dim) for dim in shape),
            dtype=np.dtype(dtype).name,
        )
        if ref.nbytes == 0:
            raise ShmError("cannot allocate a zero-byte segment")
        faults.fire("shm.allocate")
        memory = shared_memory.SharedMemory(
            name=ref.name, create=True, size=ref.nbytes
        )
        with self._lock:
            self._segments[ref.name] = _Segment(memory)
        return ref

    def share(self, array: np.ndarray) -> ArrayRef:
        """Allocate a segment and copy ``array`` into it."""
        array = np.ascontiguousarray(array)
        ref = self.allocate(array.shape, dtype=array.dtype)
        view = self.view(ref)
        view[...] = array
        del view
        return ref

    # -- access --------------------------------------------------------

    def view(self, ref: ArrayRef) -> np.ndarray:
        """Zero-copy writable view of an *owned* segment."""
        with self._lock:
            segment = self._segments.get(ref.name)
        if segment is None:
            raise ShmError(f"arena does not own segment {ref.name!r}")
        return np.ndarray(
            ref.shape,
            dtype=np.dtype(ref.dtype),
            buffer=segment.memory.buf,
            offset=ref.offset,
        )

    def take(self, ref: ArrayRef) -> np.ndarray:
        """Copy an owned segment's array out and release it.

        The common parent read: one copy into normal memory, then the
        segment dies (refcount permitting) — callers get an ordinary
        ndarray with no shared-memory lifetime attached.
        """
        result = np.array(self.view(ref), copy=True)
        self.release(ref)
        return result

    # -- lifetime ------------------------------------------------------

    def retain(self, ref: ArrayRef) -> None:
        with self._lock:
            segment = self._segments.get(ref.name)
            if segment is None:
                raise ShmError(f"arena does not own segment {ref.name!r}")
            segment.refcount += 1

    def release(self, ref: ArrayRef) -> None:
        """Drop one reference; unlink the segment at zero.  Idempotent for
        already-released names (crash cleanup may race a normal release)."""
        with self._lock:
            segment = self._segments.get(ref.name)
            if segment is None:
                return
            segment.refcount -= 1
            if segment.refcount > 0:
                return
            del self._segments[ref.name]
        self._destroy(segment.memory)

    @staticmethod
    def _destroy(memory: shared_memory.SharedMemory) -> None:
        try:
            memory.close()
        except Exception:
            pass
        try:
            memory.unlink()
        except Exception:
            pass

    def close(self) -> None:
        """Force-release every live segment (shutdown / crash sweep)."""
        with self._lock:
            segments, self._segments = list(self._segments.values()), {}
        for segment in segments:
            self._destroy(segment.memory)

    @property
    def active(self) -> int:
        """Number of live segments (0 after a clean shutdown)."""
        with self._lock:
            return len(self._segments)

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = [
    "SHM_PREFIX",
    "ArrayRef",
    "ShmArena",
    "ShmError",
    "attach_ref",
    "leaked_segments",
    "read_copy",
    "sweep_stale_segments",
    "write_into",
]
