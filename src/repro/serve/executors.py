"""Executor backends: layer 3 of the serving engine, behind a protocol.

The :class:`~repro.serve.engine.ServeEngine` used to hard-code a thread
pool as its executor layer.  This module extracts that layer behind
:class:`ExecutorBackend`, with two implementations:

- :class:`ThreadExecutor` (``executor="thread"``, the default) — the
  classic in-process pool, behavior-identical to the pre-refactor engine:
  ``engine_workers`` threads gather batches and run trajectories through
  the bound model object directly.  True parallelism is whatever numpy
  releases the GIL for.
- :class:`ProcessExecutor` (``executor="process"``) — ``engine_workers``
  **spawned worker processes**, each holding its *own* fitted model
  rehydrated from the disk :class:`~repro.serve.registry.ModelRegistry`
  by ``recipe_hash`` (spawn cost is a cache read, never a retrain), so the
  denoise hot path runs N interpreters wide.  Sampled batches return
  through :mod:`repro.serve.shm` as shared-memory descriptors — no array
  pickling on the hot path.

Supervision (process tier): each worker slot is driven by a parent-side
supervisor thread that runs the engine's gather loop, dispatches one
trajectory plan at a time over a pipe, and watches the child.  Children
heartbeat while executing; a crash (pipe EOF, nonzero exitcode, lost
heartbeat) triggers a bounded respawn and **one retry** of the in-flight
batch — a second crash fails the batch's jobs with the terminal
``worker_crashed`` error code while the engine keeps serving.  Consecutive
crashes beyond ``respawn_limit`` stop the respawning: the slot fails fast
instead of burning CPU on a poisoned worker.

Reproducibility: the child rebuilds *exactly* the parent's trajectory RNG
(``SeedSequence`` over the batch's job seeds) and step-schedule kwargs, so
thread and process tiers produce byte-identical samples for the same
batch composition — property-tested in ``tests/serve/test_executors.py``.
"""

from __future__ import annotations

import itertools
import logging
import multiprocessing
import os
import threading
import time
import traceback
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro import faults
from repro.faults import FaultError, FaultPlan
from repro.serve import shm as shm_transport
from repro.serve.shm import ArrayRef, ShmArena

logger = logging.getLogger("repro.serve.executors")

#: Registered executor backends (mirrored in config validation).
EXECUTOR_NAMES = ("thread", "process")


class ExecutorError(RuntimeError):
    """An executor backend could not start or supervise its workers."""


class _WorkerCrash(Exception):
    """Internal supervisor signal: the child died (retry/respawn path)."""


class _RemoteError(Exception):
    """Internal supervisor signal: the child executed and raised."""


class ExecutorBackend:
    """Protocol of the engine's executor layer.

    The engine owns admission, batching policy and routing; a backend owns
    only *where trajectories run*: it brings workers up against an engine,
    drives them through ``engine._next_batch()`` / ``engine._plan()`` /
    ``engine._finish_plan()``, and tears them down.  A backend instance
    belongs to one engine and is restartable (stop then start again).
    """

    name = "base"
    #: process-tier backends execute by recipe, not by object: every job
    #: must carry a ``model_key`` so workers can resolve the model.
    requires_model_key = False

    def start(self, engine) -> None:
        raise NotImplementedError

    @property
    def running(self) -> bool:
        raise NotImplementedError

    def join(self, deadline: float) -> None:
        """Wait (until ``deadline``, perf_counter clock) for workers to
        finish their loops.  Does not interrupt them — the engine flips
        its drain/halt events first."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release worker resources after the loops ended (reap children,
        unlink shared memory).  Must be idempotent."""

    def worker_info(self) -> List[Dict]:
        """Introspection for tests/diagnostics (empty for thread tiers)."""
        return []


class ThreadExecutor(ExecutorBackend):
    """The classic in-process pool: ``engine_workers`` gather threads."""

    name = "thread"

    def __init__(self) -> None:
        self._threads: List[threading.Thread] = []

    def start(self, engine) -> None:
        self._threads = [
            threading.Thread(
                target=engine._worker_loop,
                args=(index,),
                name=f"repro-serve-engine-{index}",
                daemon=True,
            )
            for index in range(engine.engine_workers)
        ]
        for thread in self._threads:
            thread.start()

    @property
    def running(self) -> bool:
        return any(thread.is_alive() for thread in self._threads)

    def join(self, deadline: float) -> None:
        for thread in self._threads:
            thread.join(timeout=max(0.0, deadline - time.perf_counter()))

    def shutdown(self) -> None:
        self._threads = []


# ---------------------------------------------------------------------------
# Process tier


class _WorkerSlot:
    """Parent-side state of one worker process (owned by one supervisor)."""

    __slots__ = ("index", "proc", "conn", "crashes", "spawns", "last_beat",
                 "busy", "task_ids", "dispatches")

    def __init__(self, index: int):
        self.index = index
        self.proc = None
        self.conn = None
        self.crashes = 0  # consecutive; reset on every delivered batch
        self.spawns = 0
        self.last_beat = 0.0
        self.busy = False
        self.task_ids = itertools.count(1)
        #: batches shipped to this slot's children over all their lives —
        #: primes a respawned child's ``worker.execute`` fault counter so
        #: nth-based rules track the global dispatch index, not the life's.
        self.dispatches = 0


class ProcessExecutor(ExecutorBackend):
    """Spawned worker processes with shared-memory batch transport.

    Args:
        heartbeat_interval: seconds between child heartbeats while a batch
            executes (children are silent while idle — liveness is checked
            via ``Process.is_alive`` at dispatch).
        heartbeat_timeout: seconds without a heartbeat mid-batch before
            the child is declared hung and killed.
        respawn_limit: consecutive crashes per slot before the supervisor
            stops respawning and fails batches fast (a delivered batch
            resets the count).
        start_timeout: seconds to wait for a freshly spawned child's
            ready handshake.
        use_shm: transport sampled batches via :mod:`repro.serve.shm`
            descriptors (default).  ``False`` falls back to pickling the
            arrays through the pipe (debugging aid).
    """

    name = "process"
    requires_model_key = True

    def __init__(
        self,
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: float = 30.0,
        respawn_limit: int = 5,
        start_timeout: float = 120.0,
        use_shm: bool = True,
    ):
        self._heartbeat_interval = float(heartbeat_interval)
        self._heartbeat_timeout = float(heartbeat_timeout)
        self._respawn_limit = int(respawn_limit)
        self._start_timeout = float(start_timeout)
        self._use_shm = bool(use_shm)
        self._ctx = multiprocessing.get_context("spawn")
        self._threads: List[threading.Thread] = []
        self._slots: List[_WorkerSlot] = []
        self._arena: Optional[ShmArena] = None
        self._save_dir: Optional[str] = None
        self._published: set = set()
        self._publish_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------

    def start(self, engine) -> None:
        registry = engine.registry
        if registry is None or registry.save_dir is None:
            raise ExecutorError(
                'executor="process" requires an engine registry with a '
                "disk tier (model_cache): workers rehydrate fitted models "
                "from disk by recipe_hash"
            )
        self._save_dir = str(registry.save_dir)
        self._published = set()
        # Boot-time hygiene: a previous serve process SIGKILLed before its
        # arena closed leaves repro_shm_* files in /dev/shm forever.  The
        # sweep unlinks only segments whose owner pid is dead, so live
        # engines on the same machine are untouched.
        stale = shm_transport.sweep_stale_segments()
        swept = engine.metrics.counter(
            "repro_shm_stale_cleaned_total",
            "Stale shared-memory segments of dead owners removed at startup",
        )
        if stale:
            swept.inc(len(stale))
            logger.warning(
                "swept %d stale shared-memory segment(s) left by dead "
                "processes: %s", len(stale), ", ".join(stale),
            )
        if self._arena is None:
            self._arena = ShmArena()
        self._slots = [
            _WorkerSlot(index) for index in range(engine.engine_workers)
        ]
        self._threads = [
            threading.Thread(
                target=self._supervise,
                args=(engine, slot),
                name=f"repro-serve-supervisor-{slot.index}",
                daemon=True,
            )
            for slot in self._slots
        ]
        for thread in self._threads:
            thread.start()

    @property
    def running(self) -> bool:
        return any(thread.is_alive() for thread in self._threads)

    def join(self, deadline: float) -> None:
        for thread in self._threads:
            thread.join(timeout=max(0.0, deadline - time.perf_counter()))

    def shutdown(self) -> None:
        """Reap every child (stop -> join -> terminate -> kill) and unlink
        any shared-memory segments still live.  No orphans survive."""
        self._threads = []
        slots, self._slots = self._slots, []
        for slot in slots:
            self._reap_slot(slot, polite=True)
        if self._arena is not None:
            self._arena.close()

    def worker_info(self) -> List[Dict]:
        return [
            {
                "index": slot.index,
                "pid": (
                    slot.proc.pid
                    if slot.proc is not None and slot.proc.is_alive()
                    else None
                ),
                "busy": slot.busy,
                "crashes": slot.crashes,
                "spawns": slot.spawns,
            }
            for slot in self._slots
        ]

    @property
    def arena(self) -> Optional[ShmArena]:
        return self._arena

    # -- supervision ---------------------------------------------------

    def _supervise(self, engine, slot: _WorkerSlot) -> None:
        """One slot's driver: gather -> plan -> dispatch -> deliver."""
        while True:
            batch = engine._next_batch()
            if batch is None:
                break
            for plan in engine._plan(batch, worker=slot.index):
                self._run_plan(engine, slot, plan)
        if engine._halt.is_set():
            engine._fail_pending("engine stopped before job ran")

    def _run_plan(self, engine, slot: _WorkerSlot, plan) -> None:
        from repro.serve.engine import WorkerCrashedError

        worker_label = str(slot.index)
        engine._m_worker_active.set(1, worker=worker_label)
        try:
            for attempt in range(2):  # the in-flight batch retries once
                try:
                    self._ensure_worker(engine, slot)
                    self._publish_model(engine, plan)
                except ExecutorError as exc:
                    engine._fail_plan(
                        plan,
                        WorkerCrashedError(
                            f"worker {slot.index} unavailable: {exc}"
                        ),
                    )
                    return
                dispatched = time.perf_counter()
                try:
                    samples, child_wall = self._roundtrip(slot, plan)
                except _WorkerCrash as crash:
                    slot.crashes += 1
                    logger.warning(
                        "worker %d crashed (attempt %d/2): %s",
                        slot.index, attempt + 1, crash,
                    )
                    self._reap_slot(slot, polite=False)
                    continue
                except _RemoteError as exc:
                    # The model itself raised in the child: a normal
                    # execution failure, not a crash — no retry.
                    engine._fail_plan(plan, RuntimeError(str(exc)))
                    return
                wall = time.perf_counter() - dispatched
                slot.crashes = 0
                engine._m_ipc_roundtrip.observe(
                    max(0.0, wall - child_wall), worker=worker_label
                )
                engine._finish_plan(
                    plan, samples, dispatched, wall, worker=slot.index
                )
                return
            engine._fail_plan(
                plan,
                WorkerCrashedError(
                    f"worker {slot.index} crashed twice while executing "
                    f"this batch ({plan.samples} samples); giving up after "
                    "one retry"
                ),
            )
        finally:
            engine._m_worker_active.set(0, worker=worker_label)

    def _ensure_worker(self, engine, slot: _WorkerSlot) -> None:
        if slot.proc is not None and slot.proc.is_alive():
            return
        if slot.crashes >= self._respawn_limit:
            raise ExecutorError(
                f"respawn budget exhausted ({slot.crashes} consecutive "
                f"crashes >= respawn_limit={self._respawn_limit})"
            )
        self._reap_slot(slot, polite=False)
        if slot.spawns > 0:
            engine._m_worker_restarts.inc(worker=str(slot.index))
        self._spawn(slot)

    def _spawn(self, slot: _WorkerSlot) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        # Ship the active fault plan (if any) to the child, with the
        # worker.execute counter primed to this slot's global dispatch
        # tally — an nth-based kill rule fires at the same call index
        # across respawns instead of re-firing every new life.
        plan = faults.active_plan()
        faults_spec = None
        if getattr(plan, "enabled", False) and hasattr(plan, "as_spec"):
            faults_spec = dict(plan.as_spec())
            faults_spec["counts"] = {"worker.execute": slot.dispatches}
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                child_conn, self._save_dir, self._heartbeat_interval,
                faults_spec,
            ),
            name=f"repro-exec-worker-{slot.index}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        slot.spawns += 1
        deadline = time.monotonic() + self._start_timeout
        while True:
            try:
                if parent_conn.poll(0.1):
                    reply = parent_conn.recv()
                    if reply[0] == "ready":
                        break
            except (EOFError, OSError):
                pass
            if not proc.is_alive():
                parent_conn.close()
                raise ExecutorError(
                    f"worker {slot.index} died during startup "
                    f"(exitcode={proc.exitcode})"
                )
            if time.monotonic() > deadline:
                proc.terminate()
                proc.join(timeout=5.0)
                parent_conn.close()
                raise ExecutorError(
                    f"worker {slot.index} missed its ready handshake "
                    f"within {self._start_timeout:.0f}s"
                )
        slot.proc = proc
        slot.conn = parent_conn
        slot.last_beat = time.monotonic()

    def _reap_slot(self, slot: _WorkerSlot, polite: bool) -> None:
        """Tear one child down for good: stop -> join -> terminate -> kill."""
        proc, slot.proc = slot.proc, None
        conn, slot.conn = slot.conn, None
        if conn is not None:
            if polite and proc is not None and proc.is_alive():
                try:
                    conn.send(("stop",))
                except Exception:
                    pass
            try:
                conn.close()
            except Exception:
                pass
        if proc is None:
            return
        proc.join(timeout=5.0 if polite else 0.5)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5.0)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=5.0)
        try:
            proc.close()
        except Exception:
            pass

    def _publish_model(self, engine, plan) -> None:
        """Guarantee the plan's recipe is readable from the disk registry.

        The parent may hold a model it fitted purely in memory (or was
        handed pre-fitted); the child resolves by recipe_hash from disk,
        so the parent writes the cache entry before first dispatch."""
        key = plan.model_key
        recipe = key.recipe_hash()
        with self._publish_lock:
            if recipe in self._published:
                return
            path = engine.registry.ensure_on_disk(key, plan.model)
            if path is None:
                raise ExecutorError(
                    f"could not publish model {recipe[:8]} to the disk "
                    "registry for worker processes"
                )
            self._published.add(recipe)

    # -- the wire ------------------------------------------------------

    def _roundtrip(self, slot: _WorkerSlot, plan):
        """Dispatch one plan to the slot's child; returns (samples, wall).

        Raises :class:`_WorkerCrash` on child death / lost heartbeat and
        :class:`_RemoteError` when the child executed and raised."""
        try:
            # A dispatch-side fault is indistinguishable from a child that
            # died as the batch went out: route it through the crash path
            # so the retry-once machinery is what gets exercised.
            faults.fire("engine.dispatch")
        except FaultError as exc:
            raise _WorkerCrash(f"injected dispatch fault: {exc}") from None
        ref: Optional[ArrayRef] = None
        if self._use_shm:
            ref = self._arena.allocate(
                (plan.samples, *plan.shape), dtype="uint8"
            )
        task_id = next(slot.task_ids)
        message = (
            "exec",
            task_id,
            plan.model_key.as_dict(),
            list(plan.conditions),
            list(plan.seeds),
            tuple(plan.shape),
            plan.sampler_steps,
            plan.pass_sampler_steps,
            ref.as_tuple() if ref is not None else None,
        )
        slot.busy = True
        try:
            try:
                slot.conn.send(message)
            except (OSError, ValueError, BrokenPipeError) as exc:
                raise _WorkerCrash(f"dispatch failed: {exc}") from None
            slot.dispatches += 1
            slot.last_beat = time.monotonic()
            while True:
                try:
                    has_reply = slot.conn.poll(0.2)
                except (OSError, EOFError):
                    raise _WorkerCrash("pipe broke while waiting") from None
                if has_reply:
                    try:
                        reply = slot.conn.recv()
                    except (EOFError, OSError):
                        raise _WorkerCrash(
                            "pipe EOF: worker died mid-batch "
                            f"(exitcode={slot.proc.exitcode})"
                        ) from None
                    kind = reply[0]
                    if kind == "heartbeat":
                        slot.last_beat = time.monotonic()
                        continue
                    if kind == "ok":
                        _, reply_id, child_wall, inline = reply
                        if reply_id != task_id:
                            continue  # stale reply from a previous life
                        if ref is not None:
                            samples = self._arena.take(ref)
                            ref = None
                        else:
                            samples = inline
                        return samples, float(child_wall)
                    if kind == "err":
                        _, reply_id, error_text, child_tb = reply
                        logger.debug(
                            "worker %d remote failure:\n%s",
                            slot.index, child_tb,
                        )
                        raise _RemoteError(error_text)
                    continue  # unknown message kind: ignore
                if slot.proc is None or not slot.proc.is_alive():
                    exitcode = (
                        slot.proc.exitcode if slot.proc is not None else None
                    )
                    raise _WorkerCrash(
                        f"worker exited mid-batch (exitcode={exitcode})"
                    )
                if (
                    time.monotonic() - slot.last_beat
                    > self._heartbeat_timeout
                ):
                    raise _WorkerCrash(
                        "worker heartbeat lost "
                        f"(> {self._heartbeat_timeout:.0f}s silent)"
                    )
        finally:
            slot.busy = False
            if ref is not None:  # crash/error path: reclaim the segment
                self._arena.release(ref)


def _worker_main(
    conn, save_dir: str, heartbeat_interval: float, faults_spec=None
) -> None:
    """Entry point of a spawned worker process.

    Protocol (tuples over the pipe): receives ``("exec", task_id, recipe,
    conditions, seeds, shape, sampler_steps, pass_steps, ref_tuple)`` or
    ``("stop",)``; replies ``("ready", pid)`` once at startup, then
    ``("heartbeat", t)`` while executing and ``("ok", task_id, wall,
    inline)`` / ``("err", task_id, message, traceback)`` per batch.

    Models resolve through a private :class:`ModelRegistry` over the
    shared ``save_dir`` — a pure cache read for published recipes; the
    registry's single-flight refit is the safety net if the file vanishes.

    ``faults_spec`` (the parent's active plan + primed counters) installs
    the same fault plan in this process, so chaos rules reach the
    ``worker.execute`` seam and the child-side shm/registry seams.
    """
    from repro.serve.registry import ModelKey, ModelRegistry

    if faults_spec:
        faults.install(FaultPlan.from_spec(faults_spec))
    registry = ModelRegistry(save_dir=save_dir)
    send_lock = threading.Lock()
    executing = threading.Event()

    def _beat() -> None:
        # Heartbeats only while a batch executes: the parent drains the
        # pipe then.  An idle child stays silent so unread heartbeats can
        # never fill the pipe buffer and deadlock the result send.
        while True:
            executing.wait()
            with send_lock:
                try:
                    conn.send(("heartbeat", time.monotonic()))
                except Exception:
                    return
            time.sleep(heartbeat_interval)

    threading.Thread(target=_beat, daemon=True).start()
    with send_lock:
        conn.send(("ready", os.getpid()))
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if not message or message[0] == "stop":
            return
        (_, task_id, recipe, conditions, seeds, shape,
         sampler_steps, pass_steps, ref_tuple) = message
        executing.set()
        try:
            # The canonical worker-crash seam: a kill-mode rule hard-exits
            # right here, reproducing a child SIGKILLed mid-batch; an
            # error-mode rule surfaces as a remote execution failure.
            faults.fire("worker.execute")
            model = registry.get_or_fit(ModelKey.from_dict(recipe))
            # Exactly the engine's trajectory derivation: the rng comes
            # from the riders' seeds and the step kwarg is passed iff the
            # parent's thread tier would pass it — byte-identical samples.
            rng = np.random.default_rng(
                np.random.SeedSequence(list(seeds))
            )
            kwargs = (
                {"sampler_steps": sampler_steps}
                if pass_steps and sampler_steps is not None
                else {}
            )
            started = time.perf_counter()
            samples = model.sample_batch(
                list(conditions), rng, shape=tuple(shape), **kwargs
            )
            wall = time.perf_counter() - started
            inline = None
            if ref_tuple is not None:
                shm_transport.write_into(
                    ArrayRef.from_tuple(ref_tuple),
                    np.ascontiguousarray(samples),
                )
            else:
                inline = samples
            reply = ("ok", task_id, wall, inline)
        except Exception as exc:
            reply = (
                "err",
                task_id,
                f"{type(exc).__name__}: {exc}",
                traceback.format_exc(),
            )
        finally:
            executing.clear()
        with send_lock:
            try:
                conn.send(reply)
            except Exception:
                return


def resolve_executor(
    executor: Union[str, ExecutorBackend],
) -> ExecutorBackend:
    """Accept a backend instance or one of the registered names."""
    if isinstance(executor, ExecutorBackend):
        return executor
    if executor == "thread":
        return ThreadExecutor()
    if executor == "process":
        return ProcessExecutor()
    raise ValueError(
        f"unknown executor {executor!r}; known: {sorted(EXECUTOR_NAMES)}"
    )


__all__ = [
    "EXECUTOR_NAMES",
    "ExecutorBackend",
    "ExecutorError",
    "ProcessExecutor",
    "ThreadExecutor",
    "resolve_executor",
]
