"""Observability records for the pattern-generation service.

Every layer of :mod:`repro.serve` reports through these dataclasses: the
micro-batching scheduler records one :class:`BatchRecord` per batched
denoise trajectory, each served request gets a :class:`RequestStats`, and
:class:`SchedulerStats` aggregates a run for dashboards/benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class BatchRecord:
    """One batched sampling trajectory executed by the engine.

    ``model``/``worker``/``policy`` carry the engine's routing provenance:
    which bound back-end the trajectory served, which executor ran it and
    under which batching policy it was selected.  They default to neutral
    values so records from the single-model scheduler facade stay
    identical to the pre-engine ones.  ``started_at`` is the
    ``time.perf_counter`` instant execution began (0.0 on legacy or
    synthetic records) — what lets the aggregate distinguish wall-clock
    span from summed per-worker busy time when executors overlap.
    """

    jobs: int
    samples: int
    shape: Tuple[int, int]
    wall_seconds: float
    model: Optional[str] = None
    worker: int = 0
    policy: str = ""
    started_at: float = 0.0

    @property
    def ended_at(self) -> float:
        return self.started_at + self.wall_seconds

    @property
    def samples_per_sec(self) -> float:
        return self.samples / self.wall_seconds if self.wall_seconds > 0 else 0.0


@dataclass
class SchedulerStats:
    """Aggregate view over a scheduler's batch records.

    ``wall_seconds`` is the *span-union* wall clock — first batch start to
    last batch end — so ``samples_per_sec`` reports true throughput even
    when ``engine_workers > 1`` executors overlap.  ``busy_seconds`` is
    the summed per-batch execution time across all workers (the old
    ``wall_seconds`` semantics); ``busy_seconds / wall_seconds`` is the
    pool's effective parallelism.  Records without execution timestamps
    (legacy or hand-built) fall back to ``wall = busy``, which is exact
    for a single worker.
    """

    batches: int
    jobs: int
    samples: int
    max_batch_size: int
    mean_batch_size: float
    wall_seconds: float
    busy_seconds: float = 0.0

    @property
    def samples_per_sec(self) -> float:
        return self.samples / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def parallelism(self) -> float:
        """Effective executor overlap: summed busy time over span wall."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.busy_seconds / self.wall_seconds

    @classmethod
    def from_records(cls, records: Sequence[BatchRecord]) -> "SchedulerStats":
        if not records:
            return cls(0, 0, 0, 0, 0.0, 0.0, 0.0)
        sizes = [r.samples for r in records]
        busy = sum(r.wall_seconds for r in records)
        if all(r.started_at > 0 for r in records):
            # Span union (first start -> last end): parallel workers'
            # overlapping batches no longer double-count wall time.
            wall = max(r.ended_at for r in records) - min(
                r.started_at for r in records
            )
        else:
            wall = busy
        return cls(
            batches=len(records),
            jobs=sum(r.jobs for r in records),
            samples=sum(sizes),
            max_batch_size=max(sizes),
            mean_batch_size=sum(sizes) / len(sizes),
            wall_seconds=wall,
            busy_seconds=busy,
        )

    def as_dict(self) -> Dict:
        return {
            "batches": self.batches,
            "jobs": self.jobs,
            "samples": self.samples,
            "max_batch_size": self.max_batch_size,
            "mean_batch_size": round(self.mean_batch_size, 2),
            "wall_seconds": round(self.wall_seconds, 4),
            "busy_seconds": round(self.busy_seconds, 4),
            "samples_per_sec": round(self.samples_per_sec, 2),
            "parallelism": round(self.parallelism, 2),
        }


@dataclass
class EngineStats:
    """One serving engine's aggregate: scheduling plus admission counters.

    ``submitted``/``rejected``/``expired`` are the admission layer's
    ledger (accepted jobs, backpressure fast-fails, deadline expiries);
    ``queued`` is the instantaneous queue depth at snapshot time.  The
    snapshot is taken under the engine's queue lock and the batch records
    under the records lock, so the numbers are consistent even while
    multiple executor workers are running.
    """

    scheduler: SchedulerStats
    policy: str
    engine_workers: int
    queue_limit: Optional[int]
    queued: int
    submitted: int
    rejected: int
    expired: int
    models: int
    executor: str = "thread"

    def as_dict(self) -> Dict:
        return {
            "scheduler": self.scheduler.as_dict(),
            "policy": self.policy,
            "executor": self.executor,
            "engine_workers": self.engine_workers,
            "queue_limit": self.queue_limit,
            "queued": self.queued,
            "submitted": self.submitted,
            "rejected": self.rejected,
            "expired": self.expired,
            "models": self.models,
        }


@dataclass
class LegalizeStageRecord:
    """One batch legalize->store stage executed by the service."""

    topologies: int
    legal: int
    wall_seconds: float
    workers: int
    store_added: int = 0
    store_deduplicated: int = 0

    @property
    def patterns_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.topologies / self.wall_seconds

    def as_dict(self) -> Dict:
        return {
            "topologies": self.topologies,
            "legal": self.legal,
            "wall_seconds": round(self.wall_seconds, 4),
            "workers": self.workers,
            "patterns_per_sec": round(self.patterns_per_sec, 2),
            "store_added": self.store_added,
            "store_deduplicated": self.store_deduplicated,
        }


@dataclass
class RequestStats:
    """Per-request service metrics (queue wait, batching, throughput).

    Everything but ``request_id`` defaults to zero so a request that never
    executed (cancelled while queued, expired, rejected at shutdown) still
    carries a well-formed record.
    """

    request_id: int
    wall_seconds: float = 0.0
    queue_wait_seconds: float = 0.0
    sample_jobs: int = 0
    samples: int = 0
    degraded_jobs: int = 0
    batch_sizes: List[int] = field(default_factory=list)
    produced: int = 0
    dropped: int = 0
    store_added: int = 0
    store_deduplicated: int = 0
    legalize_calls: int = 0
    legalize_seconds: float = 0.0

    @property
    def mean_batch_size(self) -> float:
        """Mean size of the batches this request's sampling rode in."""
        if not self.batch_sizes:
            return 0.0
        return sum(self.batch_sizes) / len(self.batch_sizes)

    @property
    def samples_per_sec(self) -> float:
        return self.samples / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def as_dict(self) -> Dict:
        return {
            "request_id": self.request_id,
            "wall_seconds": round(self.wall_seconds, 4),
            "queue_wait_seconds": round(self.queue_wait_seconds, 4),
            "sample_jobs": self.sample_jobs,
            "samples": self.samples,
            "degraded_jobs": self.degraded_jobs,
            "mean_batch_size": round(self.mean_batch_size, 2),
            "samples_per_sec": round(self.samples_per_sec, 2),
            "produced": self.produced,
            "dropped": self.dropped,
            "store_added": self.store_added,
            "store_deduplicated": self.store_deduplicated,
            "legalize_calls": self.legalize_calls,
            "legalize_seconds": round(self.legalize_seconds, 4),
        }

    def summary(self) -> str:
        return (
            f"request {self.request_id}: produced {self.produced}, "
            f"dropped {self.dropped}; {self.samples} sample(s) in "
            f"{self.sample_jobs} job(s)"
            + (
                f" ({self.degraded_jobs} degraded)"
                if self.degraded_jobs
                else ""
            )
            + f", mean batch {self.mean_batch_size:.1f}, "
            f"queue wait {self.queue_wait_seconds * 1000:.0f} ms, "
            f"legalize {self.legalize_seconds * 1000:.0f} ms in "
            f"{self.legalize_calls} call(s), "
            f"{self.wall_seconds:.2f}s wall "
            f"({self.samples_per_sec:.1f} samples/s)"
        )
