"""Batched pattern-generation service: the multi-request serving subsystem.

Layers (front to back):

- :class:`PatternService` — the service front-end: many concurrent
  natural-language requests, each running the full agent pipeline, with
  per-request stats (queue wait, batch sizes, samples/sec).
- :class:`ServeEngine` — the execution engine: a bounded admission queue
  (``queue_limit`` backpressure, per-job deadlines), pluggable
  :class:`BatchPolicy` batching (``greedy`` | ``shape_bucketed`` |
  ``fair_share``), an ``engine_workers``-sized executor pool draining
  batches in parallel, and multi-model routing via :meth:`ServeEngine.bind`.
- :class:`ExecutorBackend` — the engine's pluggable execution tier:
  :class:`ThreadExecutor` (in-process, default) or
  :class:`ProcessExecutor` (spawned worker processes loading fitted
  models from the registry's disk tier, batches returned through the
  :class:`ShmArena` shared-memory transport, supervised with heartbeats,
  crash detection and bounded respawn — a lost worker fails its in-flight
  jobs with the stable ``worker_crashed`` code after one retry).
- :class:`MicroBatchScheduler` / :class:`BatchedSamplingModel` — the
  classic single-model facade over a private engine: compatible sampling
  work from different requests coalesces into single batched denoise
  trajectories (``ConditionalDiffusionModel.sample_batch``).
- :class:`ModelRegistry` / :class:`ModelKey` — fitted models cached by
  training recipe (``ModelKey`` derives from
  :class:`repro.api.config.TrainConfig`) so repeated requests never
  retrain; an optional disk tier extends the cache across processes.
- :class:`LibraryStore` — content-hash-indexed persistent pattern store
  with dedup and query-by-style/size/legality.
- :class:`Job` / :class:`JobTable` — the request lifecycle state machine
  (PENDING -> QUEUED -> RUNNING(stage) -> LEGALIZING -> PERSISTING ->
  terminal) every served request is tracked as, with cancellation and
  TTL-bounded retention.
- :class:`PatternHttpServer` / :class:`ServeClient` — the stdlib asyncio
  HTTP wire protocol over the job table, and its blocking client SDK.
"""

from repro.serve.batching import (
    BatchedSamplingModel,
    MicroBatchScheduler,
    SampleJob,
    model_supports_sampler_steps,
)
from repro.serve.engine import (
    AdaptivePolicy,
    BatchPolicy,
    DeadlineExpiredError,
    EngineClient,
    EngineError,
    EngineJob,
    FairSharePolicy,
    GreedyPolicy,
    QueueFullError,
    ServeEngine,
    ShapeBucketedPolicy,
    TrajectoryPlan,
    UnknownPolicyError,
    WorkerCrashedError,
    resolve_batch_policy,
)
from repro.serve.executors import (
    ExecutorBackend,
    ExecutorError,
    ProcessExecutor,
    ThreadExecutor,
    resolve_executor,
)
from repro.serve.shm import (
    ArrayRef,
    ShmArena,
    ShmError,
    leaked_segments,
    sweep_stale_segments,
)
from repro.serve.jobs import (
    CODE_SERVER_RESTART,
    JOB_STATES,
    TERMINAL_STATES,
    Job,
    JobCancelled,
    JobError,
    JobStateError,
    JobStateStore,
    JobTable,
    error_code_for,
)
from repro.serve.client import JobTimeout, ServeClient, ServeClientError
from repro.serve.http import PatternHttpServer
from repro.serve.registry import ModelKey, ModelRegistry, fit_model
from repro.serve.service import (
    PatternService,
    ServeRequest,
    ServeResponse,
    ServiceStats,
)
from repro.serve.stats import (
    BatchRecord,
    EngineStats,
    LegalizeStageRecord,
    RequestStats,
    SchedulerStats,
)
from repro.serve.store import (
    LibraryStore,
    StoreRecord,
    StoreReport,
    pattern_content_hash,
)

__all__ = [
    "AdaptivePolicy",
    "ArrayRef",
    "BatchPolicy",
    "CODE_SERVER_RESTART",
    "BatchRecord",
    "BatchedSamplingModel",
    "DeadlineExpiredError",
    "EngineClient",
    "EngineError",
    "EngineJob",
    "EngineStats",
    "ExecutorBackend",
    "ExecutorError",
    "FairSharePolicy",
    "GreedyPolicy",
    "JOB_STATES",
    "Job",
    "JobCancelled",
    "JobError",
    "JobStateError",
    "JobStateStore",
    "JobTable",
    "JobTimeout",
    "LegalizeStageRecord",
    "LibraryStore",
    "MicroBatchScheduler",
    "ModelKey",
    "ModelRegistry",
    "PatternHttpServer",
    "PatternService",
    "ProcessExecutor",
    "QueueFullError",
    "RequestStats",
    "SampleJob",
    "SchedulerStats",
    "ServeClient",
    "ServeClientError",
    "ServeEngine",
    "ServeRequest",
    "ServeResponse",
    "ServiceStats",
    "ShapeBucketedPolicy",
    "ShmArena",
    "ShmError",
    "StoreRecord",
    "StoreReport",
    "TERMINAL_STATES",
    "ThreadExecutor",
    "TrajectoryPlan",
    "UnknownPolicyError",
    "WorkerCrashedError",
    "error_code_for",
    "fit_model",
    "leaked_segments",
    "model_supports_sampler_steps",
    "pattern_content_hash",
    "resolve_batch_policy",
    "resolve_executor",
    "sweep_stale_segments",
]
