"""Batched pattern-generation service: the multi-request serving subsystem.

Layers (front to back):

- :class:`PatternService` — the service front-end: many concurrent
  natural-language requests, each running the full agent pipeline, with
  per-request stats (queue wait, batch sizes, samples/sec).
- :class:`MicroBatchScheduler` / :class:`BatchedSamplingModel` — request
  queue and micro-batching: compatible sampling work from different
  requests coalesces into single batched denoise trajectories
  (``ConditionalDiffusionModel.sample_batch``).
- :class:`ModelRegistry` / :class:`ModelKey` — fitted models cached by
  training recipe (``ModelKey`` derives from
  :class:`repro.api.config.TrainConfig`) so repeated requests never
  retrain; an optional disk tier extends the cache across processes.
- :class:`LibraryStore` — content-hash-indexed persistent pattern store
  with dedup and query-by-style/size/legality.
"""

from repro.serve.batching import (
    BatchedSamplingModel,
    MicroBatchScheduler,
    SampleJob,
)
from repro.serve.registry import ModelKey, ModelRegistry, fit_model
from repro.serve.service import (
    PatternService,
    ServeRequest,
    ServeResponse,
    ServiceStats,
)
from repro.serve.stats import (
    BatchRecord,
    LegalizeStageRecord,
    RequestStats,
    SchedulerStats,
)
from repro.serve.store import (
    LibraryStore,
    StoreRecord,
    StoreReport,
    pattern_content_hash,
)

__all__ = [
    "BatchRecord",
    "BatchedSamplingModel",
    "LegalizeStageRecord",
    "LibraryStore",
    "MicroBatchScheduler",
    "ModelKey",
    "ModelRegistry",
    "PatternService",
    "RequestStats",
    "SampleJob",
    "SchedulerStats",
    "ServeRequest",
    "ServeResponse",
    "ServiceStats",
    "StoreRecord",
    "StoreReport",
    "fit_model",
    "pattern_content_hash",
]
