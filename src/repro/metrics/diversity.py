"""Pattern-library diversity: Shannon entropy over complexities (Def. 2).

``H = -sum_ij P(cx_i, cy_j) log2 P(cx_i, cy_j)`` where ``(cx, cy)`` are the
scan-line complexities of each pattern.  Following the paper, diversity is
reported on *legal* patterns only.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Sequence, Tuple, Union

import numpy as np

from repro.squish.complexity import topology_complexity
from repro.squish.pattern import PatternLibrary, SquishPattern

TopologyLike = Union[np.ndarray, SquishPattern]


def complexity_of(item: TopologyLike) -> Tuple[int, int]:
    """Complexity of a topology array or squish pattern."""
    if isinstance(item, SquishPattern):
        return topology_complexity(item.topology)
    return topology_complexity(np.asarray(item))


def complexity_distribution(
    items: Union[PatternLibrary, Iterable[TopologyLike]]
) -> Dict[Tuple[int, int], int]:
    """Histogram of ``(cx, cy)`` over a collection of patterns."""
    return dict(Counter(complexity_of(item) for item in items))


def shannon_entropy(counts: Sequence[int]) -> float:
    """Entropy in bits of an empirical distribution given by counts."""
    arr = np.asarray(list(counts), dtype=np.float64)
    arr = arr[arr > 0]
    if arr.size == 0:
        return 0.0
    probs = arr / arr.sum()
    return float(-(probs * np.log2(probs)).sum())


def diversity(items: Union[PatternLibrary, Iterable[TopologyLike]]) -> float:
    """Definition 2: entropy of the complexity distribution, in bits."""
    histogram = complexity_distribution(items)
    return shannon_entropy(list(histogram.values()))
