"""Legality evaluation pipeline (Eq. 7).

``Legality = #legal / #generated`` *without* topology selection: every
generated topology goes through legalization exactly once (plus the agent's
optional modification retries, which the Table-1 protocol disables) and
failures count against the method — matching the paper's fair-comparison
protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.styles import MODEL_SIZE, TILE_NM
from repro.drc.rules import DesignRules, rules_for_style
from repro.legalize.legalizer import LegalizationResult, legalize
from repro.squish.pattern import PatternLibrary, SquishPattern


def physical_size_for(shape: Tuple[int, int]) -> Tuple[int, int]:
    """Physical target in nm for a topology shape.

    Scales the paper's base setting (2048 nm at 128 cells) linearly, so a
    512x512 topology legalizes into an 8192x8192 nm window.
    """
    rows, cols = shape
    return (cols * TILE_NM // MODEL_SIZE, rows * TILE_NM // MODEL_SIZE)


@dataclass
class LegalityResult:
    """Outcome of legalizing a batch of generated topologies."""

    total: int
    legal: PatternLibrary
    failure_causes: Dict[str, int] = field(default_factory=dict)
    failures: List[LegalizationResult] = field(default_factory=list)

    @property
    def legality(self) -> float:
        """Eq. 7: fraction of generated patterns that are DRC-clean."""
        if self.total == 0:
            return 0.0
        return len(self.legal) / self.total


def legalize_batch(
    topologies: Sequence[np.ndarray],
    style: str,
    rules: Optional[DesignRules] = None,
    physical_size: Optional[Tuple[int, int]] = None,
    keep_failures: bool = False,
) -> LegalityResult:
    """Legalize every topology and collect legality statistics."""
    rules = rules or rules_for_style(style)
    legal = PatternLibrary(name=f"legal-{style}")
    causes: Dict[str, int] = {}
    failures: List[LegalizationResult] = []
    total = 0
    for topology in topologies:
        total += 1
        target = physical_size or physical_size_for(topology.shape)
        result = legalize(topology, target, rules, style=style)
        if result.ok:
            legal.add(result.pattern)
        else:
            cause = _failure_cause(result)
            causes[cause] = causes.get(cause, 0) + 1
            if keep_failures:
                failures.append(result)
    return LegalityResult(
        total=total, legal=legal, failure_causes=causes, failures=failures
    )


def _failure_cause(result: LegalizationResult) -> str:
    for line in result.log:
        if line.startswith("FAIL"):
            return line.split(":")[0].replace("FAIL ", "").strip()
    return "unknown"
