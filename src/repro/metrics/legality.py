"""Legality evaluation pipeline (Eq. 7).

``Legality = #legal / #generated`` *without* topology selection: every
generated topology goes through legalization exactly once (plus the agent's
optional modification retries, which the Table-1 protocol disables) and
failures count against the method — matching the paper's fair-comparison
protocol.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.styles import MODEL_SIZE, TILE_NM
from repro.drc.rules import DesignRules, rules_for_style
from repro.legalize.legalizer import LegalizationResult, legalize
from repro.squish.pattern import PatternLibrary, SquishPattern


def physical_size_for(shape: Tuple[int, int]) -> Tuple[int, int]:
    """Physical target in nm for a topology shape.

    Scales the paper's base setting (2048 nm at 128 cells) linearly, so a
    512x512 topology legalizes into an 8192x8192 nm window.
    """
    rows, cols = shape
    return (cols * TILE_NM // MODEL_SIZE, rows * TILE_NM // MODEL_SIZE)


@dataclass
class LegalityResult:
    """Outcome of legalizing a batch of generated topologies."""

    total: int
    legal: PatternLibrary
    failure_causes: Dict[str, int] = field(default_factory=dict)
    failures: List[LegalizationResult] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def legality(self) -> float:
        """Eq. 7: fraction of generated patterns that are DRC-clean."""
        if self.total == 0:
            return 0.0
        return len(self.legal) / self.total

    @property
    def patterns_per_sec(self) -> float:
        """Batch legalization throughput (attempted patterns per second)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.total / self.wall_seconds


def default_legalize_workers() -> int:
    """Worker count used when ``legalize_many`` is not told otherwise."""
    return min(32, os.cpu_count() or 1)


def legalize_many(
    topologies: Sequence[np.ndarray],
    style: str,
    rules: Optional[DesignRules] = None,
    physical_size: Optional[Tuple[int, int]] = None,
    keep_failures: bool = False,
    max_workers: Optional[int] = None,
    engine: str = "vectorized",
    fault_isolation: bool = True,
) -> LegalityResult:
    """Legalize a batch of topologies on a worker pool.

    The batch counterpart of :func:`repro.legalize.legalizer.legalize`: items
    fan out over a thread pool (the vectorized engine spends its time in
    NumPy, which releases the GIL), results come back in input order, and a
    topology that *raises* — rather than merely failing legalization — is
    fault-isolated into a synthetic failed :class:`LegalizationResult` whose
    cause is the exception type, so one malformed item cannot sink the batch.
    Pass ``fault_isolation=False`` to let such exceptions propagate instead
    (a malformed topology is then a programming error, not a statistic).
    """
    rules = rules or rules_for_style(style)
    items = list(topologies)
    workers = max_workers if max_workers is not None else default_legalize_workers()
    workers = max(1, min(int(workers), len(items) or 1))

    def _one(topology: np.ndarray) -> LegalizationResult:
        try:
            target = physical_size or physical_size_for(topology.shape)
            return legalize(topology, target, rules, style=style, engine=engine)
        except Exception as exc:
            if not fault_isolation:
                raise
            failed = LegalizationResult(ok=False)
            failed.log.append(f"FAIL {type(exc).__name__}: {exc}")
            return failed

    started = time.perf_counter()
    if workers == 1:
        results = [_one(topology) for topology in items]
    else:
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-legalize"
        ) as pool:
            results = list(pool.map(_one, items))
    wall = time.perf_counter() - started

    legal = PatternLibrary(name=f"legal-{style}")
    causes: Dict[str, int] = {}
    failures: List[LegalizationResult] = []
    for result in results:
        if result.ok:
            legal.add(result.pattern)
        else:
            cause = _failure_cause(result)
            causes[cause] = causes.get(cause, 0) + 1
            if keep_failures:
                failures.append(result)
    return LegalityResult(
        total=len(items),
        legal=legal,
        failure_causes=causes,
        failures=failures,
        wall_seconds=wall,
    )


def legalize_sequential(
    topologies: Sequence[np.ndarray],
    style: str,
    rules: Optional[DesignRules] = None,
    physical_size: Optional[Tuple[int, int]] = None,
    keep_failures: bool = False,
) -> LegalityResult:
    """Deterministic single-thread batch legalization (Table-1 protocol).

    The blessed spelling of ``legalize_many(..., max_workers=1,
    fault_isolation=False)``: items run in order on the calling thread and
    a malformed topology raises (a programming error, not a statistic).
    """
    return legalize_many(
        topologies,
        style,
        rules=rules,
        physical_size=physical_size,
        keep_failures=keep_failures,
        max_workers=1,
        fault_isolation=False,
    )


def legalize_batch(
    topologies: Sequence[np.ndarray],
    style: str,
    rules: Optional[DesignRules] = None,
    physical_size: Optional[Tuple[int, int]] = None,
    keep_failures: bool = False,
) -> LegalityResult:
    """Deprecated alias of :func:`legalize_sequential`.

    .. deprecated::
        ``legalize_batch`` and ``legalize_many`` were overlapping batch
        APIs sharing one implementation.  :func:`legalize_sequential`
        keeps this alias's exact contract (deterministic single-thread
        execution, malformed topologies raise); :func:`legalize_many` is
        the parallel, fault-isolated path with a *different* error
        contract.
    """
    warnings.warn(
        "legalize_batch is deprecated; use legalize_sequential (same "
        "contract) or legalize_many (parallel, fault-isolated)",
        DeprecationWarning,
        stacklevel=2,
    )
    return legalize_sequential(
        topologies,
        style,
        rules=rules,
        physical_size=physical_size,
        keep_failures=keep_failures,
    )


def _failure_cause(result: LegalizationResult) -> str:
    for line in result.log:
        if line.startswith("FAIL"):
            return line.split(":")[0].replace("FAIL ", "").strip()
    return "unknown"
