"""Aggregate statistics over pattern libraries (Table-1 style rows)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.metrics.diversity import complexity_distribution, diversity
from repro.squish.pattern import PatternLibrary


@dataclass
class LibraryStats:
    """Summary row for one (method, style, size) cell of Table 1."""

    count: int
    diversity: float
    legality: Optional[float]
    mean_fill: float
    mean_complexity: tuple

    def as_dict(self) -> Dict:
        return {
            "count": self.count,
            "diversity": round(self.diversity, 3),
            "legality": None if self.legality is None else round(self.legality, 4),
            "mean_fill": round(self.mean_fill, 4),
            "mean_complexity": self.mean_complexity,
        }


def library_stats(
    library: PatternLibrary, legality: Optional[float] = None
) -> LibraryStats:
    """Compute the summary row for a library of legal patterns."""
    if len(library) == 0:
        return LibraryStats(0, 0.0, legality, 0.0, (0.0, 0.0))
    hist = complexity_distribution(library)
    total = sum(hist.values())
    mean_cx = sum(cx * n for (cx, _), n in hist.items()) / total
    mean_cy = sum(cy * n for (_, cy), n in hist.items()) / total
    fills = [p.fill_ratio for p in library]
    return LibraryStats(
        count=len(library),
        diversity=diversity(library),
        legality=legality,
        mean_fill=float(np.mean(fills)),
        mean_complexity=(round(mean_cx, 2), round(mean_cy, 2)),
    )
