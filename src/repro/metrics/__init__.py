"""Evaluation metrics: Legality (Eq. 7) and Diversity (Eq. 8)."""

from repro.metrics.diversity import (
    complexity_distribution,
    complexity_of,
    diversity,
    shannon_entropy,
)
from repro.metrics.legality import (
    LegalityResult,
    legalize_batch,
    physical_size_for,
)
from repro.metrics.stats import LibraryStats, library_stats

__all__ = [
    "LegalityResult",
    "LibraryStats",
    "complexity_distribution",
    "complexity_of",
    "diversity",
    "legalize_batch",
    "library_stats",
    "physical_size_for",
    "shannon_entropy",
]
