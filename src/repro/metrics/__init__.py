"""Evaluation metrics: Legality (Eq. 7) and Diversity (Eq. 8)."""

from repro.metrics.diversity import (
    complexity_distribution,
    complexity_of,
    diversity,
    shannon_entropy,
)
from repro.metrics.legality import (
    LegalityResult,
    default_legalize_workers,
    legalize_batch,
    legalize_many,
    legalize_sequential,
    physical_size_for,
)
from repro.metrics.stats import LibraryStats, library_stats

__all__ = [
    "LegalityResult",
    "LibraryStats",
    "complexity_distribution",
    "complexity_of",
    "default_legalize_workers",
    "diversity",
    "legalize_batch",
    "legalize_many",
    "legalize_sequential",
    "library_stats",
    "physical_size_for",
    "shannon_entropy",
]
