"""Adam optimiser over flat parameter dictionaries."""

from __future__ import annotations

from typing import Dict

import numpy as np


class Adam:
    """Adam (Kingma & Ba) with optional gradient clipping.

    Parameters live in a ``name -> ndarray`` dict owned by the model; the
    optimiser updates them in place.
    """

    def __init__(
        self,
        params: Dict[str, np.ndarray],
        lr: float = 2e-4,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        grad_clip: float = 1.0,
    ):
        self.params = params
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.grad_clip = grad_clip
        self._m = {k: np.zeros_like(v) for k, v in params.items()}
        self._v = {k: np.zeros_like(v) for k, v in params.items()}
        self._t = 0

    def step(self, grads: Dict[str, np.ndarray]) -> None:
        """Apply one update from ``grads`` (same keys as params)."""
        self._t += 1
        if self.grad_clip is not None:
            norm = float(
                np.sqrt(sum(float((g ** 2).sum()) for g in grads.values()))
            )
            if norm > self.grad_clip:
                scale = self.grad_clip / (norm + 1e-12)
                grads = {k: g * scale for k, g in grads.items()}
        for key, grad in grads.items():
            m = self._m[key]
            v = self._v[key]
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad * grad
            m_hat = m / (1 - self.beta1 ** self._t)
            v_hat = v / (1 - self.beta2 ** self._t)
            self.params[key] -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
