"""Functional building blocks of the pure-numpy neural network.

Implements exactly what :class:`repro.diffusion.denoisers.unet_lite.UNetLite`
needs: stride-1 same-padded convolution (via im2col), 2x average pooling,
2x nearest upsampling, ReLU, sigmoid and binary cross-entropy — each with a
hand-written backward pass.  Tensors are ``(B, C, H, W)`` float64.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np


def im2col(x: np.ndarray, kh: int, kw: int) -> np.ndarray:
    """Unfold same-padded ``(B, C, H, W)`` into ``(B, H*W, C*kh*kw)``."""
    b, c, h, w = x.shape
    ph, pw = kh // 2, kw // 2
    padded = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    windows = np.lib.stride_tricks.sliding_window_view(
        padded, (kh, kw), axis=(2, 3)
    )  # (B, C, H, W, kh, kw)
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(b, h * w, c * kh * kw)
    return np.ascontiguousarray(cols)


def col2im(cols: np.ndarray, x_shape: Tuple[int, ...], kh: int, kw: int) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back to image layout."""
    b, c, h, w = x_shape
    ph, pw = kh // 2, kw // 2
    padded = np.zeros((b, c, h + 2 * ph, w + 2 * pw))
    cols6 = cols.reshape(b, h, w, c, kh, kw)
    for dr in range(kh):
        for dc in range(kw):
            padded[:, :, dr : dr + h, dc : dc + w] += cols6[:, :, :, :, dr, dc].transpose(
                0, 3, 1, 2
            )
    return padded[:, :, ph : ph + h, pw : pw + w]


def conv2d_forward(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray
) -> Tuple[np.ndarray, Dict]:
    """Same-padded stride-1 convolution.

    ``weight`` has shape ``(C_out, C_in, kh, kw)``, ``bias`` ``(C_out,)``.
    """
    c_out, c_in, kh, kw = weight.shape
    b, _, h, w = x.shape
    cols = im2col(x, kh, kw)  # (B, HW, C_in*kh*kw)
    wmat = weight.reshape(c_out, -1)  # (C_out, C_in*kh*kw)
    out = cols @ wmat.T + bias  # (B, HW, C_out)
    out = out.transpose(0, 2, 1).reshape(b, c_out, h, w)
    cache = {"cols": cols, "weight": weight, "x_shape": x.shape}
    return out, cache


def conv2d_backward(
    dout: np.ndarray, cache: Dict
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradients of conv2d w.r.t. input, weight and bias."""
    cols = cache["cols"]
    weight = cache["weight"]
    c_out, c_in, kh, kw = weight.shape
    b, _, h, w = dout.shape
    dmat = dout.reshape(b, c_out, h * w).transpose(0, 2, 1)  # (B, HW, C_out)
    dweight = np.tensordot(dmat, cols, axes=([0, 1], [0, 1])).reshape(weight.shape)
    dbias = dmat.sum(axis=(0, 1))
    dcols = dmat @ weight.reshape(c_out, -1)
    dx = col2im(dcols, cache["x_shape"], kh, kw)
    return dx, dweight, dbias


def avg_pool2(x: np.ndarray) -> np.ndarray:
    """2x2 average pooling (even H and W required)."""
    b, c, h, w = x.shape
    if h % 2 or w % 2:
        raise ValueError("avg_pool2 requires even spatial dims")
    return x.reshape(b, c, h // 2, 2, w // 2, 2).mean(axis=(3, 5))


def avg_pool2_backward(dout: np.ndarray) -> np.ndarray:
    """Backward of 2x2 average pooling."""
    return upsample2(dout) / 4.0


def upsample2(x: np.ndarray) -> np.ndarray:
    """2x nearest-neighbour upsampling."""
    return x.repeat(2, axis=2).repeat(2, axis=3)


def upsample2_backward(dout: np.ndarray) -> np.ndarray:
    """Backward of nearest upsampling: sum each 2x2 block."""
    b, c, h, w = dout.shape
    return dout.reshape(b, c, h // 2, 2, w // 2, 2).sum(axis=(3, 5))


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def relu_backward(dout: np.ndarray, x: np.ndarray) -> np.ndarray:
    return dout * (x > 0.0)


def sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def bce_with_logits(logits: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean binary cross-entropy from logits; returns ``(loss, dlogits)``.

    Uses the numerically stable ``max(z,0) - z*y + log(1+exp(-|z|))`` form.
    """
    t = targets.astype(np.float64)
    loss = np.maximum(logits, 0.0) - logits * t + np.log1p(np.exp(-np.abs(logits)))
    grad = (sigmoid(logits) - t) / logits.size
    return float(loss.mean()), grad
