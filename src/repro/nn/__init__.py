"""Pure-numpy neural-network substrate (conv, pooling, Adam, backprop)."""

from repro.nn.functional import (
    avg_pool2,
    avg_pool2_backward,
    bce_with_logits,
    col2im,
    conv2d_backward,
    conv2d_forward,
    im2col,
    relu,
    relu_backward,
    sigmoid,
    upsample2,
    upsample2_backward,
)
from repro.nn.optim import Adam

__all__ = [
    "Adam",
    "avg_pool2",
    "avg_pool2_backward",
    "bce_with_logits",
    "col2im",
    "conv2d_backward",
    "conv2d_forward",
    "im2col",
    "relu",
    "relu_backward",
    "sigmoid",
    "upsample2",
    "upsample2_backward",
]
