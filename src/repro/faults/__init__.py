"""repro.faults — deterministic fault injection for the serve stack.

See :mod:`repro.faults.plan` for the model.  The usual surface:

- components call :func:`fire` at named seams (free when disabled);
- tests wrap work in ``with injected(FaultPlan([...], seed=7)):``;
- `repro serve --faults SPEC` / ``REPRO_FAULTS=SPEC`` boot a faulty
  server for chaos smoke runs.
"""

from repro.faults.plan import (
    FAULT_SITES,
    KILL_EXIT_CODE,
    NULL_FAULTS,
    FaultError,
    FaultInjected,
    FaultPlan,
    FaultPoint,
    NullFaultPlan,
    SimulatedCrash,
    active_plan,
    fire,
    injected,
    install,
    parse_fault_spec,
    reset,
    validate_point,
)

__all__ = [
    "FAULT_SITES",
    "KILL_EXIT_CODE",
    "NULL_FAULTS",
    "FaultError",
    "FaultInjected",
    "FaultPlan",
    "FaultPoint",
    "NullFaultPlan",
    "SimulatedCrash",
    "active_plan",
    "fire",
    "injected",
    "install",
    "parse_fault_spec",
    "reset",
    "validate_point",
]
