"""Deterministic, seed-driven fault injection for the serve stack.

Every component that can fail in production carries a *named fault site* —
a single ``faults.fire("site.name")`` call placed exactly where the real
failure would surface (the ``open()`` that reads a registry entry, the
``SharedMemory`` attach, the worker's batch execute, the store's journal
fsync...).  In normal operation the installed plan is :data:`NULL_FAULTS`
and ``fire`` is a dictionary-free no-op; under test or chaos-smoke a
:class:`FaultPlan` is installed and selected sites raise, sleep, or kill
the process on a deterministic schedule.

Design rules:

- **Deterministic by default.**  Rules trigger on exact call counts
  (``nth``) so a seeded plan produces the same failure sequence every
  run.  Probabilistic rules exist for soak-style sweeps but the chaos
  suite pins everything with ``nth``/``times``.
- **The site is the contract.**  Site names are registered in
  :data:`FAULT_SITES`; plans naming unknown sites fail validation, so a
  refactor that drops a seam breaks loudly instead of silently
  un-testing a failure path.
- **Process-local with explicit hand-off.**  Worker processes install
  their own plan from a spec dict shipped in the spawn args, with call
  counters *primed* from the parent's dispatch tally so nth-based rules
  keep firing at the same global call index across worker respawns.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from random import Random
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "FAULT_SITES",
    "KILL_EXIT_CODE",
    "FaultError",
    "FaultInjected",
    "FaultPoint",
    "FaultPlan",
    "NullFaultPlan",
    "NULL_FAULTS",
    "SimulatedCrash",
    "active_plan",
    "fire",
    "injected",
    "install",
    "parse_fault_spec",
    "reset",
    "validate_point",
]

#: Exit code a ``kill``-mode firing uses (distinct from crash-test 139/…).
KILL_EXIT_CODE = 17

#: Every named injection site in the stack.  Adding a seam means adding
#: its name here *and* placing the ``fire`` call; plans referencing
#: unknown sites are rejected at validation time.
FAULT_SITES: Tuple[str, ...] = (
    "registry.disk_read",       # ModelRegistry._load_from_disk, per attempt
    "registry.disk_write",      # ModelRegistry._save_to_disk
    "shm.allocate",             # ShmArena.allocate
    "shm.attach",               # attach_ref (parent or worker side)
    "shm.write",                # write_into (worker result publish)
    "worker.execute",           # _worker_main, before the batch executes
    "engine.execute",           # thread-tier local plan execution
    "engine.dispatch",          # parent-side dispatch to a process worker
    "http.accept",              # per accepted HTTP connection
    "http.respond",             # before a response is written
    "store.object_write",       # LibraryStore pattern .npz write
    "store.journal_append",     # after the journal line is written, pre-fsync
    "store.journal_sync",       # after the journal fsync, pre index mutate
    "store.flush_tmp",          # after the tmp index is written + fsynced
    "store.flush_publish",      # after os.replace published the new index
    "store.flush_compact",      # after the journal was compacted
)

_MODES = ("error", "latency", "kill")


class FaultError(RuntimeError):
    """Base class of every injected failure.  Carries a stable code."""

    code = "fault_injected"


class FaultInjected(FaultError):
    """The default injected error: a generic runtime failure at a seam."""


class SimulatedCrash(FaultError):
    """An injected *crash*: the caller must treat the process as dead.

    Used by the store/job kill-point tests: raising this at a kill site
    and then reopening a fresh instance reproduces the exact on-disk
    state a real ``SIGKILL`` at that point would leave behind, without
    sacrificing a subprocess per data point.
    """

    code = "simulated_crash"


@dataclass(frozen=True)
class FaultPoint:
    """One injection rule: *where*, *how*, and *when* to fail.

    ``site``
        A name from :data:`FAULT_SITES`, or a prefix wildcard such as
        ``"store.*"`` matching every site under that component.
    ``mode``
        ``"error"`` raises (``crash=False`` → :class:`FaultInjected`,
        ``crash=True`` → :class:`SimulatedCrash`); ``"latency"`` sleeps
        ``delay`` seconds then continues; ``"kill"`` hard-exits the
        process with :data:`KILL_EXIT_CODE` (process-worker chaos only).
    ``nth``
        1-based call index at that site on which the rule becomes
        eligible; ``None`` means every call is eligible.
    ``times``
        Maximum number of firings (``None`` = unlimited).  An ``nth``
        rule implicitly fires at most once per counter stream.
    ``probability``
        Chance an eligible call actually fires, drawn from the plan's
        seeded RNG — deterministic for a fixed seed and call order.
    """

    site: str
    mode: str = "error"
    nth: Optional[int] = None
    times: Optional[int] = None
    probability: float = 1.0
    delay: float = 0.0
    crash: bool = False
    message: str = ""

    def __post_init__(self):
        validate_point(self.as_dict())

    def as_dict(self) -> Dict[str, object]:
        return {
            "site": self.site,
            "mode": self.mode,
            "nth": self.nth,
            "times": self.times,
            "probability": self.probability,
            "delay": self.delay,
            "crash": self.crash,
            "message": self.message,
        }

    def matches(self, site: str) -> bool:
        if self.site.endswith(".*"):
            return site.startswith(self.site[:-1])
        return site == self.site


def validate_point(data: Mapping[str, object]) -> Dict[str, object]:
    """Validate one fault-point mapping; returns a normalized dict.

    Shared by :class:`FaultPoint` itself and ``FaultConfig`` in
    :mod:`repro.api.config` (which stores points as plain dicts so the
    config layer stays JSON-round-trippable without importing runtime
    classes into its schema).
    """
    if not isinstance(data, Mapping):
        raise ValueError(f"fault point must be a mapping, got {type(data).__name__}")
    known = {
        "site", "mode", "nth", "times", "probability", "delay", "crash",
        "message",
    }
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown fault point fields: {sorted(unknown)}")
    site = data.get("site")
    if not isinstance(site, str) or not site:
        raise ValueError("fault point requires a non-empty 'site'")
    if site.endswith(".*"):
        prefix = site[:-1]
        if not any(name.startswith(prefix) for name in FAULT_SITES):
            raise ValueError(f"fault site pattern {site!r} matches no known site")
    elif site not in FAULT_SITES:
        raise ValueError(
            f"unknown fault site {site!r}; known sites: {', '.join(FAULT_SITES)}"
        )
    mode = data.get("mode", "error")
    if mode not in _MODES:
        raise ValueError(f"fault mode must be one of {_MODES}, got {mode!r}")
    nth = data.get("nth")
    if nth is not None and (not isinstance(nth, int) or nth < 1):
        raise ValueError(f"fault 'nth' must be a positive int, got {nth!r}")
    times = data.get("times")
    if times is not None and (not isinstance(times, int) or times < 1):
        raise ValueError(f"fault 'times' must be a positive int, got {times!r}")
    probability = data.get("probability", 1.0)
    if not isinstance(probability, (int, float)) or not 0.0 <= probability <= 1.0:
        raise ValueError(f"fault 'probability' must be in [0, 1], got {probability!r}")
    delay = data.get("delay", 0.0)
    if not isinstance(delay, (int, float)) or delay < 0:
        raise ValueError(f"fault 'delay' must be >= 0, got {delay!r}")
    return {
        "site": site,
        "mode": mode,
        "nth": nth,
        "times": times,
        "probability": float(probability),
        "delay": float(delay),
        "crash": bool(data.get("crash", False)),
        "message": str(data.get("message", "")),
    }


class NullFaultPlan:
    """The disabled plan: ``fire`` does nothing, costs one attribute load."""

    enabled = False
    points: Tuple[FaultPoint, ...] = ()

    def fire(self, site: str) -> None:  # pragma: no cover - trivial
        return None

    def counts(self) -> Dict[str, int]:
        return {}

    def injected_total(self) -> int:
        return 0


#: The module-wide disabled plan (shared; stateless).
NULL_FAULTS = NullFaultPlan()


class FaultPlan:
    """An installed set of :class:`FaultPoint` rules with seeded state.

    Thread-safe: per-site call counters and per-rule firing tallies are
    guarded by one lock; the act itself (raise / sleep / exit) happens
    outside it.
    """

    enabled = True

    def __init__(
        self,
        points: Iterable[FaultPoint] = (),
        seed: int = 0,
        metrics=None,
    ):
        self.points: Tuple[FaultPoint, ...] = tuple(points)
        self.seed = int(seed)
        self._rng = Random(self.seed)
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {}
        self._fired: List[int] = [0] * len(self.points)
        if metrics is None:
            from repro.obs import NULL_METRICS

            metrics = NULL_METRICS
        self._m_injected = metrics.counter(
            "repro_faults_injected_total",
            "Faults injected by the active FaultPlan, by site.",
            labels=("site",),
        )

    # -- construction ---------------------------------------------------

    @classmethod
    def from_config(cls, cfg, metrics=None) -> "FaultPlan":
        """Build from a ``FaultConfig`` (see :mod:`repro.api.config`)."""
        points = tuple(FaultPoint(**validate_point(p)) for p in cfg.points)
        return cls(points=points, seed=cfg.seed, metrics=metrics)

    @classmethod
    def from_spec(cls, spec: Mapping[str, object], metrics=None) -> "FaultPlan":
        """Build from the plain-dict form produced by :meth:`as_spec`."""
        points = tuple(
            FaultPoint(**validate_point(p)) for p in spec.get("points", ())
        )
        plan = cls(points=points, seed=int(spec.get("seed", 0)), metrics=metrics)
        counts = spec.get("counts")
        if counts:
            plan.prime(counts)  # type: ignore[arg-type]
        return plan

    def as_spec(self) -> Dict[str, object]:
        """JSON-safe dict form (ships to worker processes in spawn args)."""
        return {
            "seed": self.seed,
            "points": [p.as_dict() for p in self.points],
        }

    def prime(self, counts: Mapping[str, int]) -> None:
        """Pre-set per-site call counters (worker respawn continuity).

        A respawned worker starts with fresh in-process counters; the
        parent primes them with its dispatch tally so an ``nth`` rule
        keyed to the *global* call index does not re-fire on every new
        worker life (which would turn "crash once" into a crash loop).
        """
        with self._lock:
            for site, count in counts.items():
                self._counts[site] = int(count)

    # -- the hot path ---------------------------------------------------

    def fire(self, site: str) -> None:
        """Evaluate rules for ``site``; raise/sleep/exit if one triggers."""
        with self._lock:
            count = self._counts.get(site, 0) + 1
            self._counts[site] = count
            triggered: Optional[FaultPoint] = None
            for index, point in enumerate(self.points):
                if not point.matches(site):
                    continue
                if point.nth is not None and count != point.nth:
                    continue
                if point.times is not None and self._fired[index] >= point.times:
                    continue
                if point.probability < 1.0 and self._rng.random() >= point.probability:
                    continue
                self._fired[index] += 1
                triggered = point
                break
        if triggered is None:
            return
        self._m_injected.inc(site=site)
        self._act(triggered, site)

    @staticmethod
    def _act(point: FaultPoint, site: str) -> None:
        if point.mode == "latency":
            time.sleep(point.delay)
            return
        if point.mode == "kill":
            # A hard exit, bypassing finally/atexit — as close to SIGKILL
            # as an in-process injection gets.  Only sensible in worker
            # processes whose parent supervises crashes.
            os._exit(KILL_EXIT_CODE)
        message = point.message or f"injected fault at {site}"
        if point.crash:
            raise SimulatedCrash(message)
        raise FaultInjected(message)

    # -- introspection --------------------------------------------------

    def counts(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def injected_total(self) -> int:
        with self._lock:
            return sum(self._fired)


# -- the active plan ----------------------------------------------------
#
# One process-wide slot, so seams call ``faults.fire(site)`` without any
# handle threading.  Tests use :func:`injected` to scope installation.

_active_lock = threading.Lock()
_active = NULL_FAULTS


def install(plan) -> object:
    """Install ``plan`` as the process-wide active plan; returns the old."""
    global _active
    with _active_lock:
        previous, _active = _active, plan
    return previous


def reset() -> None:
    """Restore the disabled :data:`NULL_FAULTS` plan."""
    install(NULL_FAULTS)


def active_plan():
    return _active


def fire(site: str) -> None:
    """Fire the named site against the active plan (no-op when disabled)."""
    _active.fire(site)


class injected:
    """Context manager installing a plan for a scope (tests)."""

    def __init__(self, plan):
        self.plan = plan
        self._previous = None

    def __enter__(self):
        self._previous = install(self.plan)
        return self.plan

    def __exit__(self, *exc_info):
        install(self._previous)
        return False


# -- spec parsing (REPRO_FAULTS / --faults) ------------------------------


def parse_fault_spec(text: str) -> Dict[str, object]:
    """Parse a fault spec string into ``{"seed": ..., "points": [...]}``.

    Two forms:

    - JSON: ``{"seed": 7, "points": [{"site": "worker.execute", ...}]}``
    - Compact (shell-friendly): ``|``-separated clauses, each either
      ``seed=N`` or ``site:mode[:key=value...]``, e.g.::

          seed=7|worker.execute:kill:nth=2|registry.disk_read:error:nth=1

    Returns a validated plain dict suitable for ``FaultConfig.from_dict``
    or :meth:`FaultPlan.from_spec`.
    """
    text = text.strip()
    if not text:
        raise ValueError("empty fault spec")
    if text.startswith("{"):
        spec = json.loads(text)
        if not isinstance(spec, dict):
            raise ValueError("JSON fault spec must be an object")
        points = [validate_point(p) for p in spec.get("points", ())]
        seed = spec.get("seed", 0)
        if not isinstance(seed, int):
            raise ValueError(f"fault spec 'seed' must be an int, got {seed!r}")
        return {"seed": seed, "points": points}
    seed = 0
    points: List[Dict[str, object]] = []
    for clause in text.split("|"):
        clause = clause.strip()
        if not clause:
            continue
        if clause.startswith("seed="):
            seed = int(clause[len("seed="):])
            continue
        parts = clause.split(":")
        point: Dict[str, object] = {"site": parts[0]}
        if len(parts) > 1 and parts[1]:
            point["mode"] = parts[1]
        for extra in parts[2:]:
            if not extra:
                continue
            if "=" not in extra:
                raise ValueError(
                    f"bad fault clause field {extra!r} (expected key=value)"
                )
            key, value = extra.split("=", 1)
            if key in ("nth", "times"):
                point[key] = int(value)
            elif key in ("probability", "delay"):
                point[key] = float(value)
            elif key == "crash":
                point[key] = value.lower() in ("1", "true", "yes")
            elif key == "message":
                point[key] = value
            else:
                raise ValueError(f"unknown fault clause key {key!r}")
        points.append(validate_point(point))
    return {"seed": seed, "points": points}
