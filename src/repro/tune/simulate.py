"""Deterministic discrete-event simulator of the serving engine.

The offline tuner needs *reproducible* trials: the acceptance contract of
``repro tune`` is "same workload spec + same seed → same winning config",
which wall-clock runs against a live engine cannot promise (thread
scheduling, machine load).  So candidate configs are scored against a
virtual-clock model of the engine instead — the same four layers
(admission with ``queue_limit`` rejection, gather window, batch policy,
worker pool), the same trajectory grouping by ``(shape, sampler_steps)``,
and for the ``adaptive`` policy the *real*
:class:`~repro.tune.controller.AdaptiveController` ticking on synthesized
:class:`~repro.tune.controller.EngineLoadSnapshot` views.

Execution cost comes from :class:`CostModel`: a trajectory costs a fixed
dispatch overhead plus, per denoiser evaluation, a batch-size-independent
base (the cost batching amortizes) and a per-sample increment.  The
defaults are shaped like the repo's neighborhood denoiser (full = 128
evals, bucketed ~ 16); absolute seconds don't matter — the tuner only
needs the *ranking* of candidates to be faithful, and optionally
validates the winner against a live engine afterwards.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.api.config import ConfigError, SERVE_POLICIES, StageConfig, TuneConfig
from repro.diffusion.schedule import validate_sampler_steps
from repro.tune.controller import AdaptiveController, EngineLoadSnapshot
from repro.tune.workload import Arrival


@dataclass(frozen=True)
class CostModel(StageConfig):
    """Virtual execution cost of one batched trajectory.

    ``batch_seconds = batch_overhead + evals * (step_base +
    step_per_sample * samples)`` — per-step cost dominated by a fixed
    component is exactly why micro-batching wins, and why degrading
    ``full`` (128 evals) to ``bucketed`` (~16) under pressure buys back
    nearly an order of magnitude of latency.
    """

    batch_overhead: float = 0.004
    step_base: float = 0.0020
    step_per_sample: float = 0.00025
    full_steps: int = 128
    bucketed_steps: int = 16

    def __post_init__(self):
        if min(self.batch_overhead, self.step_base, self.step_per_sample) < 0:
            raise ConfigError("cost-model components must be >= 0")
        if self.bucketed_steps < 1 or self.full_steps < self.bucketed_steps:
            raise ConfigError("need full_steps >= bucketed_steps >= 1")

    def evals(self, spec: Union[str, int, None]) -> int:
        """Denoiser evaluations of one schedule spec."""
        if spec is None or spec == "full":
            return self.full_steps
        if spec == "bucketed":
            return self.bucketed_steps
        return max(1, min(int(spec), self.full_steps))

    def batch_seconds(self, samples: int, spec: Union[str, int, None]) -> float:
        return self.batch_overhead + self.evals(spec) * (
            self.step_base + self.step_per_sample * samples
        )


@dataclass(frozen=True)
class Candidate(StageConfig):
    """One point of the tuner's search space: the four searched knobs."""

    policy: str = "greedy"
    engine_workers: int = 1
    queue_limit: Optional[int] = None
    sampler_steps: Union[str, int] = "full"

    def __post_init__(self):
        if self.policy not in SERVE_POLICIES:
            raise ConfigError(
                f"unknown serve policy {self.policy!r}; known: "
                f"{sorted(SERVE_POLICIES)}"
            )
        if self.engine_workers < 1:
            raise ConfigError("engine_workers must be >= 1")
        if self.queue_limit is not None and self.queue_limit < 1:
            raise ConfigError("queue_limit must be >= 1 (or null)")
        try:
            validate_sampler_steps(self.sampler_steps)
        except ValueError as exc:
            raise ConfigError(str(exc)) from exc

    def key(self) -> str:
        """Stable human-readable identity (also the search tie-breaker)."""
        limit = "inf" if self.queue_limit is None else str(self.queue_limit)
        return (
            f"{self.policy}/w{self.engine_workers}"
            f"/q{limit}/s{self.sampler_steps}"
        )


@dataclass
class TrialMetrics:
    """What one simulated trial measured."""

    requests: int
    completed: int
    rejected: int
    p50_latency: float
    p95_latency: float
    p99_latency: float
    mean_latency: float
    throughput: float
    quality: float
    degrades: int
    restores: int
    final_level: int
    makespan: float

    def as_dict(self) -> Dict:
        return {
            "requests": self.requests,
            "completed": self.completed,
            "rejected": self.rejected,
            "p50_latency": round(self.p50_latency, 4),
            "p95_latency": round(self.p95_latency, 4),
            "p99_latency": round(self.p99_latency, 4),
            "mean_latency": round(self.mean_latency, 4),
            "throughput": round(self.throughput, 2),
            "quality": round(self.quality, 4),
            "degrades": self.degrades,
            "restores": self.restores,
            "final_level": self.final_level,
            "makespan": round(self.makespan, 4),
        }


def _percentile(sorted_values: List[float], p: float) -> float:
    """Nearest-rank-with-interpolation percentile over a sorted list."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (p / 100.0) * (len(sorted_values) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_values) - 1)
    frac = rank - low
    return sorted_values[low] * (1.0 - frac) + sorted_values[high] * frac


class _SimJob:
    __slots__ = ("at", "count", "shape", "source", "requested", "effective")

    def __init__(self, arrival: Arrival, configured_steps: Union[str, int]):
        self.at = arrival.at
        self.count = arrival.count
        self.shape = arrival.shape
        self.source = arrival.source
        # What the workload *wants* (quality denominator): an explicit
        # per-phase ask, else full quality.  What the candidate *runs*:
        # the explicit ask wins (as a job-level override does on the live
        # engine), otherwise the config's default schedule — so a
        # statically degraded candidate pays for it in delivered quality,
        # exactly like an adaptive degrade does.
        ask = arrival.sampler_steps
        self.requested = ask if ask is not None else "full"
        self.effective = ask if ask is not None else configured_steps


def _select(
    policy: str,
    queue: List[_SimJob],
    max_batch: int,
    served: Dict[str, int],
) -> List[_SimJob]:
    """The batch policies, mirrored onto sim jobs (arrival order kept)."""
    if policy == "shape_bucketed":
        buckets: "OrderedDict[Tuple, List[_SimJob]]" = OrderedDict()
        for job in queue:
            buckets.setdefault((job.shape, job.effective), []).append(job)
        pool = min(
            buckets.values(), key=lambda group: -sum(j.count for j in group)
        )
    elif policy == "fair_share":
        by_source: "OrderedDict[str, deque]" = OrderedDict()
        for job in queue:
            by_source.setdefault(job.source, deque()).append(job)
        arrival_rank = {source: i for i, source in enumerate(by_source)}
        ordered = sorted(
            by_source,
            key=lambda s: (served.get(s, 0), arrival_rank[s]),
        )
        pool = []
        while sum(j.count for j in pool) < max_batch:
            progressed = False
            for source in ordered:
                if by_source[source]:
                    pool.append(by_source[source].popleft())
                    progressed = True
                    if sum(j.count for j in pool) >= max_batch:
                        break
            if not progressed:
                break
    else:  # greedy and adaptive share FIFO-prefix selection
        pool = queue
    picked: List[_SimJob] = []
    total = 0
    for job in pool:
        picked.append(job)
        total += job.count
        if total >= max_batch:
            break
    for job in picked:
        served[job.source] = served.get(job.source, 0) + job.count
    return picked


def simulate_trial(
    candidate: Candidate,
    arrivals: List[Arrival],
    tune: Optional[TuneConfig] = None,
    cost: Optional[CostModel] = None,
    gather_window: float = 0.02,
    max_batch: int = 64,
) -> TrialMetrics:
    """Replay one arrival trace through the engine model of a candidate."""
    tune = tune if tune is not None else TuneConfig()
    cost = cost if cost is not None else CostModel()
    controller = (
        AdaptiveController(tune) if candidate.policy == "adaptive" else None
    )
    workers = [0.0] * candidate.engine_workers
    base_gather = gather_window
    queue: List[_SimJob] = []
    served: Dict[str, int] = {}
    latencies: List[float] = []
    qualities: List[float] = []
    recent_waits: "deque[Tuple[float, float]]" = deque()
    completed = rejected = 0
    completed_samples = 0
    last_finish = 0.0
    prev_busy = 0.0
    prev_tick_at = 0.0
    busy_acc = 0.0
    i = 0

    def admit(now: float) -> None:
        nonlocal i, rejected
        while i < len(arrivals) and arrivals[i].at <= now:
            if (
                candidate.queue_limit is not None
                and len(queue) >= candidate.queue_limit
            ):
                rejected += 1
            else:
                queue.append(_SimJob(arrivals[i], candidate.sampler_steps))
            i += 1

    while True:
        w = min(range(len(workers)), key=lambda k: (workers[k], k))
        now = workers[w]
        admit(now)
        if not queue:
            if i >= len(arrivals):
                break
            now = max(now, arrivals[i].at)
            admit(now)
        # Gather: wait for coalescing arrivals up to the (possibly
        # adaptively widened) window, exactly like the live engine.
        gather = base_gather
        if controller is not None:
            gather = min(
                base_gather * controller.gather_scale(),
                max(base_gather, 0.25 * tune.slo_p95),
            )
        start = now
        if gather > 0 and sum(j.count for j in queue) < max_batch:
            gather_end = now + gather
            while (
                i < len(arrivals)
                and arrivals[i].at <= gather_end
                and sum(j.count for j in queue) < max_batch
            ):
                start = max(now, arrivals[i].at)
                admit(arrivals[i].at)
            if sum(j.count for j in queue) < max_batch:
                start = gather_end
        if controller is not None:
            # The live dispatcher ticks every ``tick_interval`` while
            # workers execute, so the pressured/calm streaks accrue in
            # wall time.  Replay those ticks for the virtual time that
            # elapsed since the last one — a single tick per worker-free
            # event would never reach ``degrade_after`` during a long
            # batch, leaving the sim blind to exactly the overload the
            # controller exists for.
            interval = max(tune.tick_interval, 1e-3)
            t_tick = prev_tick_at + interval
            while t_tick <= start:
                pending = [j for j in queue if j.at <= t_tick]
                while recent_waits and recent_waits[0][0] < t_tick - 1.0:
                    recent_waits.popleft()
                waits = sorted(
                    wait for (at, wait) in recent_waits if at <= t_tick
                )
                window = max(t_tick - prev_tick_at, 1e-9)
                controller.observe(
                    EngineLoadSnapshot(
                        at=t_tick,
                        queue_depth=len(pending),
                        queued_samples=sum(j.count for j in pending),
                        oldest_wait=(
                            t_tick - min(j.at for j in pending)
                            if pending
                            else 0.0
                        ),
                        queue_wait_p95=_percentile(waits, 95.0),
                        busy_fraction=min(
                            1.0,
                            (busy_acc - prev_busy)
                            / (window * candidate.engine_workers),
                        ),
                        workers=candidate.engine_workers,
                    )
                )
                prev_tick_at = t_tick
                prev_busy = busy_acc
                t_tick += interval
        batch = _select(candidate.policy, queue, max_batch, served)
        chosen = set(id(j) for j in batch)
        queue[:] = [j for j in queue if id(j) not in chosen]
        if controller is not None and controller.level > 0:
            for job in batch:
                job.effective = controller.effective_steps(job.effective)
        for job in batch:
            recent_waits.append((start, start - job.at))
        # One trajectory per (shape, steps) group, run back to back on
        # this worker — the engine's _plan/_execute contract.
        groups: "OrderedDict[Tuple, List[_SimJob]]" = OrderedDict()
        for job in batch:
            groups.setdefault((job.shape, job.effective), []).append(job)
        t = start
        for (_, steps), group in groups.items():
            samples = sum(j.count for j in group)
            dur = cost.batch_seconds(samples, steps)
            t += dur
            busy_acc += dur
            for job in group:
                latencies.append(t - job.at)
                qualities.append(
                    min(
                        1.0,
                        cost.evals(job.effective)
                        / max(1, cost.evals(job.requested)),
                    )
                )
                completed += 1
                completed_samples += job.count
        workers[w] = t
        last_finish = max(last_finish, t)

    latencies.sort()
    makespan = max(last_finish, arrivals[-1].at if arrivals else 0.0)
    return TrialMetrics(
        requests=len(arrivals),
        completed=completed,
        rejected=rejected,
        p50_latency=_percentile(latencies, 50.0),
        p95_latency=_percentile(latencies, 95.0),
        p99_latency=_percentile(latencies, 99.0),
        mean_latency=(
            sum(latencies) / len(latencies) if latencies else 0.0
        ),
        throughput=(
            completed_samples / makespan if makespan > 0 else 0.0
        ),
        quality=(sum(qualities) / len(qualities) if qualities else 0.0),
        degrades=controller.degrades if controller is not None else 0,
        restores=controller.restores if controller is not None else 0,
        final_level=controller.level if controller is not None else 0,
        makespan=makespan,
    )
