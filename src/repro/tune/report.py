"""Human-readable trial reports for ``repro tune``.

One fixed-width table per rung (low fidelity at the top, the full-trace
final rung at the bottom), then the winner with the exact serve knobs to
copy.  Plain text on purpose: the report lands next to the tuned config
JSON and gets pasted into PRs and incident docs.
"""

from __future__ import annotations

from typing import List

from repro.tune.search import TrialResult, TuneOutcome

_COLUMNS = (
    ("candidate", 28),
    ("p95(s)", 8),
    ("quality", 8),
    ("rej", 5),
    ("thru(sps)", 10),
    ("SLO", 4),
)


def _row(trial: TrialResult, slo_p95: float) -> str:
    metrics = trial.metrics
    holds = metrics.p95_latency <= slo_p95 and metrics.rejected == 0
    cells = (
        trial.candidate.key(),
        f"{metrics.p95_latency:.3f}",
        f"{metrics.quality:.2f}",
        str(metrics.rejected),
        f"{metrics.throughput:.1f}",
        "ok" if holds else "MISS",
    )
    return "  ".join(
        cell.ljust(width) for cell, (_, width) in zip(cells, _COLUMNS)
    ).rstrip()


def render_report(outcome: TuneOutcome) -> str:
    """The full multi-rung report as one printable string."""
    lines: List[str] = []
    lines.append(
        f"repro tune — workload {outcome.workload!r}, seed {outcome.seed}, "
        f"SLO p95 <= {outcome.slo_p95:.3f}s"
    )
    lines.append(
        f"{outcome.candidates} candidate(s), {outcome.rungs} rung(s), "
        f"{len(outcome.trials)} trial(s)"
    )
    header = "  ".join(
        name.ljust(width) for name, width in _COLUMNS
    ).rstrip()
    for rung in range(outcome.rungs):
        rows = [t for t in outcome.trials if t.rung == rung]
        if not rows:
            continue
        lines.append("")
        lines.append(
            f"rung {rung} — fidelity {rows[0].fidelity:.0%} "
            f"({len(rows)} candidate(s))"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for trial in rows:
            lines.append(_row(trial, outcome.slo_p95))
    won = outcome.winner
    lines.append("")
    lines.append(f"winner: {won.candidate.key()}")
    lines.append(
        f"  p95 {won.metrics.p95_latency:.3f}s, quality "
        f"{won.metrics.quality:.2f}, {won.metrics.rejected} rejected, "
        f"{won.metrics.throughput:.1f} samples/s over "
        f"{won.metrics.makespan:.2f}s"
    )
    if won.candidate.policy == "adaptive":
        lines.append(
            f"  adaptive transitions: {won.metrics.degrades} degrade(s), "
            f"{won.metrics.restores} restore(s), final level "
            f"{won.metrics.final_level}"
        )
    lines.append(
        "  serve knobs: policy={p} engine_workers={w} queue_limit={q} "
        "sampler_steps={s}".format(
            p=won.candidate.policy,
            w=won.candidate.engine_workers,
            q=won.candidate.queue_limit,
            s=won.candidate.sampler_steps,
        )
    )
    return "\n".join(lines) + "\n"
