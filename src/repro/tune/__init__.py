"""Self-tuning serve performance: the SLO-driven tuning subsystem.

Two halves share one vocabulary (:class:`~repro.api.config.TuneConfig`,
the latency SLO and hysteresis knobs):

- **Online** — :class:`~repro.tune.controller.AdaptiveController`, the
  pure hysteresis controller behind the engine's ``adaptive`` batch
  policy (:class:`~repro.serve.engine.AdaptivePolicy`): under queue
  pressure it degrades effective ``sampler_steps`` toward ``"bucketed"``
  and widens batch gathering to hold the p95 SLO, restoring full quality
  once load calms.
- **Offline** — the ``repro tune`` autotuner: replay a seeded
  :class:`~repro.tune.workload.WorkloadSpec` through the deterministic
  engine simulator (:mod:`repro.tune.simulate`) for a grid of knob
  candidates, race them with successive halving
  (:func:`~repro.tune.search.successive_halving`), and emit a tuned
  :class:`~repro.api.config.PipelineConfig` plus a human-readable trial
  report (:mod:`repro.tune.report`).

This package never imports :mod:`repro.serve` — the controller and the
simulator stay pure so the engine can import the controller without a
cycle, and simulated trials stay exactly reproducible.
"""

from repro.tune.controller import (
    AdaptiveController,
    EngineLoadSnapshot,
    degrade_steps,
    quality_rank,
)
from repro.tune.report import render_report
from repro.tune.search import (
    Candidate,
    TrialResult,
    TuneOutcome,
    default_candidates,
    score_metrics,
    successive_halving,
)
from repro.tune.simulate import CostModel, TrialMetrics, simulate_trial
from repro.tune.workload import (
    ARRIVAL_PATTERNS,
    Arrival,
    WorkloadPhase,
    WorkloadSpec,
)

__all__ = [
    "ARRIVAL_PATTERNS",
    "AdaptiveController",
    "Arrival",
    "Candidate",
    "CostModel",
    "EngineLoadSnapshot",
    "TrialMetrics",
    "TrialResult",
    "TuneOutcome",
    "WorkloadPhase",
    "WorkloadSpec",
    "default_candidates",
    "degrade_steps",
    "quality_rank",
    "render_report",
    "score_metrics",
    "simulate_trial",
    "successive_halving",
]
