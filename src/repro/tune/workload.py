"""Workload specs: the input vocabulary of the offline tuner.

A workload spec is a small JSON document describing the traffic a
deployment expects — phases of request arrivals (rate, arrival process,
samples per request, shape, source tag, optionally a per-phase step
schedule), e.g. a steady trickle followed by a spike.  ``repro tune``
replays the spec through the discrete-event engine simulator for every
candidate knob configuration.

Arrival times are *seeded*: :meth:`WorkloadSpec.arrivals` derives every
inter-arrival draw from one ``numpy`` generator, so the same spec + seed
always produces the identical request trace — the foundation of the
tuner's same-seed → same-winner determinism guarantee.

Example spec::

    {
      "name": "spike",
      "seed": 7,
      "phases": [
        {"duration": 4.0, "rate": 2.0, "count": 2},
        {"duration": 2.0, "rate": 20.0, "count": 2, "source": "bulk"},
        {"duration": 4.0, "rate": 2.0, "count": 2}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.api.config import ConfigError, StageConfig
from repro.diffusion.schedule import validate_sampler_steps

#: Supported arrival processes within a phase.
ARRIVAL_PATTERNS = ("poisson", "uniform", "burst")


@dataclass(frozen=True)
class WorkloadPhase(StageConfig):
    """One phase of traffic: a rate held for a duration.

    ``arrival`` picks the process: ``poisson`` draws exponential
    inter-arrival gaps (seeded), ``uniform`` spaces requests evenly, and
    ``burst`` drops the phase's whole request budget at the phase start —
    the spike shape that makes static policies miss their SLO.
    ``sampler_steps`` optionally pins the quality this phase's requests
    ask for; ``null`` (the default) means they run the tuned config's
    default schedule.
    """

    duration: float = 1.0
    rate: float = 1.0
    count: int = 2
    shape: Tuple[int, int] = (64, 64)
    source: str = "default"
    sampler_steps: Union[str, int, None] = None
    arrival: str = "poisson"

    def __post_init__(self):
        if self.duration <= 0:
            raise ConfigError("phase duration must be > 0 seconds")
        if self.rate < 0:
            raise ConfigError("phase rate must be >= 0 requests/sec")
        if self.count < 1:
            raise ConfigError("phase count must be >= 1 samples/request")
        if (
            len(self.shape) != 2
            or any(int(s) < 1 for s in self.shape)
        ):
            raise ConfigError(
                f"phase shape must be two positive ints, got {self.shape!r}"
            )
        if self.arrival not in ARRIVAL_PATTERNS:
            raise ConfigError(
                f"unknown arrival pattern {self.arrival!r}; known: "
                f"{sorted(ARRIVAL_PATTERNS)}"
            )
        if self.sampler_steps is not None:
            try:
                validate_sampler_steps(self.sampler_steps)
            except ValueError as exc:
                raise ConfigError(str(exc)) from exc


@dataclass(frozen=True)
class Arrival:
    """One request of the derived trace (sorted by ``at``).

    ``phase`` records which spec phase produced the request, so the
    tuner's low-fidelity rungs can subsample *each phase proportionally*
    — a prefix of the raw trace would silently drop a mid-trace spike,
    making cheap rungs blind to exactly the traffic that separates the
    candidates.
    """

    at: float
    count: int
    shape: Tuple[int, int]
    source: str
    sampler_steps: Union[str, int, None]
    phase: int = 0


@dataclass(frozen=True)
class WorkloadSpec(StageConfig):
    """A named, seeded sequence of traffic phases."""

    name: str = "workload"
    seed: int = 0
    phases: Tuple[WorkloadPhase, ...] = ()

    def __post_init__(self):
        if not self.phases:
            raise ConfigError("a workload needs at least one phase")
        if not isinstance(self.seed, int):
            raise ConfigError(f"workload seed must be an int, got {self.seed!r}")
        normalized = tuple(
            phase
            if isinstance(phase, WorkloadPhase)
            else WorkloadPhase.from_dict(dict(phase))
            for phase in self.phases
        )
        object.__setattr__(self, "phases", normalized)

    # -- dict/JSON round-trip (nested phases need explicit plumbing) ---

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "phases": [phase.as_dict() for phase in self.phases],
        }

    @classmethod
    def load(cls, path: Union[str, Path]) -> "WorkloadSpec":
        try:
            data = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise ConfigError(f"invalid workload JSON: {exc}") from exc
        return cls.from_dict(data)

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(
            json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"
        )
        return path

    # -- derived properties -------------------------------------------

    @property
    def duration(self) -> float:
        return sum(phase.duration for phase in self.phases)

    @property
    def expected_requests(self) -> int:
        return int(
            round(sum(phase.duration * phase.rate for phase in self.phases))
        )

    def arrivals(self, seed: Optional[int] = None) -> List[Arrival]:
        """Derive the seeded request trace (same seed → same trace)."""
        rng = np.random.default_rng(self.seed if seed is None else seed)
        out: List[Arrival] = []
        t0 = 0.0
        for index, phase in enumerate(self.phases):
            budget = int(round(phase.duration * phase.rate))
            times: List[float] = []
            if phase.arrival == "poisson" and phase.rate > 0:
                t = t0
                while True:
                    t += float(rng.exponential(1.0 / phase.rate))
                    if t >= t0 + phase.duration:
                        break
                    times.append(t)
            elif phase.arrival == "uniform" and budget > 0:
                gap = phase.duration / budget
                times = [t0 + i * gap for i in range(budget)]
            elif phase.arrival == "burst":
                times = [t0] * budget
            for t in times:
                out.append(
                    Arrival(
                        at=t,
                        count=phase.count,
                        shape=tuple(int(s) for s in phase.shape),
                        source=phase.source,
                        sampler_steps=phase.sampler_steps,
                        phase=index,
                    )
                )
            t0 += phase.duration
        out.sort(key=lambda a: a.at)
        return out
