"""Successive-halving search over serve-engine knob configurations.

The classic multi-fidelity racing scheme: every surviving candidate is
simulated on a *prefix* of the workload's arrival trace, the weaker half
is dropped, and the fidelity doubles — so a budget of N candidates costs
roughly 2N cheap-trial-equivalents instead of N full replays, and the
final rung always scores the survivors on the complete trace.

Scoring is lexicographic (:func:`score_metrics`): meet the p95 SLO
without shedding load first, then maximize delivered sampler quality,
then minimize p95 latency, then maximize throughput.  Ties — including
the everything-meets-SLO easy workloads — break on the candidate's
stable ``key()`` string, which keeps the whole search deterministic for
a fixed spec + seed (the ``repro tune`` acceptance contract).

The output is a :class:`TuneOutcome`: every trial for the report, plus
``tuned_config()`` grafting the winner's knobs onto a base
:class:`~repro.api.config.PipelineConfig` (what ``repro tune -o`` saves).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.api.config import PipelineConfig, TuneConfig
from repro.tune.simulate import Candidate, CostModel, TrialMetrics, simulate_trial
from repro.tune.workload import Arrival, WorkloadSpec

#: Default grid axes (order fixed: it is part of the deterministic
#: contract — ``--budget`` trims this enumeration, never reorders it).
DEFAULT_POLICIES = ("greedy", "shape_bucketed", "fair_share", "adaptive")
DEFAULT_WORKERS = (1, 2, 4)
DEFAULT_QUEUE_LIMITS = (None, 64)
DEFAULT_SAMPLER_STEPS = ("full", 32, "bucketed")

#: Fewest arrivals a low-fidelity rung may score a candidate on.
MIN_FIDELITY_ARRIVALS = 8


def _fidelity_subset(arrivals: List[Arrival], fidelity: float) -> List[Arrival]:
    """A shape-preserving subsample of the trace at the given fidelity.

    Each phase contributes its earliest ``round(len * fidelity)``
    arrivals (at least one), so a mid-trace spike survives every rung —
    a plain prefix would score cheap rungs only on the calm lead-in and
    eliminate exactly the candidates the spike is meant to separate.
    """
    if fidelity >= 1.0:
        return list(arrivals)
    floor = min(MIN_FIDELITY_ARRIVALS, len(arrivals))
    fidelity = max(fidelity, floor / max(1, len(arrivals)))
    by_phase: "OrderedDict[int, List[Arrival]]" = OrderedDict()
    for arrival in arrivals:
        by_phase.setdefault(arrival.phase, []).append(arrival)
    subset: List[Arrival] = []
    for group in by_phase.values():
        group.sort(key=lambda a: a.at)
        subset.extend(group[: max(1, int(round(len(group) * fidelity)))])
    subset.sort(key=lambda a: a.at)
    return subset


def default_candidates(
    policies: Sequence[str] = DEFAULT_POLICIES,
    workers: Sequence[int] = DEFAULT_WORKERS,
    queue_limits: Sequence[Optional[int]] = DEFAULT_QUEUE_LIMITS,
    sampler_steps: Sequence = DEFAULT_SAMPLER_STEPS,
) -> List[Candidate]:
    """The full knob grid, in stable enumeration order.

    The ``adaptive`` policy owns its quality schedule (that is the point
    of it), so it is only paired with ``sampler_steps="full"`` — the
    other combinations would just pre-degrade what the controller
    manages dynamically.
    """
    grid: List[Candidate] = []
    # Policy is the innermost axis so a small ``--budget`` prefix still
    # races every policy against each other instead of e.g. only greedy.
    for n in workers:
        for limit in queue_limits:
            for steps in sampler_steps:
                for policy in policies:
                    if policy == "adaptive" and steps != "full":
                        continue
                    grid.append(
                        Candidate(
                            policy=policy,
                            engine_workers=n,
                            queue_limit=limit,
                            sampler_steps=steps,
                        )
                    )
    return grid


def score_metrics(metrics: TrialMetrics, slo_p95: float) -> Tuple:
    """Lexicographic goodness of one trial (bigger wins).

    Inside the SLO, quality is the prize: a config that holds p95 while
    delivering more sampler steps beats one that holds it degraded.
    Outside the SLO the priorities flip — get *close* to the latency bar
    first, quality second (full quality at triple the SLO helps nobody).
    Shedding load (rejections) disqualifies a candidate from the
    "holds the SLO" tier — a config that 429s its way under the latency
    bar did not actually serve the workload.
    """
    holds_slo = int(metrics.p95_latency <= slo_p95 and metrics.rejected == 0)
    if holds_slo:
        return (
            1,
            round(metrics.quality, 6),
            -round(metrics.p95_latency, 6),
            0,
            round(metrics.throughput, 3),
        )
    return (
        0,
        -round(metrics.p95_latency, 6),
        round(metrics.quality, 6),
        -metrics.rejected,
        round(metrics.throughput, 3),
    )


@dataclass
class TrialResult:
    """One (candidate, fidelity) simulation and its score."""

    candidate: Candidate
    metrics: TrialMetrics
    rung: int
    fidelity: float
    score: Tuple

    def as_dict(self) -> dict:
        return {
            "candidate": self.candidate.as_dict(),
            "key": self.candidate.key(),
            "rung": self.rung,
            "fidelity": round(self.fidelity, 4),
            "metrics": self.metrics.as_dict(),
            "score": list(self.score),
        }


@dataclass
class TuneOutcome:
    """Everything one ``repro tune`` run decided and measured."""

    workload: str
    seed: int
    slo_p95: float
    winner: TrialResult
    trials: List[TrialResult]
    rungs: int
    candidates: int

    def tuned_config(self, base: Optional[PipelineConfig] = None) -> PipelineConfig:
        """The winner's knobs grafted onto ``base`` (default config if
        omitted) — the JSON ``repro tune -o`` emits, loadable by
        ``PipelineConfig.load`` and servable as-is."""
        base = base if base is not None else PipelineConfig()
        won = self.winner.candidate
        return base.replace(
            serve=base.serve.replace(
                policy=won.policy,
                engine_workers=won.engine_workers,
                queue_limit=won.queue_limit,
            ),
            sample=base.sample.replace(sampler_steps=won.sampler_steps),
        )


def successive_halving(
    spec: WorkloadSpec,
    candidates: Optional[Sequence[Candidate]] = None,
    tune: Optional[TuneConfig] = None,
    cost: Optional[CostModel] = None,
    seed: Optional[int] = None,
    budget: Optional[int] = None,
    gather_window: float = 0.02,
    max_batch: int = 64,
) -> TuneOutcome:
    """Race candidate configs over the spec's seeded arrival trace.

    ``budget`` caps how many grid points enter rung 0 (a deterministic
    prefix of the stable enumeration).  ``seed`` overrides the spec's
    own arrival seed.
    """
    tune = tune if tune is not None else TuneConfig()
    cost = cost if cost is not None else CostModel()
    pool = list(candidates) if candidates is not None else default_candidates()
    if budget is not None:
        if budget < 1:
            raise ValueError("budget must be >= 1 candidates")
        pool = pool[:budget]
    if not pool:
        raise ValueError("no candidates to search")
    arrivals = spec.arrivals(seed)
    if not arrivals:
        raise ValueError(f"workload {spec.name!r} produced no arrivals")
    used_seed = spec.seed if seed is None else seed
    rungs = max(1, math.ceil(math.log2(len(pool)))) if len(pool) > 1 else 1
    survivors = pool
    trials: List[TrialResult] = []
    final_rung: List[TrialResult] = []
    for rung in range(rungs):
        fidelity = 1.0 / (2 ** (rungs - 1 - rung))
        subset = _fidelity_subset(arrivals, fidelity)
        results = []
        for candidate in survivors:
            metrics = simulate_trial(
                candidate,
                subset,
                tune=tune,
                cost=cost,
                gather_window=gather_window,
                max_batch=max_batch,
            )
            results.append(
                TrialResult(
                    candidate=candidate,
                    metrics=metrics,
                    rung=rung,
                    fidelity=len(subset) / len(arrivals),
                    score=score_metrics(metrics, tune.slo_p95),
                )
            )
        # Best first; the stable key string settles exact score ties.
        results.sort(key=lambda t: (t.score, t.candidate.key()), reverse=True)
        trials.extend(results)
        final_rung = results
        survivors = [
            t.candidate for t in results[: max(1, len(results) // 2)]
        ]
    return TuneOutcome(
        workload=spec.name,
        seed=used_seed,
        slo_p95=tune.slo_p95,
        winner=final_rung[0],
        trials=trials,
        rungs=rungs,
        candidates=len(pool),
    )
