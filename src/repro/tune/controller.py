"""The hysteresis controller behind the ``adaptive`` batch policy.

The controller is the *decision* half of online self-tuning; the engine
half (building :class:`EngineLoadSnapshot` views and applying the chosen
degrade level to queued jobs) lives in
:class:`~repro.serve.engine.AdaptivePolicy`.  Splitting them keeps this
module pure — config + arithmetic, no threads, no engine imports — so the
offline tuner's discrete-event simulator drives the *exact same*
controller code the live engine runs.

Mechanics: each tick classifies the engine's load as *pressured*, *calm*
or neutral.  ``degrade_after`` consecutive pressured ticks step the
degrade level down one rung of ``TuneConfig.degrade_ladder`` (level 0 =
full requested quality); ``restore_after`` consecutive calm ticks step it
back up.  The two streak counters give hysteresis: a single noisy tick in
either direction resets the opposing streak, so the level never flaps.
An idle engine is by construction calm — the no-stuck-degraded guarantee
(property-tested) is that ``levels * restore_after`` idle ticks always
walk the controller back to level 0.

Degraded quality is bounded twice: per-job, a degrade never *upgrades*
(a job that asked for ``"bucketed"`` stays bucketed when the ladder says
32), and globally ``floor_steps`` clamps every rung, so no job ever runs
below the configured quality floor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.api.config import TuneConfig

#: An explicit step-schedule spec (``None`` means "model default", which
#: the quality ordering treats as full quality).
SamplerSpec = Union[str, int, None]

#: Quality rank of the full schedule: above any int step count.
FULL_RANK = 1 << 30


def quality_rank(spec: SamplerSpec) -> int:
    """Total order over step schedules: more denoiser evals = higher.

    ``"full"``/``None`` rank highest, an int ranks as itself, and
    ``"bucketed"`` (the collapsed ~16-eval fast path) ranks lowest — it
    visits fewer representative steps than any schedule a caller would
    spell as an int.
    """
    if spec is None or spec == "full":
        return FULL_RANK
    if spec == "bucketed":
        return 0
    return int(spec)


def degrade_steps(requested: SamplerSpec, candidate: SamplerSpec) -> SamplerSpec:
    """The candidate schedule, unless it would *upgrade* the request."""
    if quality_rank(candidate) >= quality_rank(requested):
        return requested
    return candidate


@dataclass(frozen=True)
class EngineLoadSnapshot:
    """One thread-consistent view of engine load, the controller's input.

    Built by :meth:`~repro.serve.engine.ServeEngine.load_snapshot` under
    the queue lock (or synthesized by the tuner's simulator).  ``at`` is a
    ``perf_counter``-style instant used only for tick rate-limiting;
    ``queue_wait_p95`` is the *windowed* p95 of ``repro_queue_wait_seconds``
    (observations since the previous snapshot, not since boot), so the
    signal decays as soon as pressure does.
    """

    at: float
    queue_depth: int
    queued_samples: int
    oldest_wait: float
    queue_wait_p95: float
    busy_fraction: float
    workers: int = 1


class AdaptiveController:
    """SLO-holding hysteresis over degrade levels.

    Not internally locked: the live engine only ticks it under the queue
    lock, and the simulator is single-threaded.  ``level`` is the current
    degrade depth — 0 means full requested quality, ``i >= 1`` means
    ``degrade_ladder[i - 1]`` (floor-clamped) is in force.
    """

    def __init__(self, config: Optional[TuneConfig] = None):
        self.config = config if config is not None else TuneConfig()
        self.level = 0
        #: lifetime transition counts, mirrored into the engine's
        #: ``repro_adaptive_degrade_total`` counter by the policy
        self.degrades = 0
        self.restores = 0
        self._pressure_streak = 0
        self._calm_streak = 0
        self._last_tick: Optional[float] = None

    @property
    def levels(self) -> int:
        """Deepest degrade level (= rungs on the ladder)."""
        return len(self.config.degrade_ladder)

    def due(self, now: float) -> bool:
        """Whether a tick at ``now`` would be observed (rate limit)."""
        return (
            self._last_tick is None
            or now - self._last_tick >= self.config.tick_interval
        )

    # -- load classification ------------------------------------------

    def pressured(self, snapshot: EngineLoadSnapshot) -> bool:
        """Load that, sustained, would miss the SLO: degrade evidence."""
        cfg = self.config
        per_worker = snapshot.queue_depth / max(1, snapshot.workers)
        return (
            per_worker >= cfg.queue_high
            or snapshot.queue_wait_p95 > 0.5 * cfg.slo_p95
            or snapshot.oldest_wait > 0.5 * cfg.slo_p95
        )

    def calm(self, snapshot: EngineLoadSnapshot) -> bool:
        """Load comfortably inside the SLO: restore evidence.

        Deliberately stricter than ``not pressured()`` — the band between
        the two is neutral and resets both streaks, which is what makes
        the hysteresis sticky instead of flappy.
        """
        cfg = self.config
        per_worker = snapshot.queue_depth / max(1, snapshot.workers)
        return (
            per_worker <= cfg.queue_low
            and snapshot.queue_wait_p95 <= 0.25 * cfg.slo_p95
            and snapshot.oldest_wait <= 0.25 * cfg.slo_p95
        )

    # -- the tick ------------------------------------------------------

    def observe(self, snapshot: EngineLoadSnapshot) -> int:
        """Consume one load snapshot; returns the (possibly new) level."""
        if not self.due(snapshot.at):
            return self.level
        self._last_tick = snapshot.at
        if self.pressured(snapshot):
            self._calm_streak = 0
            self._pressure_streak += 1
            if (
                self._pressure_streak >= self.config.degrade_after
                and self.level < self.levels
            ):
                self.level += 1
                self.degrades += 1
                self._pressure_streak = 0
        elif self.calm(snapshot):
            self._pressure_streak = 0
            self._calm_streak += 1
            if (
                self._calm_streak >= self.config.restore_after
                and self.level > 0
            ):
                self.level -= 1
                self.restores += 1
                self._calm_streak = 0
        else:
            self._pressure_streak = 0
            self._calm_streak = 0
        return self.level

    # -- what the current level means ----------------------------------

    def effective_steps(self, requested: SamplerSpec) -> SamplerSpec:
        """The schedule a job runs at the current level.

        Level 0 passes the request through.  Deeper levels substitute the
        ladder rung, clamped so it never drops below ``floor_steps`` and
        never upgrades what the job asked for.
        """
        if self.level == 0:
            return requested
        candidate = self.config.degrade_ladder[self.level - 1]
        if quality_rank(candidate) < quality_rank(self.config.floor_steps):
            candidate = self.config.floor_steps
        return degrade_steps(requested, candidate)

    def gather_scale(self) -> float:
        """Gather-window multiplier: wider batching while degraded."""
        return self.config.gather_boost ** self.level

    def reset(self) -> None:
        """Back to level 0 with clean streaks (lifetime counts remain)."""
        self.level = 0
        self._pressure_streak = 0
        self._calm_streak = 0
        self._last_tick = None
