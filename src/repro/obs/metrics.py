"""Thread-safe metrics primitives: counters, gauges, bucket histograms.

The serving stack emits its telemetry through a :class:`MetricsRegistry`
holding three instrument kinds, all safe for concurrent use from many
threads:

- :class:`Counter` — a monotonically increasing total (``_total`` series).
- :class:`Gauge` — an instantaneous value (queue depth, resident models).
- :class:`Histogram` — fixed-bucket latency/size distributions with
  Prometheus-style cumulative buckets and p50/p95/p99 derivation by
  linear interpolation inside the winning bucket.

Instruments support optional labels (``counter.inc(policy="greedy")``),
one independent series per label-value combination, exactly like the
Prometheus data model.  ``registry.snapshot()`` captures every series as a
plain JSON-able dict (each histogram series carries its derived
percentiles), and :mod:`repro.obs.export` renders that snapshot in the
Prometheus text exposition format.

A registry created with ``enabled=False`` hands out shared no-op
instruments, so instrumented code costs one attribute call and nothing
else when observability is off.  :func:`default_metrics` returns the
process-wide registry that instrumented components fall back to when no
explicit registry is given; :data:`NULL_METRICS` is the shared disabled
one.
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency buckets (seconds): sub-millisecond queue waits up to
#: minute-long batched trajectories, roughly log-spaced.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Default size buckets (samples/jobs): powers of two up to the largest
#: batch the engine's ``max_batch`` default would select.
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
)


class MetricError(ValueError):
    """An instrument was declared or used inconsistently."""


def _validate_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise MetricError(f"invalid metric name {name!r}")
    return name


def _validate_labels(labels: Sequence[str]) -> Tuple[str, ...]:
    labels = tuple(labels)
    for label in labels:
        if not _LABEL_RE.match(label):
            raise MetricError(f"invalid label name {label!r}")
    if len(set(labels)) != len(labels):
        raise MetricError(f"duplicate label names in {labels!r}")
    return labels


def validate_buckets(buckets: Iterable[float]) -> Tuple[float, ...]:
    """Validate histogram bucket bounds: finite, positive, increasing."""
    bounds = tuple(float(b) for b in buckets)
    if not bounds:
        raise MetricError("histogram needs at least one bucket bound")
    for bound in bounds:
        if not bound > 0 or bound != bound or bound == float("inf"):
            raise MetricError(
                f"bucket bounds must be finite and > 0, got {bound!r}"
            )
    if any(b >= a for b, a in zip(bounds, bounds[1:])):
        raise MetricError(
            f"bucket bounds must be strictly increasing, got {bounds!r}"
        )
    return bounds


class _Metric:
    """Shared series bookkeeping for the three instrument kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()):
        self.name = _validate_name(name)
        self.help = help
        self.label_names = _validate_labels(labels)
        self._lock = threading.Lock()
        self._series: "OrderedDict[Tuple[str, ...], object]" = OrderedDict()

    def _key(self, labels: Dict[str, str]) -> Tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise MetricError(
                f"{self.name} takes labels {list(self.label_names)}, "
                f"got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def _label_dict(self, key: Tuple[str, ...]) -> Dict[str, str]:
        return dict(zip(self.label_names, key))

    # Subclasses fill in how one series snapshots.
    def _series_snapshot(self, key: Tuple[str, ...], state) -> Dict:
        raise NotImplementedError

    def snapshot(self) -> Dict:
        """This metric with every series, as a JSON-able dict."""
        with self._lock:
            series = [
                self._series_snapshot(key, state)
                for key, state in self._series.items()
            ]
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "series": series,
        }


class Counter(_Metric):
    """A monotonically increasing total."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise MetricError("counters only go up; use a Gauge")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        key = self._key(labels)
        with self._lock:
            return float(self._series.get(key, 0.0))

    def _series_snapshot(self, key, state) -> Dict:
        return {"labels": self._label_dict(key), "value": float(state)}


class Gauge(_Metric):
    """An instantaneous value that may go up and down."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        key = self._key(labels)
        with self._lock:
            return float(self._series.get(key, 0.0))

    def _series_snapshot(self, key, state) -> Dict:
        return {"labels": self._label_dict(key), "value": float(state)}


class _HistogramSeries:
    __slots__ = ("counts", "sum")

    def __init__(self, n_buckets: int):
        self.counts = [0] * (n_buckets + 1)  # +1: the +Inf bucket
        self.sum = 0.0


class Histogram(_Metric):
    """Fixed-bucket distribution with cumulative-bucket export.

    ``bounds`` are the finite upper bucket bounds; an implicit ``+Inf``
    bucket catches everything above the last one.  Quantiles are derived
    the way ``histogram_quantile`` does it: find the bucket where the
    cumulative count crosses the target rank and interpolate linearly
    inside it (the ``+Inf`` bucket clamps to the largest finite bound).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
        help: str = "",
        labels: Sequence[str] = (),
    ):
        super().__init__(name, help=help, labels=labels)
        self.bounds = validate_buckets(buckets)

    def observe(self, value: float, **labels) -> None:
        value = float(value)
        key = self._key(labels)
        # Bisect by hand: bucket counts are per-bound *non*-cumulative in
        # storage and cumulated at export, so one increment suffices.
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.bounds))
            series.counts[index] += 1
            series.sum += value

    def count(self, **labels) -> int:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            return sum(series.counts) if series is not None else 0

    def total(self, **labels) -> float:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            return float(series.sum) if series is not None else 0.0

    def percentile(self, p: float, **labels) -> float:
        """The p-th percentile (``p`` in [0, 100]) of one series."""
        if not 0 <= p <= 100:
            raise MetricError("percentile takes p in [0, 100]")
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            counts = list(series.counts) if series is not None else None
        if not counts or sum(counts) == 0:
            return 0.0
        return _bucket_percentile(self.bounds, counts, p)

    def percentiles(
        self, ps: Sequence[float] = (50, 95, 99), **labels
    ) -> Dict[str, float]:
        return {f"p{p:g}": self.percentile(p, **labels) for p in ps}

    def raw_counts(self, **labels) -> Optional[List[int]]:
        """Non-cumulative per-bucket counts of one series (a copy).

        ``None`` when the series has never been observed.  Two successive
        copies can be differenced and fed to :func:`bucket_percentile` to
        derive *windowed* quantiles from a cumulative histogram — how the
        adaptive batch policy tracks *recent* queue-wait pressure instead
        of the since-boot distribution.
        """
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            return list(series.counts) if series is not None else None

    def _series_snapshot(self, key, state: _HistogramSeries) -> Dict:
        counts = list(state.counts)
        cumulative: List[List] = []
        running = 0
        for bound, count in zip(self.bounds, counts):
            running += count
            cumulative.append([bound, running])
        total = running + counts[-1]
        cumulative.append(["+Inf", total])
        snapshot = {
            "labels": self._label_dict(key),
            "count": total,
            "sum": state.sum,
            "buckets": cumulative,
        }
        if total:
            for p in (50, 95, 99):
                snapshot[f"p{p}"] = _bucket_percentile(self.bounds, counts, p)
        return snapshot


def _bucket_percentile(
    bounds: Tuple[float, ...], counts: Sequence[int], p: float
) -> float:
    """Linear interpolation inside the bucket holding the target rank."""
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = (p / 100.0) * total
    cumulative = 0
    for i, count in enumerate(counts[:-1]):
        previous = cumulative
        cumulative += count
        if cumulative >= rank and count > 0:
            lower = bounds[i - 1] if i > 0 else 0.0
            upper = bounds[i]
            fraction = (rank - previous) / count
            return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
    # Target rank lives in the +Inf bucket: clamp to the largest finite
    # bound — the honest answer a fixed-bucket histogram can give.
    return bounds[-1]


def bucket_percentile(
    bounds: Tuple[float, ...], counts: Sequence[int], p: float
) -> float:
    """Quantile over explicit bucket counts (e.g. a windowed delta).

    The same interpolation :meth:`Histogram.percentile` uses, exposed for
    callers that difference :meth:`Histogram.raw_counts` snapshots to get
    a quantile over only the observations of the last window.
    """
    if not 0 <= p <= 100:
        raise MetricError("percentile takes p in [0, 100]")
    return _bucket_percentile(tuple(bounds), counts, p)


class _NullInstrument:
    """Shared no-op instrument of a disabled registry.

    Every mutator is a no-op and every reader returns a zero, so
    instrumented code runs unchanged — and nearly free — with
    observability off.
    """

    def inc(self, amount: float = 1.0, **labels) -> None:
        pass

    def dec(self, amount: float = 1.0, **labels) -> None:
        pass

    def set(self, value: float, **labels) -> None:
        pass

    def observe(self, value: float, **labels) -> None:
        pass

    def value(self, **labels) -> float:
        return 0.0

    def count(self, **labels) -> int:
        return 0

    def total(self, **labels) -> float:
        return 0.0

    def percentile(self, p: float, **labels) -> float:
        return 0.0

    def percentiles(self, ps=(50, 95, 99), **labels) -> Dict[str, float]:
        return {f"p{p:g}": 0.0 for p in ps}

    def raw_counts(self, **labels) -> None:
        return None


_NULL_INSTRUMENT = _NullInstrument()

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Thread-safe home of every instrument, with snapshot/export.

    ``counter``/``gauge``/``histogram`` are idempotent: asking for an
    existing name returns the existing instrument (declaring it with a
    different kind or labels raises, a histogram's buckets are fixed by
    its first declaration).  ``latency_buckets`` is the default bucket
    ladder ``histogram`` uses when none is given — the seam
    :class:`~repro.api.config.ObsConfig` configures.
    """

    def __init__(
        self,
        enabled: bool = True,
        latency_buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        self.enabled = bool(enabled)
        self.latency_buckets = validate_buckets(latency_buckets)
        self._lock = threading.Lock()
        self._metrics: "OrderedDict[str, _Metric]" = OrderedDict()

    # -- declaration ---------------------------------------------------

    def _declare(self, cls, name: str, help: str, labels, **kwargs):
        if not self.enabled:
            return _NULL_INSTRUMENT
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise MetricError(
                        f"{name!r} is already declared as a "
                        f"{existing.kind}, not a {cls.kind}"
                    )
                if tuple(labels) != existing.label_names:
                    raise MetricError(
                        f"{name!r} is already declared with labels "
                        f"{list(existing.label_names)}, not {list(labels)}"
                    )
                return existing
            metric = cls(name, help=help, labels=labels, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        return self._declare(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Gauge:
        return self._declare(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Iterable[float]] = None,
        labels: Sequence[str] = (),
    ) -> Histogram:
        return self._declare(
            Histogram,
            name,
            help,
            labels,
            buckets=buckets if buckets is not None else self.latency_buckets,
        )

    # -- reading -------------------------------------------------------

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return list(self._metrics)

    def snapshot(self) -> Dict:
        """Every metric and series as one JSON-able dict.

        Counters are read under their per-metric locks, so a snapshot
        taken while writers hammer the registry is internally consistent
        and successive snapshots of a counter are monotonic.
        """
        with self._lock:
            metrics = list(self._metrics.values())
        return {
            "version": 1,
            "metrics": [metric.snapshot() for metric in metrics],
        }

    # -- export (delegates to repro.obs.export) ------------------------

    def to_prometheus(self) -> str:
        """This registry in the Prometheus text exposition format."""
        from repro.obs.export import render_exposition

        return render_exposition(self.snapshot())

    def write_snapshot(self, path) -> "Path":
        """Atomically write the JSON snapshot to ``path``."""
        from repro.obs.export import write_snapshot

        return write_snapshot(self.snapshot(), path)


#: Shared disabled registry: instrumented components take this when
#: observability is configured off.
NULL_METRICS = MetricsRegistry(enabled=False)

_default_metrics: Optional[MetricsRegistry] = None
_default_lock = threading.Lock()


def default_metrics() -> MetricsRegistry:
    """The process-wide registry instrumented components default to."""
    global _default_metrics
    with _default_lock:
        if _default_metrics is None:
            _default_metrics = MetricsRegistry()
        return _default_metrics


def set_default_metrics(registry: MetricsRegistry) -> Optional[MetricsRegistry]:
    """Install ``registry`` as the process default; returns the old one."""
    global _default_metrics
    with _default_lock:
        previous, _default_metrics = _default_metrics, registry
        return previous
