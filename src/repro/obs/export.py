"""Scrapeable exporters for the metrics registry.

Two wire formats over one :meth:`MetricsRegistry.snapshot` payload:

- **JSON snapshot** — :func:`write_snapshot` / :func:`load_snapshot`; the
  registry's full state (histogram series carry derived p50/p95/p99), as
  an atomic file write a dashboard or the ``repro stats`` subcommand can
  poll.
- **Prometheus text exposition** — :func:`render_exposition` renders the
  classic ``# TYPE`` / ``name{label="v"} value`` format (cumulative
  ``_bucket`` series with ``le`` labels, ``_sum``/``_count``);
  :func:`parse_exposition` is the matching minimal parser used by the CI
  smoke job and tests to validate what a scraper would ingest.

:class:`SnapshotWriter` is the background half: a daemon thread that
periodically dumps both formats (``path`` and ``path + ".prom"``) so an
external scraper only ever reads complete, atomically-replaced files.
"""

from __future__ import annotations

import json
import math
import os
import re
import threading
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.obs.metrics import MetricsRegistry

_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_PAIR_RE = re.compile(
    r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$'
)


class ExpositionError(ValueError):
    """A text-exposition payload is malformed."""


def _escape_label(value: str) -> str:
    return "".join(_ESCAPES.get(ch, ch) for ch in str(value))


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _render_labels(labels: Dict[str, str], extra: Tuple = ()) -> str:
    pairs = [(k, v) for k, v in labels.items()] + list(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def render_exposition(snapshot: Dict) -> str:
    """Render a registry snapshot in the Prometheus text format."""
    lines: List[str] = []
    for metric in snapshot.get("metrics", ()):
        name, kind = metric["name"], metric["type"]
        if metric.get("help"):
            help_text = metric["help"].replace("\\", "\\\\").replace("\n", "\\n")
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for series in metric.get("series", ()):
            labels = series.get("labels", {})
            if kind in ("counter", "gauge"):
                lines.append(
                    f"{name}{_render_labels(labels)} "
                    f"{_format_value(series['value'])}"
                )
            elif kind == "histogram":
                for bound, cumulative in series["buckets"]:
                    le = "+Inf" if bound == "+Inf" else _format_value(bound)
                    lines.append(
                        f"{name}_bucket"
                        f"{_render_labels(labels, (('le', le),))} "
                        f"{cumulative}"
                    )
                lines.append(
                    f"{name}_sum{_render_labels(labels)} "
                    f"{_format_value(series['sum'])}"
                )
                lines.append(
                    f"{name}_count{_render_labels(labels)} {series['count']}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def _parse_labels(text: Optional[str]) -> Dict[str, str]:
    if not text:
        return {}
    labels: Dict[str, str] = {}
    # Split on commas outside quotes — label values may contain commas.
    parts, depth, current = [], False, []
    for ch in text:
        if ch == '"' and (not current or current[-1] != "\\"):
            depth = not depth
        if ch == "," and not depth:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current))
    for part in parts:
        match = _LABEL_PAIR_RE.match(part.strip())
        if not match:
            raise ExpositionError(f"malformed label pair {part.strip()!r}")
        value = match.group("value")
        value = (
            value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
        )
        labels[match.group("name")] = value
    return labels


def parse_exposition(text: str) -> Dict[str, Dict]:
    """Parse Prometheus text exposition into ``{metric: family}`` dicts.

    Each family is ``{"type", "help", "samples"}`` where samples are
    ``(sample_name, labels_dict, value)`` tuples — ``sample_name`` keeps
    the ``_bucket``/``_sum``/``_count`` suffixes of histogram series.
    Raises :class:`ExpositionError` on any malformed line, and checks
    histogram bucket series are cumulative (non-decreasing by ``le``).
    """
    families: Dict[str, Dict] = {}
    current: Optional[str] = None
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            try:
                _, _, name, help_text = line.split(" ", 3)
            except ValueError:
                _, _, name = line.split(" ", 2)
                help_text = ""
            families.setdefault(
                name, {"type": "untyped", "help": "", "samples": []}
            )["help"] = help_text
            current = name
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                raise ExpositionError(f"line {number}: malformed TYPE: {raw!r}")
            _, _, name, kind = parts
            if kind not in ("counter", "gauge", "histogram", "summary",
                            "untyped"):
                raise ExpositionError(
                    f"line {number}: unknown metric type {kind!r}"
                )
            families.setdefault(
                name, {"type": kind, "help": "", "samples": []}
            )["type"] = kind
            current = name
            continue
        if line.startswith("#"):
            continue  # other comments are legal and ignored
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ExpositionError(f"line {number}: malformed sample: {raw!r}")
        sample_name = match.group("name")
        labels = _parse_labels(match.group("labels"))
        raw_value = match.group("value")
        try:
            value = (
                math.inf if raw_value == "+Inf" else float(raw_value)
            )
        except ValueError:
            raise ExpositionError(
                f"line {number}: non-numeric value {raw_value!r}"
            ) from None
        family = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
            if base and base in families and families[base]["type"] == "histogram":
                family = base
                break
        if family not in families:
            # A bare sample without TYPE metadata is legal ("untyped").
            families[family] = {"type": "untyped", "help": "", "samples": []}
        families[family]["samples"].append((sample_name, labels, value))
        current = family
    _check_histograms(families)
    return families


def _check_histograms(families: Dict[str, Dict]) -> None:
    for name, family in families.items():
        if family["type"] != "histogram":
            continue
        series: Dict[Tuple, List[Tuple[float, float]]] = {}
        for sample_name, labels, value in family["samples"]:
            if not sample_name.endswith("_bucket"):
                continue
            if "le" not in labels:
                raise ExpositionError(
                    f"{name}: histogram bucket sample without le label"
                )
            le = labels["le"]
            bound = math.inf if le == "+Inf" else float(le)
            key = tuple(
                sorted((k, v) for k, v in labels.items() if k != "le")
            )
            series.setdefault(key, []).append((bound, value))
        for key, buckets in series.items():
            buckets.sort(key=lambda item: item[0])
            counts = [count for _, count in buckets]
            if any(b > a for b, a in zip(counts, counts[1:])):
                raise ExpositionError(
                    f"{name}: bucket counts are not cumulative for "
                    f"series {dict(key)}"
                )
            if not buckets or buckets[-1][0] != math.inf:
                raise ExpositionError(f"{name}: missing +Inf bucket")


# ---------------------------------------------------------------------------
# Snapshot files


def _atomic_write(path: Path, text: str) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp.write_text(text)
    os.replace(tmp, path)
    return path


def write_snapshot(snapshot: Dict, path: Union[str, Path]) -> Path:
    """Atomically write a JSON snapshot so scrapers never read a torn file."""
    return _atomic_write(
        Path(path), json.dumps(snapshot, indent=1, sort_keys=True) + "\n"
    )


def load_snapshot(path: Union[str, Path]) -> Dict:
    return json.loads(Path(path).read_text())


def exposition_path(path: Union[str, Path]) -> Path:
    """The text-exposition sibling of a JSON snapshot path."""
    path = Path(path)
    return path.with_name(path.name + ".prom")


class SnapshotWriter:
    """Background thread periodically dumping a registry to disk.

    Writes the JSON snapshot to ``path`` and the Prometheus text format to
    ``path + ".prom"`` every ``interval`` seconds, plus a final dump on
    :meth:`stop` — so a run that ends between ticks still leaves its last
    state behind.  Both writes are atomic replaces.
    """

    def __init__(
        self,
        metrics: MetricsRegistry,
        path: Union[str, Path],
        interval: float = 5.0,
        write_exposition: bool = True,
    ):
        if interval <= 0:
            raise ValueError("snapshot interval must be > 0 seconds")
        self.metrics = metrics
        self.path = Path(path)
        self.interval = float(interval)
        self.write_exposition = write_exposition
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._writes = 0
        self._lock = threading.Lock()

    @property
    def writes(self) -> int:
        with self._lock:
            return self._writes

    def write_once(self) -> Path:
        """One synchronous dump of both formats."""
        snapshot = self.metrics.snapshot()
        written = write_snapshot(snapshot, self.path)
        if self.write_exposition:
            _atomic_write(
                exposition_path(self.path), render_exposition(snapshot)
            )
        with self._lock:
            self._writes += 1
        return written

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.write_once()
            except Exception:
                # A transient filesystem error must not kill the writer —
                # the next tick retries.
                pass

    def start(self) -> "SnapshotWriter":
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-obs-snapshot", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, write_final: bool = True) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if write_final:
            self.write_once()

    def __enter__(self) -> "SnapshotWriter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
