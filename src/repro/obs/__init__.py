"""Observability: metrics registry, scrapeable exporters, request tracing.

The telemetry layer of the serving stack, stdlib-only:

- :mod:`repro.obs.metrics` — thread-safe :class:`MetricsRegistry` of
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` instruments
  (fixed buckets, derived p50/p95/p99), with a process-wide default
  (:func:`default_metrics`) and a shared disabled registry
  (:data:`NULL_METRICS`) whose instruments are no-ops.
- :mod:`repro.obs.export` — the JSON snapshot and Prometheus
  text-exposition exporters, the matching minimal exposition parser, and
  the background :class:`SnapshotWriter` dumping both formats
  periodically.
- :mod:`repro.obs.trace` — the span API: per-request span trees
  (``tracer.trace(...)`` / ``tracer.span(...)`` / ``tracer.record(...)``)
  following a job through admission → queue wait → batch gather →
  execute → legalize → store persist, exportable as JSON lines.

Every serve-stack component (:class:`~repro.serve.engine.ServeEngine`,
:class:`~repro.serve.service.PatternService`,
:class:`~repro.serve.registry.ModelRegistry`,
:class:`~repro.serve.store.LibraryStore`,
:class:`~repro.api.pipeline.PatternPipeline`) accepts an explicit
``metrics=`` registry and defaults to the process-wide one;
:class:`~repro.api.config.ObsConfig` switches a configured pipeline's
observability off (null instruments) or on with snapshot/trace outputs.
"""

from repro.obs.export import (
    ExpositionError,
    SnapshotWriter,
    exposition_path,
    load_snapshot,
    parse_exposition,
    render_exposition,
    write_snapshot,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    default_metrics,
    set_default_metrics,
    validate_buckets,
)
from repro.obs.trace import NULL_TRACER, Span, Tracer, default_tracer

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "ExpositionError",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "SnapshotWriter",
    "Span",
    "Tracer",
    "default_metrics",
    "default_tracer",
    "exposition_path",
    "load_snapshot",
    "parse_exposition",
    "render_exposition",
    "set_default_metrics",
    "validate_buckets",
    "write_snapshot",
]
