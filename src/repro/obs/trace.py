"""Lightweight request tracing: per-request span trees, JSONL export.

A :class:`Tracer` records :class:`Span` intervals — named, nestable,
attribute-tagged — grouped by ``trace_id`` (the serving stack uses the
request id).  Inside one thread, ``with tracer.trace("request",
request_id=7)`` opens a root span and ``with tracer.span("legalize")``
nests under whatever is currently open; work measured elsewhere (the
engine's executor stamps job timestamps on worker threads) is attached
after the fact with :meth:`Tracer.record`, which parents to the caller's
current span.  This is how one request's tree follows its job through
admission → queue wait → batch gather → execute → legalize → store
persist even though the middle hops run on engine workers.

Timestamps are ``time.perf_counter()`` seconds — monotonic and
process-relative, matching every other wall measurement in the serving
stack, so spans line up exactly with :class:`BatchRecord` walls.

Finished spans land in a bounded deque (oldest evicted first);
:meth:`Tracer.tree` reassembles one request's nested tree and
:meth:`Tracer.export_jsonl` writes spans as JSON lines.  A tracer built
with ``enabled=False`` (or the shared :data:`NULL_TRACER`) turns every
call into a no-op.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional, Union


class Span:
    """One named, closed interval of a trace."""

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "start", "end", "attrs"
    )

    def __init__(
        self,
        name: str,
        trace_id,
        span_id: int,
        parent_id: Optional[int],
        start: float,
        end: float,
        attrs: Dict,
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end = end
        self.attrs = attrs

    @property
    def duration(self) -> float:
        return max(self.end - self.start, 0.0)

    def as_dict(self) -> Dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": round(self.start, 6),
            "end": round(self.end, 6),
            "duration": round(self.duration, 6),
            **({"attrs": dict(self.attrs)} if self.attrs else {}),
        }


class _OpenSpan:
    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id, span_id: int):
        self.trace_id = trace_id
        self.span_id = span_id


class Tracer:
    """Collects spans from many threads into one bounded buffer."""

    def __init__(self, enabled: bool = True, max_spans: int = 10000):
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.enabled = bool(enabled)
        self.max_spans = int(max_spans)
        self._spans: "deque[Span]" = deque(maxlen=max_spans)
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._local = threading.local()

    # -- context -------------------------------------------------------

    def _stack(self) -> List[_OpenSpan]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Optional[_OpenSpan]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def trace(self, name: str, request_id=None, **attrs):
        """Open a *root* span for a new trace (id = ``request_id``)."""
        if not self.enabled:
            yield None
            return
        trace_id = request_id if request_id is not None else next(self._ids)
        with self._open(name, trace_id, parent_id=None, attrs=attrs) as span:
            yield span

    @contextmanager
    def span(self, name: str, **attrs):
        """Open a child of the current span (or a fresh root trace)."""
        if not self.enabled:
            yield None
            return
        current = self.current()
        if current is None:
            trace_id, parent_id = next(self._ids), None
        else:
            trace_id, parent_id = current.trace_id, current.span_id
        with self._open(name, trace_id, parent_id, attrs) as span:
            yield span

    @contextmanager
    def _open(self, name, trace_id, parent_id, attrs):
        span_id = next(self._ids)
        handle = _OpenSpan(trace_id, span_id)
        stack = self._stack()
        stack.append(handle)
        started = time.perf_counter()
        try:
            yield handle
        finally:
            ended = time.perf_counter()
            # Pop back to this handle even if an inner span leaked open.
            while stack and stack[-1] is not handle:
                stack.pop()
            if stack:
                stack.pop()
            self._append(
                Span(name, trace_id, span_id, parent_id, started, ended,
                     dict(attrs))
            )

    def record(
        self,
        name: str,
        start: float,
        end: float,
        trace_id=None,
        parent_id: Optional[int] = None,
        **attrs,
    ) -> Optional[Span]:
        """Attach an already-measured interval to the current span.

        ``start``/``end`` are ``time.perf_counter()`` instants (e.g. the
        engine's job timestamps).  Explicit ``trace_id``/``parent_id``
        override the caller's context — the cross-thread escape hatch.
        """
        if not self.enabled:
            return None
        if trace_id is None or parent_id is None:
            current = self.current()
            if current is not None:
                if trace_id is None:
                    trace_id = current.trace_id
                if parent_id is None:
                    parent_id = current.span_id
        if trace_id is None:
            trace_id = next(self._ids)
        span = Span(
            name, trace_id, next(self._ids), parent_id,
            float(start), float(end), dict(attrs),
        )
        self._append(span)
        return span

    def _append(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    # -- reading -------------------------------------------------------

    def spans(self, trace_id=None) -> List[Span]:
        with self._lock:
            spans = list(self._spans)
        if trace_id is None:
            return spans
        return [span for span in spans if span.trace_id == trace_id]

    def trace_ids(self) -> List:
        seen: Dict = {}
        for span in self.spans():
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def tree(self, trace_id) -> Optional[Dict]:
        """One trace's spans as a nested dict (children sorted by start).

        Spans whose parent was evicted from the buffer (or recorded
        without a parent) attach under the root; with no root span at
        all, a synthetic ``"trace"`` root is produced so the tree is
        always a single dict.
        """
        spans = sorted(self.spans(trace_id), key=lambda s: s.start)
        if not spans:
            return None
        nodes = {
            span.span_id: {**span.as_dict(), "children": []}
            for span in spans
        }
        roots = []
        for span in spans:
            parent = nodes.get(span.parent_id)
            if parent is not None and span.parent_id != span.span_id:
                parent["children"].append(nodes[span.span_id])
            else:
                roots.append(nodes[span.span_id])
        if len(roots) == 1:
            return roots[0]
        start = min(span.start for span in spans)
        end = max(span.end for span in spans)
        return {
            "name": "trace",
            "trace_id": trace_id,
            "span_id": 0,
            "parent_id": None,
            "start": round(start, 6),
            "end": round(end, 6),
            "duration": round(end - start, 6),
            "children": roots,
        }

    def export_jsonl(
        self, path: Union[str, Path], trace_id=None
    ) -> Path:
        """Write spans (optionally one trace's) as JSON lines."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        lines = [
            json.dumps(span.as_dict(), sort_keys=True)
            for span in self.spans(trace_id)
        ]
        path.write_text("\n".join(lines) + ("\n" if lines else ""))
        return path

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()


#: Shared disabled tracer: every call is a no-op.
NULL_TRACER = Tracer(enabled=False)

_default_tracer: Optional[Tracer] = None
_default_tracer_lock = threading.Lock()


def default_tracer() -> Tracer:
    """The process-wide tracer components default to."""
    global _default_tracer
    with _default_tracer_lock:
        if _default_tracer is None:
            _default_tracer = Tracer()
        return _default_tracer
