"""Generation operators: modification, extension, concatenation."""

from repro.ops.concat import (
    ConcatResult,
    concat_legalized_patterns,
    concat_samplings,
    naive_concat,
)
from repro.ops.extend import (
    ExtensionResult,
    extend,
    in_paint,
    n_in_samplings,
    n_out_samplings,
    out_paint,
)
from repro.ops.modify import modify, modify_region, region_mask

__all__ = [
    "ConcatResult",
    "ExtensionResult",
    "concat_legalized_patterns",
    "concat_samplings",
    "extend",
    "in_paint",
    "modify",
    "modify_region",
    "n_in_samplings",
    "n_out_samplings",
    "naive_concat",
    "out_paint",
    "region_mask",
]
