"""Free-size pattern extension via In-Painting and Out-Painting (Fig. 7).

Both methods synthesise a ``target_shape`` topology from a window-sized
model, touching only one model window at a time (the paper's
memory-friendly "working space"):

- **Out-Painting** grows an existing pattern outward: windows slide with a
  stride and each new window is re-painted conditioned on its already-known
  overlap.  ``N_out = (ceil((W-L)/S)+1) * (ceil((H-L)/S)+1)`` samplings.
- **In-Painting** first lays independent tiles on a grid, then re-paints the
  seams (vertical, horizontal, then the corner crossings) so adjacent tiles
  merge.  ``N_in = (2*ceil(W/L)-1) * (2*ceil(H/L)-1)`` samplings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.diffusion.model import ConditionalDiffusionModel
from repro.ops.modify import modify


def n_in_samplings(width: int, height: int, window: int) -> int:
    """Paper formula: samplings used by In-Painting extension."""
    gx = math.ceil(width / window)
    gy = math.ceil(height / window)
    return (2 * gx - 1) * (2 * gy - 1)


def n_out_samplings(width: int, height: int, window: int, stride: int) -> int:
    """Paper formula: samplings used by Out-Painting extension."""
    nx = math.ceil(max(0, width - window) / stride) + 1
    ny = math.ceil(max(0, height - window) / stride) + 1
    return nx * ny


@dataclass
class ExtensionResult:
    """Extended topology plus bookkeeping for the agent's documents."""

    topology: np.ndarray
    method: str
    samplings: int
    windows: List[Tuple[int, int]] = field(default_factory=list)


def _window_starts(extent: int, window: int, stride: int) -> List[int]:
    """Window start offsets covering ``[0, extent)`` with a final flush fit."""
    if extent <= window:
        return [0]
    starts = list(range(0, extent - window, stride))
    starts.append(extent - window)
    return starts


def out_paint(
    model: ConditionalDiffusionModel,
    seed_topology: np.ndarray,
    target_shape: Tuple[int, int],
    condition: Optional[int],
    rng: np.random.Generator,
    stride: Optional[int] = None,
    sampler_steps=None,
) -> ExtensionResult:
    """Extend ``seed_topology`` to ``target_shape`` by Out-Painting.

    The seed is placed at the origin; windows are visited in raster order so
    every new window overlaps already-known cells on its top/left border.
    """
    seed = np.asarray(seed_topology, dtype=np.uint8)
    window = model.window
    stride = window // 2 if stride is None else stride
    if not 0 < stride <= window:
        raise ValueError("stride must be in (0, window]")
    height, width = target_shape
    if seed.shape[0] > height or seed.shape[1] > width:
        raise ValueError("seed larger than target shape")

    canvas = np.zeros((height, width), dtype=np.uint8)
    known = np.zeros((height, width), dtype=np.uint8)
    canvas[: seed.shape[0], : seed.shape[1]] = seed
    known[: seed.shape[0], : seed.shape[1]] = 1

    samplings = 0
    visited: List[Tuple[int, int]] = []
    for r0 in _window_starts(height, window, stride):
        for c0 in _window_starts(width, window, stride):
            sub_known = known[r0 : r0 + window, c0 : c0 + window]
            if sub_known.min() == 1:
                continue  # fully known, nothing to generate
            sub_canvas = canvas[r0 : r0 + window, c0 : c0 + window]
            painted = modify(
                model, sub_canvas, sub_known, condition, rng,
                sampler_steps=sampler_steps,
            )
            canvas[r0 : r0 + window, c0 : c0 + window] = painted
            known[r0 : r0 + window, c0 : c0 + window] = 1
            samplings += 1
            visited.append((r0, c0))
    return ExtensionResult(
        topology=canvas, method="out", samplings=samplings, windows=visited
    )


def in_paint(
    model: ConditionalDiffusionModel,
    target_shape: Tuple[int, int],
    condition: Optional[int],
    rng: np.random.Generator,
    seed_topology: Optional[np.ndarray] = None,
    seam_band: Optional[int] = None,
    sampler_steps=None,
) -> ExtensionResult:
    """Synthesise a ``target_shape`` topology by In-Painting.

    Independent window tiles are laid on a grid (the optional seed becomes
    tile (0, 0)); the adjacency borders and corners of the concatenated
    matrix are then re-painted (Fig. 7).  The canvas is generated at the
    tile-aligned size and cropped to ``target_shape``.
    """
    window = model.window
    band = seam_band or window // 2
    if not 0 < band < window:
        raise ValueError("seam_band must be in (0, window)")
    height, width = target_shape
    gy = math.ceil(height / window)
    gx = math.ceil(width / window)
    full_h, full_w = gy * window, gx * window

    canvas = np.zeros((full_h, full_w), dtype=np.uint8)
    samplings = 0
    visited: List[Tuple[int, int]] = []
    for j in range(gy):
        for i in range(gx):
            if i == 0 and j == 0 and seed_topology is not None:
                seed = np.asarray(seed_topology, dtype=np.uint8)
                if seed.shape != (window, window):
                    raise ValueError("seed must match the model window")
                tile = seed
            else:
                tile = model.sample(
                    1, condition, rng, sampler_steps=sampler_steps
                )[0]
                samplings += 1
            canvas[j * window : (j + 1) * window, i * window : (i + 1) * window] = tile
            visited.append((j * window, i * window))

    half = band // 2

    def repaint(r0: int, c0: int, keep: np.ndarray) -> None:
        nonlocal samplings
        sub = canvas[r0 : r0 + window, c0 : c0 + window]
        canvas[r0 : r0 + window, c0 : c0 + window] = modify(
            model, sub, keep, condition, rng, sampler_steps=sampler_steps
        )
        samplings += 1
        visited.append((r0, c0))

    # Vertical seams: windows centred on each internal tile boundary.
    for i in range(1, gx):
        c0 = i * window - window // 2
        for j in range(gy):
            keep = np.ones((window, window), dtype=np.uint8)
            mid = window // 2
            keep[:, mid - half : mid + half] = 0
            repaint(j * window, c0, keep)
    # Horizontal seams.
    for j in range(1, gy):
        r0 = j * window - window // 2
        for i in range(gx):
            keep = np.ones((window, window), dtype=np.uint8)
            mid = window // 2
            keep[mid - half : mid + half, :] = 0
            repaint(r0, i * window, keep)
    # Corner crossings.
    for j in range(1, gy):
        for i in range(1, gx):
            keep = np.ones((window, window), dtype=np.uint8)
            mid = window // 2
            keep[mid - half : mid + half, mid - half : mid + half] = 0
            repaint(j * window - window // 2, i * window - window // 2, keep)

    return ExtensionResult(
        topology=canvas[:height, :width],
        method="in",
        samplings=samplings,
        windows=visited,
    )


def extend(
    model: ConditionalDiffusionModel,
    target_shape: Tuple[int, int],
    condition: Optional[int],
    rng: np.random.Generator,
    method: str = "out",
    seed_topology: Optional[np.ndarray] = None,
    stride: Optional[int] = None,
    sampler_steps=None,
) -> ExtensionResult:
    """Dispatch to In-Painting or Out-Painting extension.

    When no seed is given one window-sized sample is drawn first (counted in
    ``samplings``), matching the agent's standard pipeline (Fig. 4).
    """
    if method not in ("in", "out"):
        raise ValueError(f"unknown extension method {method!r}")
    extra = 0
    if seed_topology is None:
        seed_topology = model.sample(
            1, condition, rng, sampler_steps=sampler_steps
        )[0]
        extra = 1
    if method == "out":
        result = out_paint(
            model, seed_topology, target_shape, condition, rng, stride=stride,
            sampler_steps=sampler_steps,
        )
    else:
        result = in_paint(
            model, target_shape, condition, rng, seed_topology=seed_topology,
            sampler_steps=sampler_steps,
        )
    result.samplings += extra
    return result
