"""Naive tile concatenation: the free-size baseline of Table 1.

"DiffPattern w/ Concatenation" can only stitch *legalized fixed-size
patterns* side by side: each window-sized topology is legalized on its own,
and the resulting physical patches are placed on a grid.  Nothing reasons
about the seams — abutting patches routinely violate Space/Width rules (and
create corner touches) along the stitch lines, and no geometry assignment
can repair them after the fact because each patch's geometry is already
fixed.  This is exactly why the baseline's legality collapses as the target
size grows.  (ChatPattern instead synthesises one big topology via
extension and legalizes it *jointly*.)

``naive_concat`` remains available for stitching raw topologies (used by
ablations); ``concat_legalized_patterns`` is the faithful Table-1 baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.diffusion.model import ConditionalDiffusionModel
from repro.drc.rules import DesignRules
from repro.legalize.legalizer import legalize
from repro.squish.encode import encode_rects
from repro.squish.pattern import SquishPattern
from repro.geometry.rect import Rect


def naive_concat(
    model: ConditionalDiffusionModel,
    target_shape: Tuple[int, int],
    condition: Optional[int],
    rng: np.random.Generator,
) -> np.ndarray:
    """Tile independent topology samples to cover ``target_shape``, crop."""
    window = model.window
    height, width = target_shape
    gy = math.ceil(height / window)
    gx = math.ceil(width / window)
    tiles = model.sample(gx * gy, condition, rng)
    canvas = np.zeros((gy * window, gx * window), dtype=np.uint8)
    idx = 0
    for j in range(gy):
        for i in range(gx):
            canvas[
                j * window : (j + 1) * window, i * window : (i + 1) * window
            ] = tiles[idx]
            idx += 1
    return canvas[:height, :width]


def concat_samplings(width: int, height: int, window: int) -> int:
    """Number of model samplings naive concatenation uses."""
    return math.ceil(width / window) * math.ceil(height / window)


@dataclass
class ConcatResult:
    """A stitched free-size pattern plus bookkeeping."""

    pattern: Optional[SquishPattern]
    tiles_failed: int = 0
    samplings: int = 0
    log: List[str] = field(default_factory=list)


def concat_legalized_patterns(
    model: ConditionalDiffusionModel,
    target_shape: Tuple[int, int],
    condition: Optional[int],
    rng: np.random.Generator,
    rules: DesignRules,
    tile_physical_nm: int,
    style: Optional[str] = None,
) -> ConcatResult:
    """The paper-faithful concatenation baseline.

    Each window tile is sampled and legalized *individually* into a
    ``tile_physical_nm`` square; the legal physical patches are then placed
    on a grid and re-encoded as one squish pattern.  The caller DRC-checks
    the stitched pattern — there is no joint legalization step, matching
    what a fixed-size generator can actually do.  A tile that fails its own
    legalization makes the whole stitched pattern illegal (``pattern`` is
    returned as ``None``), so the loop short-circuits immediately: sampling
    and legalizing the remaining tiles cannot change the outcome.
    """
    height, width = target_shape
    window = model.window
    gy = math.ceil(height / window)
    gx = math.ceil(width / window)
    result = ConcatResult(pattern=None)
    all_rects: List[Rect] = []
    for j in range(gy):
        for i in range(gx):
            topology = model.sample(1, condition, rng)[0]
            result.samplings += 1
            tile = legalize(
                topology, (tile_physical_nm, tile_physical_nm), rules, style=style
            )
            if not tile.ok:
                result.tiles_failed += 1
                result.log.append(
                    f"tile ({j},{i}) failed its own legalization; "
                    "aborting the doomed stitch without sampling the "
                    f"remaining {gy * gx - result.samplings} tile(s)"
                )
                return result
            dx_off = i * tile_physical_nm
            dy_off = j * tile_physical_nm
            all_rects.extend(
                r.translated(dx_off, dy_off) for r in tile.pattern.to_rects()
            )
    window_rect = Rect(0, 0, gx * tile_physical_nm, gy * tile_physical_nm)
    stitched = encode_rects(all_rects, window_rect, style=style)
    result.pattern = stitched
    result.log.append(
        f"stitched {gx}x{gy} legal patches into "
        f"{window_rect.x1}x{window_rect.y1} nm"
    )
    return result
