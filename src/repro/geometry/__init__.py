"""Rectilinear geometry primitives (rects, grids, polygons)."""

from repro.geometry.grid import (
    Run,
    RunSet,
    all_column_runs,
    all_row_runs,
    as_topology,
    column_run_set,
    column_runs,
    component_count,
    diagonal_touch_pairs,
    label_components,
    row_run_set,
    row_runs,
)
from repro.geometry.polygon import GridPolygon, extract_polygons
from repro.geometry.rect import Rect, bounding_box, clip_rects, merge_touching_rects

__all__ = [
    "Rect",
    "Run",
    "RunSet",
    "GridPolygon",
    "as_topology",
    "all_column_runs",
    "all_row_runs",
    "bounding_box",
    "clip_rects",
    "column_run_set",
    "column_runs",
    "component_count",
    "diagonal_touch_pairs",
    "extract_polygons",
    "label_components",
    "merge_touching_rects",
    "row_run_set",
    "row_runs",
]
