"""Axis-aligned rectangles in integer nanometre coordinates.

All layout geometry in this package is Manhattan (rectilinear).  A ``Rect``
is the primitive shape; polygons are unions of cell rectangles on the squish
grid (see :mod:`repro.geometry.polygon`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple


@dataclass(frozen=True, order=True)
class Rect:
    """A closed axis-aligned rectangle ``[x0, x1] x [y0, y1]`` in nm.

    Coordinates are stored as integers; ``x0 <= x1`` and ``y0 <= y1`` are
    enforced at construction time.
    """

    x0: int
    y0: int
    x1: int
    y1: int

    def __post_init__(self) -> None:
        if self.x1 < self.x0 or self.y1 < self.y0:
            raise ValueError(
                f"degenerate rect: ({self.x0},{self.y0})-({self.x1},{self.y1})"
            )

    @property
    def width(self) -> int:
        """Extent along the x axis in nm."""
        return self.x1 - self.x0

    @property
    def height(self) -> int:
        """Extent along the y axis in nm."""
        return self.y1 - self.y0

    @property
    def area(self) -> int:
        """Area in nm^2."""
        return self.width * self.height

    @property
    def center(self) -> Tuple[float, float]:
        """Geometric centre ``(cx, cy)``."""
        return ((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)

    def translated(self, dx: int, dy: int) -> "Rect":
        """Return a copy shifted by ``(dx, dy)``."""
        return Rect(self.x0 + dx, self.y0 + dy, self.x1 + dx, self.y1 + dy)

    def intersects(self, other: "Rect") -> bool:
        """True if the two closed rectangles share any point."""
        return not (
            self.x1 < other.x0
            or other.x1 < self.x0
            or self.y1 < other.y0
            or other.y1 < self.y0
        )

    def overlaps_interior(self, other: "Rect") -> bool:
        """True if the *open* interiors intersect (touching edges do not count)."""
        return not (
            self.x1 <= other.x0
            or other.x1 <= self.x0
            or self.y1 <= other.y0
            or other.y1 <= self.y0
        )

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """Return the intersection rectangle, or ``None`` if disjoint."""
        if not self.intersects(other):
            return None
        return Rect(
            max(self.x0, other.x0),
            max(self.y0, other.y0),
            min(self.x1, other.x1),
            min(self.y1, other.y1),
        )

    def contains_point(self, x: float, y: float) -> bool:
        """True if ``(x, y)`` lies inside or on the boundary."""
        return self.x0 <= x <= self.x1 and self.y0 <= y <= self.y1

    def contains_rect(self, other: "Rect") -> bool:
        """True if ``other`` lies fully inside this rectangle."""
        return (
            self.x0 <= other.x0
            and self.y0 <= other.y0
            and other.x1 <= self.x1
            and other.y1 <= self.y1
        )

    def distance(self, other: "Rect") -> float:
        """Euclidean separation between the two rectangles (0 if touching)."""
        dx = max(self.x0 - other.x1, other.x0 - self.x1, 0)
        dy = max(self.y0 - other.y1, other.y0 - self.y1, 0)
        return float((dx * dx + dy * dy) ** 0.5)


def bounding_box(rects: Iterable[Rect]) -> Rect:
    """Smallest rectangle covering every rectangle in ``rects``.

    Raises ``ValueError`` on an empty iterable.
    """
    rect_list = list(rects)
    if not rect_list:
        raise ValueError("bounding_box of empty rect collection")
    return Rect(
        min(r.x0 for r in rect_list),
        min(r.y0 for r in rect_list),
        max(r.x1 for r in rect_list),
        max(r.y1 for r in rect_list),
    )


def clip_rects(rects: Iterable[Rect], window: Rect) -> List[Rect]:
    """Clip every rectangle to ``window``, dropping empty intersections.

    Rectangles that degenerate to a zero-area sliver on the window border are
    dropped as well, since they carry no shape information.
    """
    clipped: List[Rect] = []
    for rect in rects:
        inter = rect.intersection(window)
        if inter is not None and inter.area > 0:
            clipped.append(inter)
    return clipped


def merge_touching_rects(rects: List[Rect]) -> List[List[Rect]]:
    """Group rectangles into connected clusters (touching or overlapping).

    Returns a list of clusters; rectangles that merely touch at a corner are
    considered connected, matching the polygon semantics of a layout layer.
    Uses a union-find over a sweep to stay near ``O(n log n)`` for typical
    layout inputs.
    """
    n = len(rects)
    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[ri] = rj

    order = sorted(range(n), key=lambda i: rects[i].x0)
    for idx, i in enumerate(order):
        for j in order[idx + 1 :]:
            if rects[j].x0 > rects[i].x1:
                break
            if rects[i].intersects(rects[j]):
                union(i, j)

    clusters: dict = {}
    for i in range(n):
        clusters.setdefault(find(i), []).append(rects[i])
    return list(clusters.values())
