"""Rectilinear polygons extracted from squish-grid cells.

A polygon is a 4-connected component of filled cells in a topology matrix,
carrying the physical delta vectors so its real dimensions can be computed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.geometry.grid import as_topology, label_components
from repro.geometry.rect import Rect


@dataclass
class GridPolygon:
    """One rectilinear polygon on the squish grid.

    ``cells`` holds ``(row, col)`` pairs; physical geometry is resolved
    against ``dx``/``dy`` delta vectors (nm per column / per row) together
    with the cumulative offsets implied by them.
    """

    label: int
    cells: List[Tuple[int, int]]
    dx: np.ndarray
    dy: np.ndarray

    def __post_init__(self) -> None:
        self.dx = np.asarray(self.dx, dtype=np.int64)
        self.dy = np.asarray(self.dy, dtype=np.int64)
        if not self.cells:
            raise ValueError("polygon must contain at least one cell")
        self._xs = np.concatenate(([0], np.cumsum(self.dx)))
        self._ys = np.concatenate(([0], np.cumsum(self.dy)))

    @property
    def area(self) -> int:
        """Physical area in nm^2 (sum of cell areas)."""
        return int(
            sum(int(self.dx[c]) * int(self.dy[r]) for r, c in self.cells)
        )

    @property
    def bbox(self) -> Rect:
        """Physical bounding box in nm."""
        rows = [r for r, _ in self.cells]
        cols = [c for _, c in self.cells]
        return Rect(
            int(self._xs[min(cols)]),
            int(self._ys[min(rows)]),
            int(self._xs[max(cols) + 1]),
            int(self._ys[max(rows) + 1]),
        )

    def cell_rects(self) -> List[Rect]:
        """One physical rectangle per grid cell (not merged)."""
        return [
            Rect(
                int(self._xs[c]),
                int(self._ys[r]),
                int(self._xs[c + 1]),
                int(self._ys[r + 1]),
            )
            for r, c in self.cells
        ]

    def horizontal_extents(self) -> List[Tuple[int, int, int]]:
        """Per-row maximal spans as ``(row, x0_nm, x1_nm)``."""
        by_row: dict = {}
        for r, c in self.cells:
            by_row.setdefault(r, []).append(c)
        spans: List[Tuple[int, int, int]] = []
        for r, cols in sorted(by_row.items()):
            cols.sort()
            start = prev = cols[0]
            for c in cols[1:]:
                if c == prev + 1:
                    prev = c
                    continue
                spans.append((r, int(self._xs[start]), int(self._xs[prev + 1])))
                start = prev = c
            spans.append((r, int(self._xs[start]), int(self._xs[prev + 1])))
        return spans

    def vertical_extents(self) -> List[Tuple[int, int, int]]:
        """Per-column maximal spans as ``(col, y0_nm, y1_nm)``."""
        by_col: dict = {}
        for r, c in self.cells:
            by_col.setdefault(c, []).append(r)
        spans: List[Tuple[int, int, int]] = []
        for c, rows in sorted(by_col.items()):
            rows.sort()
            start = prev = rows[0]
            for r in rows[1:]:
                if r == prev + 1:
                    prev = r
                    continue
                spans.append((c, int(self._ys[start]), int(self._ys[prev + 1])))
                start = prev = r
            spans.append((c, int(self._ys[start]), int(self._ys[prev + 1])))
        return spans

    def min_width(self) -> int:
        """Smallest span extent in either direction (the DRC width)."""
        widths = [x1 - x0 for _, x0, x1 in self.horizontal_extents()]
        heights = [y1 - y0 for _, y0, y1 in self.vertical_extents()]
        return int(min(widths + heights))


def extract_polygons(
    topology: np.ndarray, dx: Sequence[int], dy: Sequence[int]
) -> List[GridPolygon]:
    """Split a topology matrix into its connected rectilinear polygons."""
    t = as_topology(topology)
    dx_arr = np.asarray(dx, dtype=np.int64)
    dy_arr = np.asarray(dy, dtype=np.int64)
    if dx_arr.shape[0] != t.shape[1]:
        raise ValueError(
            f"dx length {dx_arr.shape[0]} != topology columns {t.shape[1]}"
        )
    if dy_arr.shape[0] != t.shape[0]:
        raise ValueError(
            f"dy length {dy_arr.shape[0]} != topology rows {t.shape[0]}"
        )
    labels = label_components(t, connectivity=4)
    polygons: List[GridPolygon] = []
    for lab in range(1, int(labels.max()) + 1):
        rows, cols = np.nonzero(labels == lab)
        cells = [(int(r), int(c)) for r, c in zip(rows, cols)]
        polygons.append(GridPolygon(label=lab, cells=cells, dx=dx_arr, dy=dy_arr))
    return polygons
