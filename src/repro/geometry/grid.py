"""Binary-grid utilities shared by the squish codec, DRC and legalizer.

A topology matrix ``T`` is a 2-D ``uint8`` array whose entries mark filled
(1) versus empty (0) squish cells.  Rows index the y axis (row 0 is the
bottom scan stripe) and columns index the x axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np
from scipy import ndimage


@dataclass(frozen=True)
class Run:
    """A maximal run of equal cells inside one row or column.

    ``index`` is the row (for horizontal runs) or column (for vertical runs),
    ``start``/``stop`` delimit the half-open cell span ``[start, stop)`` and
    ``value`` is the cell value (0 or 1).
    """

    index: int
    start: int
    stop: int
    value: int

    @property
    def length(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class RunSet:
    """All maximal runs of one scan direction, as a struct of arrays.

    The vectorized counterpart of a ``List[Run]``: entry ``i`` of the four
    parallel arrays describes one run, ordered by scan line then start cell
    (the same order the per-line extractors produce).  ``n_cells`` is the
    length of every scan line, so interiority (the window-DRC border
    exemption) is a pure array expression.
    """

    index: np.ndarray  # scan-line index per run (row for "x", column for "y")
    start: np.ndarray
    stop: np.ndarray
    value: np.ndarray
    n_lines: int
    n_cells: int

    def __len__(self) -> int:
        return int(self.index.shape[0])

    @property
    def lengths(self) -> np.ndarray:
        """Cell count of every run."""
        return self.stop - self.start

    @property
    def interior(self) -> np.ndarray:
        """Mask of runs not touching either end of their scan line."""
        return (self.start > 0) & (self.stop < self.n_cells)

    def runs(self) -> List[Run]:
        """Materialise per-run :class:`Run` views (compatibility path)."""
        return [
            Run(index=int(i), start=int(a), stop=int(b), value=int(v))
            for i, a, b, v in zip(self.index, self.start, self.stop, self.value)
        ]


def _run_set(lines: np.ndarray) -> RunSet:
    """Extract maximal runs of every row of ``lines`` in one vectorized pass.

    Boundaries are the positions where consecutive cells differ; each line
    contributes ``changes + 1`` runs.  ``np.nonzero`` returns change
    coordinates in row-major order, which is exactly the flattened run order,
    so starts/stops assemble by masked assignment without any Python loop.
    """
    n_lines, n_cells = lines.shape
    diff = lines[:, 1:] != lines[:, :-1]
    runs_per_line = 1 + np.count_nonzero(diff, axis=1)
    total = int(runs_per_line.sum())
    index = np.repeat(np.arange(n_lines, dtype=np.int64), runs_per_line)
    _, change_col = np.nonzero(diff)

    ends = np.cumsum(runs_per_line)
    is_first = np.zeros(total, dtype=bool)
    is_first[ends - runs_per_line] = True
    is_last = np.zeros(total, dtype=bool)
    is_last[ends - 1] = True

    starts = np.zeros(total, dtype=np.int64)
    starts[~is_first] = change_col + 1
    stops = np.full(total, n_cells, dtype=np.int64)
    stops[~is_last] = change_col + 1
    values = lines[index, starts]
    return RunSet(
        index=index,
        start=starts,
        stop=stops,
        value=values,
        n_lines=n_lines,
        n_cells=n_cells,
    )


def row_run_set(topology: np.ndarray) -> RunSet:
    """Vectorized :func:`all_row_runs`: every row's runs in one pass."""
    return _run_set(as_topology(topology))


def column_run_set(topology: np.ndarray) -> RunSet:
    """Vectorized :func:`all_column_runs`: every column's runs in one pass."""
    return _run_set(as_topology(topology).T)


def as_topology(array: np.ndarray) -> np.ndarray:
    """Validate and canonicalise a topology matrix to 2-D ``uint8`` of {0,1}."""
    t = np.asarray(array)
    if t.ndim != 2:
        raise ValueError(f"topology must be 2-D, got shape {t.shape}")
    if t.size == 0:
        raise ValueError("topology must be non-empty")
    t = t.astype(np.uint8, copy=False)
    if not np.isin(t, (0, 1)).all():
        raise ValueError("topology entries must be 0 or 1")
    return t


def row_runs(topology: np.ndarray, row: int) -> List[Run]:
    """Maximal constant runs along one row (scans the x axis)."""
    return _runs_1d(topology[row, :], row)


def column_runs(topology: np.ndarray, col: int) -> List[Run]:
    """Maximal constant runs along one column (scans the y axis)."""
    return _runs_1d(topology[:, col], col)


def _runs_1d(line: np.ndarray, index: int) -> List[Run]:
    change = np.flatnonzero(np.diff(line)) + 1
    bounds = np.concatenate(([0], change, [line.shape[0]]))
    return [
        Run(index=index, start=int(a), stop=int(b), value=int(line[a]))
        for a, b in zip(bounds[:-1], bounds[1:])
    ]


def all_row_runs(topology: np.ndarray) -> List[Run]:
    """Runs for every row, concatenated (vectorized extraction)."""
    return row_run_set(topology).runs()


def all_column_runs(topology: np.ndarray) -> List[Run]:
    """Runs for every column, concatenated (vectorized extraction)."""
    return column_run_set(topology).runs()


def label_components(topology: np.ndarray, connectivity: int = 4) -> np.ndarray:
    """Label 4- or 8-connected components of filled cells.

    Returns an ``int32`` array of the same shape where 0 marks empty cells and
    components are numbered from 1.
    """
    if connectivity == 4:
        structure = np.array([[0, 1, 0], [1, 1, 1], [0, 1, 0]])
    elif connectivity == 8:
        structure = np.ones((3, 3), dtype=int)
    else:
        raise ValueError("connectivity must be 4 or 8")
    labels, _ = ndimage.label(as_topology(topology), structure=structure)
    return labels.astype(np.int32)


def component_count(topology: np.ndarray, connectivity: int = 4) -> int:
    """Number of connected polygons in the topology."""
    labels = label_components(topology, connectivity)
    return int(labels.max())


def diagonal_touch_pairs(
    topology: np.ndarray, labels: np.ndarray = None
) -> List[tuple]:
    """Cells of *different* polygons touching only at a corner.

    Returns a list of ``(row, col)`` positions naming the lower-left cell of
    each offending 2x2 window.  Corner-touching polygons have zero physical
    spacing, which every space rule forbids.  ``labels`` may carry a
    precomputed 4-connected labelling to spare a relabel on hot paths.
    """
    t = as_topology(topology)
    if labels is None:
        labels = label_components(t, connectivity=4)
    a = labels[:-1, :-1]
    b = labels[1:, 1:]
    c = labels[:-1, 1:]
    d = labels[1:, :-1]
    diag1 = (a > 0) & (b > 0) & (a != b) & (c == 0) & (d == 0)
    diag2 = (c > 0) & (d > 0) & (c != d) & (a == 0) & (b == 0)
    rows, cols = np.nonzero(diag1 | diag2)
    return [(int(r), int(cc)) for r, cc in zip(rows, cols)]
