"""The conditional discrete diffusion generator (back-end of ChatPattern).

Bundles a noise schedule with a pluggable denoiser and exposes the three
primitives every higher-level tool builds on: batch sampling (Eq. 11), a
single reverse step (Eq. 9) and forward noising (Eq. 2).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.diffusion.denoisers.base import Denoiser
from repro.diffusion.denoisers.neighborhood import NeighborhoodDenoiser
from repro.diffusion.schedule import (
    DiffusionSchedule,
    SamplerSteps,
    validate_sampler_steps,
)


class ConditionalDiffusionModel:
    """Class-conditional 2-state discrete diffusion over topology matrices.

    Args:
        denoiser: the learned ``p_theta(x0 | x_k, c)`` backend.
        schedule: noise schedule; linear ramp as in the paper (Eq. 4).  The
            default is K=128 with a gentler ramp (0.003 -> 0.08) than the
            paper's K=1000 / 0.01 -> 0.5: with the paper's parameters the
            cumulative flip probability saturates at 0.5 within a small
            fraction of the chain, so only the final ~60 steps carry
            information — the shorter ramp keeps the same number of
            *informative* steps at an eighth of the CPU cost.  The denoisers
            are noise-level- (not step-) indexed, so any schedule can be
            swapped in at sampling time.
        window: the model's native output size (the paper's 128).
    """

    #: Backend-protocol declaration: ``sample_batch`` accepts the
    #: ``sampler_steps`` kwarg.  The serving engine checks this attribute
    #: (not the call signature) before forwarding step schedules, so
    #: legacy stand-in back-ends that lack it are simply never passed the
    #: kwarg.  Keep it in sync with the ``sample_batch`` signature.
    supports_sampler_steps = True

    def __init__(
        self,
        denoiser: Optional[Denoiser] = None,
        schedule: Optional[DiffusionSchedule] = None,
        window: int = 128,
        n_classes: int = 2,
        sampler: str = "x0",
        density_guidance: bool = True,
        sharpen: float = 2.0,
        polish_sweeps: int = 4,
        sampler_steps: SamplerSteps = "full",
    ):
        if sampler not in ("x0", "posterior"):
            raise ValueError("sampler must be 'x0' or 'posterior'")
        self.denoiser = denoiser or NeighborhoodDenoiser(n_classes=n_classes)
        self.schedule = schedule or DiffusionSchedule.linear(128, 0.003, 0.08)
        self.window = window
        self.sampler = sampler
        self.density_guidance = density_guidance
        self.sharpen = float(sharpen)
        self.polish_sweeps = int(polish_sweeps)
        #: default reverse-step schedule ("full" | "bucketed" | int); every
        #: sampling entry point accepts a per-call override.
        self.sampler_steps = validate_sampler_steps(sampler_steps)
        self.fitted = False

    @property
    def n_classes(self) -> int:
        return self.denoiser.n_classes

    def fit(
        self,
        topologies: np.ndarray,
        conditions: Optional[np.ndarray],
        rng: np.random.Generator,
        **fit_kwargs,
    ) -> dict:
        """Train the denoiser on clean topologies (+ class conditions)."""
        info = self.denoiser.fit(
            np.asarray(topologies, dtype=np.uint8),
            conditions,
            self.schedule,
            rng,
            **fit_kwargs,
        )
        self.fitted = True
        return info

    def prior_sample(
        self, shape: Tuple[int, ...], rng: np.random.Generator
    ) -> np.ndarray:
        """``T_K``: the fully-noised stationary distribution (fair coin)."""
        return (rng.random(shape) < 0.5).astype(np.uint8)

    def reverse_step_plan(
        self, sampler_steps: SamplerSteps = None
    ) -> List[Tuple[int, int]]:
        """The ``(k, k_next)`` pairs a reverse chain visits, in order.

        ``sampler_steps`` overrides the model default (``None`` keeps it).
        Under ``"full"`` the plan is the exact original chain
        (``(K, K-1) .. (2, 1), (1, 0)``); ``"bucketed"`` collapses steps
        sharing a denoiser noise bucket to one representative, so a K-step
        schedule costs ~``n_buckets`` denoiser evaluations; an int picks
        that many evenly spaced steps.  ``k_next == 0`` marks the
        deterministic final step.
        """
        value = self.sampler_steps if sampler_steps is None else sampler_steps
        ks = self.schedule.reverse_steps(
            value, n_buckets=getattr(self.denoiser, "n_buckets", None)
        )
        return list(zip(ks, ks[1:] + [0]))

    def denoise_evals(self, sampler_steps: SamplerSteps = None) -> int:
        """Denoiser evaluations one trajectory costs under a step spec."""
        return len(self.reverse_step_plan(sampler_steps))

    def denoise_step(
        self,
        xk: np.ndarray,
        k: int,
        condition: Optional[int],
        rng: np.random.Generator,
        deterministic: bool = False,
        k_next: Optional[int] = None,
    ) -> np.ndarray:
        """One reverse step ``x_k -> x_{k_next}`` (Eq. 9; default ``k - 1``).

        Two samplers implement the step:

        - ``"posterior"`` — the exact Eq. (5)/(9) ancestral step, summing the
          closed-form posterior over the predicted ``x_0``.
        - ``"x0"`` (default) — x0-resampling: draw ``x0_hat ~ p_theta(x0|x_k,c)``
          and re-noise it to level ``k_next`` via the forward process.  Both
          target the same learned posterior; x0-resampling applies the
          denoiser at full strength every step, which anneals global
          structure far more effectively for local (tabular) denoisers and
          is a standard sampler choice in D3PM implementations.

        ``k_next`` is the step the state is re-noised to — ``k - 1`` for the
        classic chain, further for the strided step schedules of
        :meth:`reverse_step_plan` (x0-resampling re-noises to any level in
        closed form, so a stride costs nothing extra; the adjacent-step
        posterior sampler falls back to the same jump).  ``k_next == 0``
        returns the clean prediction.  ``deterministic`` takes the mode
        instead of sampling — used for the final step, the discrete
        analogue of dropping the noise term at k=1.
        """
        if k_next is None:
            k_next = k - 1
        if not 0 <= k_next < k:
            raise ValueError(f"k_next {k_next} must be in [0, {k})")
        level = self.schedule.beta_bar(k)
        p_x0 = self.denoiser.predict_x0(xk, level, condition)
        if self.sharpen > 0:
            # Progressive sharpening: as the noise anneals away, raise the
            # inverse temperature of the x0 posterior.  Wobbling edges (one
            # cell in/out per row) are the costliest artefact for
            # legalization — they chain interval constraints across rows —
            # and near-deterministic late steps straighten them out.
            gamma = 1.0 + self.sharpen * (1.0 - level / 0.5)
            p_x0 = p_x0 ** gamma / (p_x0 ** gamma + (1.0 - p_x0) ** gamma)
        if self.density_guidance:
            p_x0 = _calibrate_density(p_x0, self.denoiser.target_fill(condition))
        if self.sampler == "posterior" and k_next == k - 1:
            p_prev = self.schedule.posterior_mix(xk, p_x0, k)
            if deterministic:
                return (p_prev > 0.5).astype(np.uint8)
            return (rng.random(xk.shape) < p_prev).astype(np.uint8)
        if deterministic:
            x0_hat = (p_x0 > 0.5).astype(np.uint8)
        else:
            x0_hat = (rng.random(xk.shape) < p_x0).astype(np.uint8)
        if k_next == 0:
            return x0_hat
        return self.schedule.forward_sample(x0_hat, k_next, rng)

    def polish(
        self,
        x0: np.ndarray,
        condition: Optional[int],
        sweeps: Optional[int] = None,
    ) -> np.ndarray:
        """Deterministic low-noise denoiser sweeps (speckle removal).

        Re-applies the k=1 denoiser in mode-taking form until fixpoint or
        ``sweeps`` iterations; equivalent to appending extra deterministic
        final steps to the reverse chain.
        """
        if sweeps is None:
            sweeps = self.polish_sweeps
        level = self.schedule.beta_bar(1)
        x = np.asarray(x0, dtype=np.uint8)
        for _ in range(sweeps):
            p = self.denoiser.predict_x0(x, level, condition)
            if self.density_guidance:
                # Guided mode-taking: threshold at the quantile that keeps
                # the class fill rate.  A fixed 0.5 threshold would erase
                # (or flood) the pattern whenever under-trained tables sit
                # uniformly below (above) one half.
                target = self.denoiser.target_fill(condition)
                threshold = float(np.quantile(p, 1.0 - target))
                threshold = min(max(threshold, 1e-9), 1.0 - 1e-9)
            else:
                threshold = 0.5
            nxt = (p > threshold).astype(np.uint8)
            if np.array_equal(nxt, x):
                break
            x = nxt
        return self._resolve_corner_touches(x, condition)

    def _resolve_corner_touches(
        self, x: np.ndarray, condition: Optional[int], max_rounds: int = 8
    ) -> np.ndarray:
        """Clear corner-touching polygon pairs from a clean sample.

        Training data contains no corner touches (they are zero-space DRC
        defects), so they are off-manifold artefacts of the sampler; of each
        touching diagonal pair the cell with the lower k=1 posterior is
        cleared.  Only *model output* passes through here — seams created by
        naive concatenation never do, matching the paper's dynamics.
        """
        from repro.geometry.grid import diagonal_touch_pairs

        if x.ndim == 3:
            return self._resolve_corner_touches_batch(
                x, [condition] * x.shape[0], max_rounds
            )
        level = self.schedule.beta_bar(1)
        out = x.copy()
        for _ in range(max_rounds):
            touches = diagonal_touch_pairs(out)
            if not touches:
                break
            p = self.denoiser.predict_x0(out, level, condition)
            _clear_weakest_touch_cells(out, p, touches)
        return out

    def _resolve_corner_touches_batch(
        self,
        x: np.ndarray,
        conditions: Sequence[Optional[int]],
        max_rounds: int = 8,
    ) -> np.ndarray:
        """Batched corner resolution over a ``(B, H, W)`` stack.

        Each round evaluates the k=1 posterior ONCE for every item that
        still holds a corner touch (one ``predict_x0_many`` on the active
        sub-stack) instead of running B independent per-item chains — the
        per-item outcome is identical, only the denoiser amortisation
        changes.
        """
        from repro.geometry.grid import diagonal_touch_pairs

        out = np.asarray(x, dtype=np.uint8).copy()
        conditions = list(conditions)
        level = self.schedule.beta_bar(1)
        active = list(range(out.shape[0]))
        for _ in range(max_rounds):
            touches_by_item = {}
            for i in active:
                touches = diagonal_touch_pairs(out[i])
                if touches:
                    touches_by_item[i] = touches
            active = list(touches_by_item)
            if not active:
                break
            p = self.denoiser.predict_x0_many(
                out[active], level, [conditions[i] for i in active]
            )
            for j, i in enumerate(active):
                _clear_weakest_touch_cells(out[i], p[j], touches_by_item[i])
        return out

    def sample(
        self,
        count: int,
        condition: Optional[int],
        rng: np.random.Generator,
        shape: Optional[Tuple[int, int]] = None,
        sampler_steps: SamplerSteps = None,
    ) -> np.ndarray:
        """Sample ``count`` topologies via the reverse chain (Eq. 11).

        Returns a ``(count, H, W)`` uint8 array.  ``shape`` defaults to the
        model window; larger shapes should go through
        :mod:`repro.ops.extend` instead, matching the paper's free-size
        pipeline.  ``sampler_steps`` overrides the model's step schedule for
        this trajectory (see :meth:`reverse_step_plan`).
        """
        if not self.fitted:
            raise RuntimeError("model not fitted; call fit() first")
        h, w = shape or (self.window, self.window)
        xk = self.prior_sample((count, h, w), rng)
        for k, k_next in self.reverse_step_plan(sampler_steps):
            xk = self.denoise_step(
                xk, k, condition, rng,
                deterministic=(k_next == 0), k_next=k_next,
            )
        return self.polish(xk, condition)

    def noise_to(
        self, x0: np.ndarray, k: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Forward-noise clean pixels to step ``k`` (Eq. 2)."""
        if k == 0:
            return np.asarray(x0, dtype=np.uint8).copy()
        return self.schedule.forward_sample(np.asarray(x0, dtype=np.uint8), k, rng)

    # -- batched mixed-condition sampling (the serving path) ------------

    def denoise_step_batch(
        self,
        xk: np.ndarray,
        k: int,
        conditions: Sequence[Optional[int]],
        rng: np.random.Generator,
        deterministic: bool = False,
        k_next: Optional[int] = None,
    ) -> np.ndarray:
        """One reverse step over a stacked batch with per-item conditions.

        The CFG-batching idiom adapted to class tables: the whole stack
        shares one trajectory, the denoiser is evaluated once per *distinct*
        condition on the matching sub-stack (at most ``n_classes`` chunks),
        and the results are scattered back into place.  Density guidance is
        calibrated per item (each item pins its own class fill rate), which
        the sequential :meth:`denoise_step` approximates jointly over its
        single-condition batch.  ``k_next`` strides exactly as in
        :meth:`denoise_step`.
        """
        xk = np.asarray(xk, dtype=np.uint8)
        if xk.ndim != 3:
            raise ValueError("denoise_step_batch expects a (B, H, W) stack")
        if len(conditions) != xk.shape[0]:
            raise ValueError(
                f"{len(conditions)} condition(s) for batch of {xk.shape[0]}"
            )
        if k_next is None:
            k_next = k - 1
        if not 0 <= k_next < k:
            raise ValueError(f"k_next {k_next} must be in [0, {k})")
        level = self.schedule.beta_bar(k)
        p_x0 = self.denoiser.predict_x0_many(xk, level, conditions)
        targets = np.asarray(
            [self.denoiser.target_fill(c) for c in conditions], dtype=np.float64
        )
        if self.sharpen > 0:
            gamma = 1.0 + self.sharpen * (1.0 - level / 0.5)
            p_x0 = p_x0 ** gamma / (p_x0 ** gamma + (1.0 - p_x0) ** gamma)
        if self.density_guidance:
            p_x0 = _calibrate_density_batch(p_x0, targets)
        if self.sampler == "posterior" and k_next == k - 1:
            p_prev = self.schedule.posterior_mix(xk, p_x0, k)
            if deterministic:
                return (p_prev > 0.5).astype(np.uint8)
            return (rng.random(xk.shape) < p_prev).astype(np.uint8)
        if deterministic:
            x0_hat = (p_x0 > 0.5).astype(np.uint8)
        else:
            x0_hat = (rng.random(xk.shape) < p_x0).astype(np.uint8)
        if k_next == 0:
            return x0_hat
        return self.schedule.forward_sample(x0_hat, k_next, rng)

    def polish_batch(
        self,
        x0: np.ndarray,
        conditions: Sequence[Optional[int]],
        sweeps: Optional[int] = None,
    ) -> np.ndarray:
        """Batched :meth:`polish` with per-item conditions and thresholds.

        The per-item guided thresholds come from one vectorized per-row
        quantile over the stacked probability map (one sort instead of B
        ``np.quantile`` calls), and corner resolution runs batched — one
        ``predict_x0_many`` per round over the items that still touch.
        """
        if sweeps is None:
            sweeps = self.polish_sweeps
        level = self.schedule.beta_bar(1)
        x = np.asarray(x0, dtype=np.uint8).copy()
        conditions = list(conditions)
        if not conditions:
            return x
        targets = np.asarray(
            [self.denoiser.target_fill(c) for c in conditions],
            dtype=np.float64,
        )
        for _ in range(sweeps):
            p = self.denoiser.predict_x0_many(x, level, conditions)
            if self.density_guidance:
                thresholds = np.clip(
                    _row_quantiles(p, 1.0 - targets), 1e-9, 1.0 - 1e-9
                )
            else:
                thresholds = np.full(x.shape[0], 0.5)
            nxt = (p > thresholds[:, None, None]).astype(np.uint8)
            if np.array_equal(nxt, x):
                break
            x = nxt
        return self._resolve_corner_touches_batch(x, conditions)

    def sample_batch(
        self,
        conditions: Sequence[Optional[int]],
        rng: np.random.Generator,
        shape: Optional[Tuple[int, int]] = None,
        sampler_steps: SamplerSteps = None,
    ) -> np.ndarray:
        """Sample ``len(conditions)`` topologies in ONE reverse trajectory.

        The batched serving path: N requests' worth of sampling work —
        possibly with *different* style conditions — costs a single batched
        denoise trajectory instead of N (Eq. 11 over a stacked batch).
        Returns a ``(len(conditions), H, W)`` uint8 array whose i-th item is
        conditioned on ``conditions[i]``.  ``sampler_steps`` overrides the
        model's step schedule for this trajectory.
        """
        if not self.fitted:
            raise RuntimeError("model not fitted; call fit() first")
        conditions = list(conditions)
        h, w = shape or (self.window, self.window)
        if not conditions:
            return np.zeros((0, h, w), dtype=np.uint8)
        xk = self.prior_sample((len(conditions), h, w), rng)
        for k, k_next in self.reverse_step_plan(sampler_steps):
            xk = self.denoise_step_batch(
                xk, k, conditions, rng,
                deterministic=(k_next == 0), k_next=k_next,
            )
        return self.polish_batch(xk, conditions)


def _clear_weakest_touch_cells(
    x: np.ndarray, p: np.ndarray, touches: Sequence[Tuple[int, int]]
) -> None:
    """Clear the lower-posterior filled cell of each corner-touching pair.

    ``touches`` holds the top-left coordinates of 2x2 windows containing a
    filled diagonal pair; ``x`` is edited in place.
    """
    for row, col in touches:
        cells = [
            (r, c)
            for r, c in (
                (row, col), (row + 1, col + 1),
                (row, col + 1), (row + 1, col),
            )
            if x[r, c]
        ]
        if not cells:
            continue
        weakest = min(cells, key=lambda rc: p[rc])
        x[weakest] = 0


def _row_quantiles(p: np.ndarray, qs: np.ndarray) -> np.ndarray:
    """Per-row quantiles of a ``(B, ...)`` stack, one level per row.

    One sort over the flattened trailing axes replaces B separate
    ``np.quantile`` calls; the interpolation matches ``np.quantile``'s
    default ``"linear"`` method exactly.
    """
    flat = np.sort(p.reshape(p.shape[0], -1), axis=1)
    pos = np.clip(np.asarray(qs, dtype=np.float64), 0.0, 1.0) * (
        flat.shape[1] - 1
    )
    lo = np.floor(pos).astype(np.intp)
    hi = np.minimum(lo + 1, flat.shape[1] - 1)
    rows = np.arange(flat.shape[0])
    lower = flat[rows, lo]
    return lower + (pos - lo) * (flat[rows, hi] - lower)


def _calibrate_density_batch(
    p: np.ndarray, targets: np.ndarray, bins: int = 512
) -> np.ndarray:
    """Per-item :func:`_calibrate_density` over a ``(B, H, W)`` stack.

    Same moment-matching objective, different solver: the bisection for the
    shared logit offset runs on a per-item *histogram* of the logits (with
    bin-mean representatives), so the 40 halving steps touch ``bins`` values
    per item instead of the full pixel map, and only one full-array sigmoid
    is paid at the end.  The density error is second-order in the bin width
    — empirically ~1e-5, inside the exact solver's 1e-4 fast-path tolerance
    — which is what makes the batched serving trajectory cheaper per sample
    than the sequential path it replaces.

    Every stage is vectorized across the stack (the per-row histograms are
    two ``bincount`` calls over row-offset bin indices, the bisection runs
    on ``(B, bins)`` arrays): a serving batch costs a handful of large
    array operations instead of thousands of tiny per-row ones, which both
    speeds the step up and keeps the engine's executor pool out of the
    interpreter lock for most of it.
    """
    clipped = np.clip(p, 1e-9, 1.0 - 1e-9)
    means = clipped.mean(axis=(1, 2))
    needs = np.abs(means - targets) >= 1e-4
    if not needs.any():
        return clipped
    out = clipped.copy()
    rows = np.flatnonzero(needs)
    logits = np.log(clipped[rows] / (1.0 - clipped[rows]))
    flat = logits.reshape(len(rows), -1)
    size = flat.shape[1]
    lo_edge = flat.min(axis=1, keepdims=True)
    span = flat.max(axis=1, keepdims=True) - lo_edge
    # Degenerate rows (constant logits) all land in bin 0, whose
    # representative is then the exact value — same result as the scalar
    # solver's single-bin histogram.
    bin_idx = np.floor(
        (flat - lo_edge) / np.where(span > 0, span, 1.0) * bins
    ).astype(np.intp)
    np.clip(bin_idx, 0, bins - 1, out=bin_idx)
    bin_idx += np.arange(len(rows), dtype=np.intp)[:, None] * bins
    counts = np.bincount(
        bin_idx.ravel(), minlength=len(rows) * bins
    ).reshape(len(rows), bins)
    sums = np.bincount(
        bin_idx.ravel(), weights=flat.ravel(), minlength=len(rows) * bins
    ).reshape(len(rows), bins)
    # Empty bins get zero weight, so their representative value is moot.
    reps = sums / np.maximum(counts, 1)
    weights = counts / size
    lo = np.full(len(rows), -30.0)
    hi = np.full(len(rows), 30.0)
    wanted = np.asarray(targets, dtype=np.float64)[rows]
    for _ in range(40):
        mid = 0.5 * (lo + hi)
        mean = (weights / (1.0 + np.exp(-(reps + mid[:, None])))).sum(axis=1)
        below = mean < wanted
        lo = np.where(below, mid, lo)
        hi = np.where(below, hi, mid)
    offset = (0.5 * (lo + hi)).reshape(-1, 1, 1)
    out[rows] = 1.0 / (1.0 + np.exp(-(logits + offset)))
    return out


def _calibrate_density(p: np.ndarray, target: float) -> np.ndarray:
    """Moment-matching density guidance.

    Shifts the probability map in logit space so its mean equals the class's
    clean-data fill rate.  Local structure (the *relative* ordering of
    pixels) is untouched; only the global density is pinned, which prevents
    the density drift local denoisers exhibit over long reverse chains.
    Solved by bisection on the shared logit offset.
    """
    p = np.clip(p, 1e-9, 1.0 - 1e-9)
    if abs(float(p.mean()) - target) < 1e-4:
        return p
    logits = np.log(p / (1.0 - p))
    lo, hi = -30.0, 30.0
    for _ in range(40):
        mid = 0.5 * (lo + hi)
        mean = float((1.0 / (1.0 + np.exp(-(logits + mid)))).mean())
        if mean < target:
            lo = mid
        else:
            hi = mid
    return 1.0 / (1.0 + np.exp(-(logits + 0.5 * (lo + hi))))
