"""The conditional discrete diffusion generator (back-end of ChatPattern).

Bundles a noise schedule with a pluggable denoiser and exposes the three
primitives every higher-level tool builds on: batch sampling (Eq. 11), a
single reverse step (Eq. 9) and forward noising (Eq. 2).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.diffusion.denoisers.base import Denoiser
from repro.diffusion.denoisers.neighborhood import NeighborhoodDenoiser
from repro.diffusion.schedule import DiffusionSchedule


class ConditionalDiffusionModel:
    """Class-conditional 2-state discrete diffusion over topology matrices.

    Args:
        denoiser: the learned ``p_theta(x0 | x_k, c)`` backend.
        schedule: noise schedule; linear ramp as in the paper (Eq. 4).  The
            default is K=128 with a gentler ramp (0.003 -> 0.08) than the
            paper's K=1000 / 0.01 -> 0.5: with the paper's parameters the
            cumulative flip probability saturates at 0.5 within a small
            fraction of the chain, so only the final ~60 steps carry
            information — the shorter ramp keeps the same number of
            *informative* steps at an eighth of the CPU cost.  The denoisers
            are noise-level- (not step-) indexed, so any schedule can be
            swapped in at sampling time.
        window: the model's native output size (the paper's 128).
    """

    def __init__(
        self,
        denoiser: Optional[Denoiser] = None,
        schedule: Optional[DiffusionSchedule] = None,
        window: int = 128,
        n_classes: int = 2,
        sampler: str = "x0",
        density_guidance: bool = True,
        sharpen: float = 2.0,
        polish_sweeps: int = 4,
    ):
        if sampler not in ("x0", "posterior"):
            raise ValueError("sampler must be 'x0' or 'posterior'")
        self.denoiser = denoiser or NeighborhoodDenoiser(n_classes=n_classes)
        self.schedule = schedule or DiffusionSchedule.linear(128, 0.003, 0.08)
        self.window = window
        self.sampler = sampler
        self.density_guidance = density_guidance
        self.sharpen = float(sharpen)
        self.polish_sweeps = int(polish_sweeps)
        self.fitted = False

    @property
    def n_classes(self) -> int:
        return self.denoiser.n_classes

    def fit(
        self,
        topologies: np.ndarray,
        conditions: Optional[np.ndarray],
        rng: np.random.Generator,
        **fit_kwargs,
    ) -> dict:
        """Train the denoiser on clean topologies (+ class conditions)."""
        info = self.denoiser.fit(
            np.asarray(topologies, dtype=np.uint8),
            conditions,
            self.schedule,
            rng,
            **fit_kwargs,
        )
        self.fitted = True
        return info

    def prior_sample(
        self, shape: Tuple[int, ...], rng: np.random.Generator
    ) -> np.ndarray:
        """``T_K``: the fully-noised stationary distribution (fair coin)."""
        return (rng.random(shape) < 0.5).astype(np.uint8)

    def denoise_step(
        self,
        xk: np.ndarray,
        k: int,
        condition: Optional[int],
        rng: np.random.Generator,
        deterministic: bool = False,
    ) -> np.ndarray:
        """One reverse step ``x_k -> x_{k-1}`` (Eq. 9).

        Two samplers implement the step:

        - ``"posterior"`` — the exact Eq. (5)/(9) ancestral step, summing the
          closed-form posterior over the predicted ``x_0``.
        - ``"x0"`` (default) — x0-resampling: draw ``x0_hat ~ p_theta(x0|x_k,c)``
          and re-noise it to level ``k-1`` via the forward process.  Both
          target the same learned posterior; x0-resampling applies the
          denoiser at full strength every step, which anneals global
          structure far more effectively for local (tabular) denoisers and
          is a standard sampler choice in D3PM implementations.

        ``deterministic`` takes the mode instead of sampling — used for the
        final step, the discrete analogue of dropping the noise term at k=1.
        """
        level = self.schedule.beta_bar(k)
        p_x0 = self.denoiser.predict_x0(xk, level, condition)
        if self.sharpen > 0:
            # Progressive sharpening: as the noise anneals away, raise the
            # inverse temperature of the x0 posterior.  Wobbling edges (one
            # cell in/out per row) are the costliest artefact for
            # legalization — they chain interval constraints across rows —
            # and near-deterministic late steps straighten them out.
            gamma = 1.0 + self.sharpen * (1.0 - level / 0.5)
            p_x0 = p_x0 ** gamma / (p_x0 ** gamma + (1.0 - p_x0) ** gamma)
        if self.density_guidance:
            p_x0 = _calibrate_density(p_x0, self.denoiser.target_fill(condition))
        if self.sampler == "posterior":
            p_prev = self.schedule.posterior_mix(xk, p_x0, k)
            if deterministic:
                return (p_prev > 0.5).astype(np.uint8)
            return (rng.random(xk.shape) < p_prev).astype(np.uint8)
        if deterministic:
            x0_hat = (p_x0 > 0.5).astype(np.uint8)
        else:
            x0_hat = (rng.random(xk.shape) < p_x0).astype(np.uint8)
        if k == 1:
            return x0_hat
        return self.schedule.forward_sample(x0_hat, k - 1, rng)

    def polish(
        self,
        x0: np.ndarray,
        condition: Optional[int],
        sweeps: Optional[int] = None,
    ) -> np.ndarray:
        """Deterministic low-noise denoiser sweeps (speckle removal).

        Re-applies the k=1 denoiser in mode-taking form until fixpoint or
        ``sweeps`` iterations; equivalent to appending extra deterministic
        final steps to the reverse chain.
        """
        if sweeps is None:
            sweeps = self.polish_sweeps
        level = self.schedule.beta_bar(1)
        x = np.asarray(x0, dtype=np.uint8)
        for _ in range(sweeps):
            p = self.denoiser.predict_x0(x, level, condition)
            if self.density_guidance:
                # Guided mode-taking: threshold at the quantile that keeps
                # the class fill rate.  A fixed 0.5 threshold would erase
                # (or flood) the pattern whenever under-trained tables sit
                # uniformly below (above) one half.
                target = self.denoiser.target_fill(condition)
                threshold = float(np.quantile(p, 1.0 - target))
                threshold = min(max(threshold, 1e-9), 1.0 - 1e-9)
            else:
                threshold = 0.5
            nxt = (p > threshold).astype(np.uint8)
            if np.array_equal(nxt, x):
                break
            x = nxt
        return self._resolve_corner_touches(x, condition)

    def _resolve_corner_touches(
        self, x: np.ndarray, condition: Optional[int], max_rounds: int = 8
    ) -> np.ndarray:
        """Clear corner-touching polygon pairs from a clean sample.

        Training data contains no corner touches (they are zero-space DRC
        defects), so they are off-manifold artefacts of the sampler; of each
        touching diagonal pair the cell with the lower k=1 posterior is
        cleared.  Only *model output* passes through here — seams created by
        naive concatenation never do, matching the paper's dynamics.
        """
        from repro.geometry.grid import diagonal_touch_pairs

        if x.ndim == 3:
            return np.stack(
                [self._resolve_corner_touches(xi, condition, max_rounds) for xi in x]
            )
        level = self.schedule.beta_bar(1)
        out = x.copy()
        for _ in range(max_rounds):
            touches = diagonal_touch_pairs(out)
            if not touches:
                break
            p = self.denoiser.predict_x0(out, level, condition)
            for row, col in touches:
                # The 2x2 window holds one filled diagonal pair; clear the
                # less confident of the two filled cells.
                cells = [
                    (r, c)
                    for r, c in (
                        (row, col), (row + 1, col + 1),
                        (row, col + 1), (row + 1, col),
                    )
                    if out[r, c]
                ]
                if not cells:
                    continue
                weakest = min(cells, key=lambda rc: p[rc])
                out[weakest] = 0
        return out

    def sample(
        self,
        count: int,
        condition: Optional[int],
        rng: np.random.Generator,
        shape: Optional[Tuple[int, int]] = None,
    ) -> np.ndarray:
        """Sample ``count`` topologies via the full reverse chain (Eq. 11).

        Returns a ``(count, H, W)`` uint8 array.  ``shape`` defaults to the
        model window; larger shapes should go through
        :mod:`repro.ops.extend` instead, matching the paper's free-size
        pipeline.
        """
        if not self.fitted:
            raise RuntimeError("model not fitted; call fit() first")
        h, w = shape or (self.window, self.window)
        xk = self.prior_sample((count, h, w), rng)
        for k in range(self.schedule.steps, 1, -1):
            xk = self.denoise_step(xk, k, condition, rng)
        xk = self.denoise_step(xk, 1, condition, rng, deterministic=True)
        return self.polish(xk, condition)

    def noise_to(
        self, x0: np.ndarray, k: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Forward-noise clean pixels to step ``k`` (Eq. 2)."""
        if k == 0:
            return np.asarray(x0, dtype=np.uint8).copy()
        return self.schedule.forward_sample(np.asarray(x0, dtype=np.uint8), k, rng)

    # -- batched mixed-condition sampling (the serving path) ------------

    def denoise_step_batch(
        self,
        xk: np.ndarray,
        k: int,
        conditions: Sequence[Optional[int]],
        rng: np.random.Generator,
        deterministic: bool = False,
    ) -> np.ndarray:
        """One reverse step over a stacked batch with per-item conditions.

        The CFG-batching idiom adapted to class tables: the whole stack
        shares one trajectory, the denoiser is evaluated once per *distinct*
        condition on the matching sub-stack (at most ``n_classes`` chunks),
        and the results are scattered back into place.  Density guidance is
        calibrated per item (each item pins its own class fill rate), which
        the sequential :meth:`denoise_step` approximates jointly over its
        single-condition batch.
        """
        xk = np.asarray(xk, dtype=np.uint8)
        if xk.ndim != 3:
            raise ValueError("denoise_step_batch expects a (B, H, W) stack")
        if len(conditions) != xk.shape[0]:
            raise ValueError(
                f"{len(conditions)} condition(s) for batch of {xk.shape[0]}"
            )
        level = self.schedule.beta_bar(k)
        p_x0 = self.denoiser.predict_x0_many(xk, level, conditions)
        targets = np.asarray(
            [self.denoiser.target_fill(c) for c in conditions], dtype=np.float64
        )
        if self.sharpen > 0:
            gamma = 1.0 + self.sharpen * (1.0 - level / 0.5)
            p_x0 = p_x0 ** gamma / (p_x0 ** gamma + (1.0 - p_x0) ** gamma)
        if self.density_guidance:
            p_x0 = _calibrate_density_batch(p_x0, targets)
        if self.sampler == "posterior":
            p_prev = self.schedule.posterior_mix(xk, p_x0, k)
            if deterministic:
                return (p_prev > 0.5).astype(np.uint8)
            return (rng.random(xk.shape) < p_prev).astype(np.uint8)
        if deterministic:
            x0_hat = (p_x0 > 0.5).astype(np.uint8)
        else:
            x0_hat = (rng.random(xk.shape) < p_x0).astype(np.uint8)
        if k == 1:
            return x0_hat
        return self.schedule.forward_sample(x0_hat, k - 1, rng)

    def polish_batch(
        self,
        x0: np.ndarray,
        conditions: Sequence[Optional[int]],
        sweeps: Optional[int] = None,
    ) -> np.ndarray:
        """Batched :meth:`polish` with per-item conditions and thresholds."""
        if sweeps is None:
            sweeps = self.polish_sweeps
        level = self.schedule.beta_bar(1)
        x = np.asarray(x0, dtype=np.uint8).copy()
        conditions = list(conditions)
        for _ in range(sweeps):
            p = self.denoiser.predict_x0_many(x, level, conditions)
            thresholds = np.full(x.shape[0], 0.5)
            if self.density_guidance:
                for i, condition in enumerate(conditions):
                    target = self.denoiser.target_fill(condition)
                    thresholds[i] = min(
                        max(float(np.quantile(p[i], 1.0 - target)), 1e-9),
                        1.0 - 1e-9,
                    )
            nxt = (p > thresholds[:, None, None]).astype(np.uint8)
            if np.array_equal(nxt, x):
                break
            x = nxt
        out = np.empty_like(x)
        for i, condition in enumerate(conditions):
            out[i] = self._resolve_corner_touches(x[i], condition)
        return out

    def sample_batch(
        self,
        conditions: Sequence[Optional[int]],
        rng: np.random.Generator,
        shape: Optional[Tuple[int, int]] = None,
    ) -> np.ndarray:
        """Sample ``len(conditions)`` topologies in ONE reverse trajectory.

        The batched serving path: N requests' worth of sampling work —
        possibly with *different* style conditions — costs a single batched
        denoise trajectory instead of N (Eq. 11 over a stacked batch).
        Returns a ``(len(conditions), H, W)`` uint8 array whose i-th item is
        conditioned on ``conditions[i]``.
        """
        if not self.fitted:
            raise RuntimeError("model not fitted; call fit() first")
        conditions = list(conditions)
        h, w = shape or (self.window, self.window)
        if not conditions:
            return np.zeros((0, h, w), dtype=np.uint8)
        xk = self.prior_sample((len(conditions), h, w), rng)
        for k in range(self.schedule.steps, 1, -1):
            xk = self.denoise_step_batch(xk, k, conditions, rng)
        xk = self.denoise_step_batch(xk, 1, conditions, rng, deterministic=True)
        return self.polish_batch(xk, conditions)


def _calibrate_density_batch(
    p: np.ndarray, targets: np.ndarray, bins: int = 512
) -> np.ndarray:
    """Per-item :func:`_calibrate_density` over a ``(B, H, W)`` stack.

    Same moment-matching objective, different solver: the bisection for the
    shared logit offset runs on a per-item *histogram* of the logits (with
    bin-mean representatives), so the 40 halving steps touch ``bins`` values
    per item instead of the full pixel map, and only one full-array sigmoid
    is paid at the end.  The density error is second-order in the bin width
    — empirically ~1e-5, inside the exact solver's 1e-4 fast-path tolerance
    — which is what makes the batched serving trajectory cheaper per sample
    than the sequential path it replaces.
    """
    clipped = np.clip(p, 1e-9, 1.0 - 1e-9)
    means = clipped.mean(axis=(1, 2))
    needs = np.abs(means - targets) >= 1e-4
    if not needs.any():
        return clipped
    out = clipped.copy()
    for i in np.flatnonzero(needs):
        logits = np.log(clipped[i] / (1.0 - clipped[i]))
        flat = logits.ravel()
        counts, edges = np.histogram(flat, bins=bins)
        occupied = counts > 0
        sums, _ = np.histogram(flat, bins=edges, weights=flat)
        reps = sums[occupied] / counts[occupied]
        weights = counts[occupied] / flat.size
        lo, hi = -30.0, 30.0
        for _ in range(40):
            mid = 0.5 * (lo + hi)
            mean = float((weights / (1.0 + np.exp(-(reps + mid)))).sum())
            if mean < targets[i]:
                lo = mid
            else:
                hi = mid
        out[i] = 1.0 / (1.0 + np.exp(-(logits + 0.5 * (lo + hi))))
    return out


def _calibrate_density(p: np.ndarray, target: float) -> np.ndarray:
    """Moment-matching density guidance.

    Shifts the probability map in logit space so its mean equals the class's
    clean-data fill rate.  Local structure (the *relative* ordering of
    pixels) is untouched; only the global density is pinned, which prevents
    the density drift local denoisers exhibit over long reverse chains.
    Solved by bisection on the shared logit offset.
    """
    p = np.clip(p, 1e-9, 1.0 - 1e-9)
    if abs(float(p.mean()) - target) < 1e-4:
        return p
    logits = np.log(p / (1.0 - p))
    lo, hi = -30.0, 30.0
    for _ in range(40):
        mid = 0.5 * (lo + hi)
        mean = float((1.0 / (1.0 + np.exp(-(logits + mid)))).mean())
        if mean < target:
            lo = mid
        else:
            hi = mid
    return 1.0 / (1.0 + np.exp(-(logits + 0.5 * (lo + hi))))
