"""Multi-scale neighbourhood-statistics denoiser (the default CPU backend).

Substitutes the paper's U-Net: a conditional tabular estimator of
``P(x_0 = 1 | context(x_k), noise bucket, class)``.  The context is a small
neighbourhood of the pixel hashed to an integer code — evaluated at several
spatial scales (the image is average-pooled and re-hashed, the tabular
analogue of U-Net's multi-resolution encoder).  Per-scale probabilities are
fused as a product of experts in logit space, so fine tables decide edges
while coarse tables carry block-scale structure (essential for styles whose
feature pitch far exceeds the neighbourhood radius).

Iterating the reverse process with these local conditionals behaves like
annealed Gibbs sampling of a learned Markov random field; it trains in
seconds on CPU.  See DESIGN.md for why this substitution preserves the
paper's behaviour.

**Compiled logit tables.**  The raw count tables are frozen once ``fit``
returns, so everything the sampling hot loop derives from them per step —
Laplace smoothing toward the class marginal, the probability ratio, the
``log`` — is folded into per-(class, bucket, scale) float32 *logit lookup
tables* at compile time: entry ``[c, b, code]`` holds
``(w_s / sum(w)) * log(p / (1 - p))`` for the smoothed ``p`` of that
neighbourhood code.  ``predict_x0`` then reduces to one gather-and-add per
scale and a single final sigmoid — no per-step elementwise ``log``/``exp``
arithmetic over float64 intermediates.  The compiled form is rebuilt at the
end of every :meth:`NeighborhoodDenoiser.fit` (the only operation that can
change the counts) and rehydrated when a pickled model is loaded, so it is
never stale; ``use_compiled = False`` switches back to the on-the-fly
reference path, which the equivalence tests pin to the compiled output
within 1e-6.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.diffusion.denoisers.base import Denoiser
from repro.diffusion.schedule import DiffusionSchedule

Offset = Tuple[int, int]
WindowSpec = Union[Tuple[int, int], str, Sequence[Offset]]

_EPS = 1e-6


def window_offsets(spec: WindowSpec) -> List[Offset]:
    """Resolve a window spec into neighbourhood offsets.

    Accepts ``(rows, cols)`` for an odd-sided rectangle, ``"diamond<r>"`` /
    ``"plus<r>"`` strings, or an explicit offset list.
    """
    if isinstance(spec, str):
        if spec.startswith("diamond"):
            radius = int(spec[len("diamond"):] or 2)
            return [
                (dr, dc)
                for dr in range(-radius, radius + 1)
                for dc in range(-radius, radius + 1)
                if abs(dr) + abs(dc) <= radius
            ]
        if spec.startswith("plus"):
            radius = int(spec[len("plus"):] or 2)
            offsets = [(0, 0)]
            for d in range(1, radius + 1):
                offsets.extend([(d, 0), (-d, 0), (0, d), (0, -d)])
            return offsets
        raise ValueError(f"unknown window spec {spec!r}")
    spec = list(spec)
    if len(spec) == 2 and all(isinstance(v, int) for v in spec):
        wr, wc = spec
        if wr % 2 == 0 or wc % 2 == 0:
            raise ValueError("rectangular window sides must be odd")
        return [
            (dr, dc)
            for dr in range(-(wr // 2), wr // 2 + 1)
            for dc in range(-(wc // 2), wc // 2 + 1)
        ]
    return [tuple(o) for o in spec]  # explicit offsets


def neighborhood_codes(
    x: np.ndarray,
    offsets: Sequence[Offset],
    pads: Optional[Tuple[int, int]] = None,
) -> np.ndarray:
    """Hash each pixel's neighbourhood (given by offsets) to an int code.

    Pads with zeros outside the image.  Accepts ``(H, W)`` or ``(B, H, W)``.
    ``pads`` may carry the precomputed ``(max_row, max_col)`` offset reach so
    hot callers skip re-deriving it per call.
    """
    batched = x.ndim == 3
    arr = x if batched else x[None]
    if pads is None:
        pads = (
            max(abs(dr) for dr, _ in offsets),
            max(abs(dc) for _, dc in offsets),
        )
    max_r, max_c = pads
    pad = np.pad(arr, ((0, 0), (max_r, max_r), (max_c, max_c)), constant_values=0)
    h, w = arr.shape[1], arr.shape[2]
    codes = np.zeros(arr.shape, dtype=np.int64)
    for bit, (dr, dc) in enumerate(offsets):
        r0, c0 = max_r + dr, max_c + dc
        codes |= pad[:, r0 : r0 + h, c0 : c0 + w].astype(np.int64) << bit
    return codes if batched else codes[0]


def downsample_binary(x: np.ndarray, scale: int) -> np.ndarray:
    """Majority-pool a binary image by ``scale`` (pads with zeros).

    Accepts ``(H, W)`` or a batched ``(B, H, W)`` stack; the pooling is
    applied to the trailing two axes either way.
    """
    if scale == 1:
        return x.astype(np.uint8)
    h, w = x.shape[-2], x.shape[-1]
    ph = (-h) % scale
    pw = (-w) % scale
    pad = [(0, 0)] * (x.ndim - 2) + [(0, ph), (0, pw)]
    padded = np.pad(x, pad)
    pooled = padded.reshape(
        x.shape[:-2] + ((h + ph) // scale, scale, (w + pw) // scale, scale)
    ).mean(axis=(-3, -1))
    return (pooled >= 0.5).astype(np.uint8)


def upsample_to(x: np.ndarray, scale: int, shape: Tuple[int, int]) -> np.ndarray:
    """Nearest-neighbour upsample by ``scale`` and crop to ``shape``.

    ``shape`` names the trailing ``(H, W)``; leading batch axes pass through.
    """
    if scale == 1:
        return x[..., : shape[0], : shape[1]]
    up = x.repeat(scale, axis=-2).repeat(scale, axis=-1)
    return up[..., : shape[0], : shape[1]]


class NeighborhoodDenoiser(Denoiser):
    """Multi-scale tabular conditional denoiser over noisy neighbourhoods.

    Args:
        n_classes: number of style conditions (0 for unconditional).
        window: neighbourhood spec (default ``"diamond2"``, 13 cells).
        scales: pooling factors of the expert tables (default (1, 2, 4, 8);
            the coarsest expert carries block-pitch alignment, which keeps
            the chained legalization requirement of large extended patterns
            within the physical budget).
        scale_weights: product-of-experts logit weights per scale.
        n_buckets: noise-level buckets over ``beta_bar`` in (0, 0.5].
        smoothing: Laplace-style pull toward the class marginal.
    """

    def __init__(
        self,
        n_classes: int = 0,
        window: WindowSpec = "diamond2",
        scales: Tuple[int, ...] = (1, 2, 4, 8),
        scale_weights: Optional[Tuple[float, ...]] = None,
        n_buckets: int = 16,
        smoothing: float = 2.0,
    ):
        self.n_classes = n_classes
        self.offsets = window_offsets(window)
        if (0, 0) not in self.offsets:
            raise ValueError("window must include the centre cell")
        self.scales = tuple(scales)
        if scale_weights is None:
            scale_weights = tuple(1.0 / (1 + i) for i in range(len(self.scales)))
        if len(scale_weights) != len(self.scales):
            raise ValueError("scale_weights must match scales")
        self.scale_weights = tuple(float(w) for w in scale_weights)
        self.n_buckets = n_buckets
        self.smoothing = float(smoothing)
        self._n_codes = 1 << len(self.offsets)
        # Hoisted once: the PoE normaliser and the neighbourhood's padding
        # reach are constants of the architecture, not of the input.
        self._weight_total = float(sum(self.scale_weights))
        self._pads = (
            max(abs(dr) for dr, _ in self.offsets),
            max(abs(dc) for _, dc in self.offsets),
        )
        slots = max(1, n_classes)
        self._counts = {
            s: np.zeros((slots, n_buckets, self._n_codes, 2), dtype=np.float64)
            for s in self.scales
        }
        self._marginals = np.full((slots, n_buckets), 0.5)
        self._fitted = False
        #: gate for the compiled fast path (the reference path stays
        #: available for equivalence tests and baseline benchmarks)
        self.use_compiled = True
        self._compiled = False
        self._logit_tables: dict = {}

    def bucket_of(self, noise_level: float) -> int:
        """Map ``beta_bar`` in (0, 0.5] to a bucket index."""
        if not 0.0 < noise_level <= 0.5:
            raise ValueError(f"noise_level {noise_level} outside (0, 0.5]")
        return min(self.n_buckets - 1, int(noise_level / 0.5 * self.n_buckets))

    def fit(
        self,
        topologies: np.ndarray,
        conditions: Optional[np.ndarray],
        schedule: DiffusionSchedule,
        rng: np.random.Generator,
        draws_per_pattern: int = 16,
    ) -> dict:
        """Accumulate neighbourhood statistics from noised training pairs.

        Noise levels are drawn uniformly within each bucket so the tables
        cover the full (0, 0.5] range regardless of the training schedule.
        """
        topologies = np.asarray(topologies, dtype=np.uint8)
        if topologies.ndim != 3:
            raise ValueError("topologies must be (N, H, W)")
        n = topologies.shape[0]
        if self.n_classes > 0:
            if conditions is None or len(conditions) != n:
                raise ValueError("conditions must align with topologies")
            cond = np.asarray(conditions, dtype=np.int64)
        else:
            cond = np.zeros(n, dtype=np.int64)

        slots = max(1, self.n_classes)
        flat = {
            s: np.zeros(slots * self.n_buckets * self._n_codes * 2)
            for s in self.scales
        }
        # Vectorized accumulation: buckets and noise levels for every
        # (pattern, draw) pair are drawn up front, then each bucket's draws
        # are noised as one stacked batch and counted with one bincount per
        # (bucket, scale) — the class offset is already folded into the
        # flattened index, so mixed-class batches count in a single pass.
        if draws_per_pattern >= self.n_buckets:
            buckets = np.broadcast_to(
                np.arange(draws_per_pattern) % self.n_buckets,
                (n, draws_per_pattern),
            )
        else:
            buckets = rng.integers(
                0, self.n_buckets, size=(n, draws_per_pattern)
            )
        levels = (
            (buckets + rng.random((n, draws_per_pattern)))
            * 0.5 / self.n_buckets
        )
        levels = np.clip(levels, 1e-4, 0.5)
        for bucket in range(self.n_buckets):
            pat_idx, draw_idx = np.nonzero(buckets == bucket)
            if pat_idx.size == 0:
                continue
            x0 = topologies[pat_idx]
            flip = (
                rng.random(x0.shape)
                < levels[pat_idx, draw_idx][:, None, None]
            )
            xk = np.where(flip, 1 - x0, x0).astype(np.uint8)
            base = (cond[pat_idx] * self.n_buckets + bucket) * self._n_codes
            target = x0.astype(np.int64)
            for s in self.scales:
                codes = neighborhood_codes(
                    downsample_binary(xk, s), self.offsets, pads=self._pads
                )
                pixel_codes = upsample_to(codes, s, x0.shape[1:])
                index = (base[:, None, None] + pixel_codes) * 2 + target
                flat[s] += np.bincount(
                    index.ravel(), minlength=flat[s].shape[0]
                )
        for s in self.scales:
            self._counts[s] = flat[s].reshape(
                slots, self.n_buckets, self._n_codes, 2
            )
        self._record_target_fills(topologies, cond)
        fine = self._counts[self.scales[0]]
        totals = fine.sum(axis=2)
        sums = totals.sum(axis=2)
        self._marginals = np.where(
            sums > 0, totals[..., 1] / np.maximum(sums, 1.0), 0.5
        )
        self._fitted = True
        self.compile_tables(force=True)
        return {
            "patterns": int(n),
            "observations": float(fine.sum()),
            "occupied_codes": {
                s: int((self._counts[s].sum(axis=-1) > 0).sum())
                for s in self.scales
            },
        }

    # -- compiled logit tables -----------------------------------------

    def compile_tables(self, force: bool = False) -> bool:
        """Fold smoothing and the logit transform into float32 lookup tables.

        For each scale ``s`` the table entry ``[class, bucket, code]`` holds
        ``(w_s / sum(w)) * log(p / (1 - p))`` where ``p`` is the smoothed
        probability the reference path derives per pixel — so sampling-time
        prediction becomes gather + add + one sigmoid.  Idempotent unless
        ``force`` (``fit`` forces, because it changes the counts).
        """
        if not self._fitted:
            return False
        if self._compiled and not force:
            return True
        tables = {}
        for s, weight in zip(self.scales, self.scale_weights):
            counts = self._counts[s]
            ones = counts[..., 1]
            total = counts.sum(axis=-1)
            prior = self._marginals[..., None]
            p = (ones + self.smoothing * prior) / (total + self.smoothing)
            p = np.clip(p, _EPS, 1.0 - _EPS)
            tables[s] = (
                (weight / self._weight_total) * np.log(p / (1.0 - p))
            ).astype(np.float32)
        self._logit_tables = tables
        self._compiled = True
        return True

    @property
    def compiled(self) -> bool:
        """Whether the compiled logit tables are built and current."""
        return self._compiled

    def __setstate__(self, state: dict) -> None:
        """Rehydrate pickles, including pre-compiled-table ones.

        Models cached on disk by an older registry lack the hoisted
        attributes and the compiled tables; derive them here so a disk hit
        serves the compiled fast path without a refit.
        """
        self.__dict__.update(state)
        if "_weight_total" not in state:
            self._weight_total = float(sum(self.scale_weights))
        if "_pads" not in state:
            self._pads = (
                max(abs(dr) for dr, _ in self.offsets),
                max(abs(dc) for _, dc in self.offsets),
            )
        if "use_compiled" not in state:
            self.use_compiled = True
        if not state.get("_compiled", False):
            self._compiled = False
            self._logit_tables = {}
            self.compile_tables()

    # -- prediction ----------------------------------------------------

    def predict_x0(
        self, xk: np.ndarray, noise_level: float, condition: Optional[int] = None
    ) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("denoiser not fitted; call fit() first")
        if not (self._compiled and self.use_compiled):
            return self._predict_x0_reference(xk, noise_level, condition)
        c = self._validate_condition(condition)
        bucket = self.bucket_of(noise_level)
        arr = np.asarray(xk, dtype=np.uint8)
        batched = arr.ndim == 3
        stack = arr if batched else arr[None]
        # The whole stack is pooled, hashed and gathered at once: one table
        # lookup over (B, H, W) instead of B separate ones, which is what
        # lets a micro-batched reverse chain amortise the per-step cost.
        logit = np.zeros(stack.shape, dtype=np.float32)
        for s in self.scales:
            codes = neighborhood_codes(
                downsample_binary(stack, s), self.offsets, pads=self._pads
            )
            pixel_codes = upsample_to(codes, s, stack.shape[1:])
            logit += self._logit_tables[s][c, bucket][pixel_codes]
        out = 1.0 / (1.0 + np.exp(-logit, dtype=np.float64))
        return out if batched else out[0]

    def _predict_x0_reference(
        self, xk: np.ndarray, noise_level: float, condition: Optional[int] = None
    ) -> np.ndarray:
        """On-the-fly prediction from the raw count tables.

        The numerical ground truth the compiled tables are pinned against
        (and the baseline of the sampling-throughput benchmark).
        """
        if not self._fitted:
            raise RuntimeError("denoiser not fitted; call fit() first")
        c = self._validate_condition(condition)
        bucket = self.bucket_of(noise_level)
        arr = np.asarray(xk, dtype=np.uint8)
        batched = arr.ndim == 3
        stack = arr if batched else arr[None]
        prior = self._marginals[c, bucket]
        logit = np.zeros(stack.shape, dtype=np.float64)
        for s, weight in zip(self.scales, self.scale_weights):
            codes = neighborhood_codes(
                downsample_binary(stack, s), self.offsets, pads=self._pads
            )
            pixel_codes = upsample_to(codes, s, stack.shape[1:])
            table = self._counts[s][c, bucket]
            ones = table[pixel_codes, 1]
            total = ones + table[pixel_codes, 0]
            p = (ones + self.smoothing * prior) / (total + self.smoothing)
            p = np.clip(p, _EPS, 1.0 - _EPS)
            logit += weight * np.log(p / (1.0 - p))
        out = 1.0 / (1.0 + np.exp(-logit / self._weight_total))
        return out if batched else out[0]

    def predict_x0_many(
        self,
        xk: np.ndarray,
        noise_level: float,
        conditions: Sequence[Optional[int]],
    ) -> np.ndarray:
        """Mixed-condition batched prediction with shared pooling/hashing.

        Pooling and neighbourhood hashing are condition-independent, so a
        micro-batch mixing style classes computes them ONCE for the whole
        stack; only the final table gather is per-item (each item reads its
        own class's table row).  This is what makes cross-style batches as
        cheap as single-style ones in the serving scheduler.
        """
        stack, conds, bucket = self._check_many(xk, noise_level, conditions)
        if not (self._compiled and self.use_compiled):
            return self._many_reference_core(stack, conds, bucket)
        # Per-item offset into the flattened (class, bucket, code) table:
        # adding it to the pixel codes turns the per-item class lookup into
        # one big gather with no intermediate table copies.
        base = ((conds * self.n_buckets + bucket) * self._n_codes)[:, None, None]
        logit = np.zeros(stack.shape, dtype=np.float32)
        for s in self.scales:
            codes = neighborhood_codes(
                downsample_binary(stack, s), self.offsets, pads=self._pads
            )
            pixel_codes = upsample_to(codes, s, stack.shape[1:])
            logit += self._logit_tables[s].reshape(-1)[base + pixel_codes]
        return 1.0 / (1.0 + np.exp(-logit, dtype=np.float64))

    def _predict_x0_many_reference(
        self,
        xk: np.ndarray,
        noise_level: float,
        conditions: Sequence[Optional[int]],
    ) -> np.ndarray:
        """On-the-fly counterpart of :meth:`predict_x0_many`."""
        return self._many_reference_core(
            *self._check_many(xk, noise_level, conditions)
        )

    def _many_reference_core(
        self, stack: np.ndarray, conds: np.ndarray, bucket: int
    ) -> np.ndarray:
        priors = self._marginals[conds, bucket][:, None, None]
        base = ((conds * self.n_buckets + bucket) * self._n_codes)[:, None, None]
        logit = np.zeros(stack.shape, dtype=np.float64)
        for s, weight in zip(self.scales, self.scale_weights):
            codes = neighborhood_codes(
                downsample_binary(stack, s), self.offsets, pads=self._pads
            )
            pixel_codes = upsample_to(codes, s, stack.shape[1:])
            flat = self._counts[s].reshape(-1, 2)
            index = base + pixel_codes
            ones = flat[index, 1]
            total = ones + flat[index, 0]
            p = (ones + self.smoothing * priors) / (total + self.smoothing)
            p = np.clip(p, _EPS, 1.0 - _EPS)
            logit += weight * np.log(p / (1.0 - p))
        return 1.0 / (1.0 + np.exp(-logit / self._weight_total))

    def _check_many(
        self,
        xk: np.ndarray,
        noise_level: float,
        conditions: Sequence[Optional[int]],
    ):
        stack = np.asarray(xk, dtype=np.uint8)
        if stack.ndim != 3:
            raise ValueError("predict_x0_many expects a (B, H, W) stack")
        if len(conditions) != stack.shape[0]:
            raise ValueError(
                f"{len(conditions)} condition(s) for batch of {stack.shape[0]}"
            )
        if not self._fitted:
            raise RuntimeError("denoiser not fitted; call fit() first")
        conds = np.asarray(
            [self._validate_condition(c) for c in conditions], dtype=np.int64
        )
        return stack, conds, self.bucket_of(noise_level)
