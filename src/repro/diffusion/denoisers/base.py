"""Denoiser interface: the learnable ``p_theta(x_0 | x_k, c)``.

Everything the paper contributes (conditioning, modification, extension, the
agent) sits on top of this posterior estimate, so the denoiser is pluggable.
Denoisers are keyed by *noise level* (the cumulative flip probability
``beta_bar_k``) rather than the raw step index, which makes a trained
denoiser usable under any diffusion length K at sampling time.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence

import numpy as np

from repro.diffusion.schedule import DiffusionSchedule


class Denoiser(ABC):
    """Estimates ``P(x_0 = 1 | x_k, c)`` pixelwise."""

    #: number of class conditions the denoiser was built for (0 = unconditional)
    n_classes: int = 0

    def target_fill(self, condition: Optional[int] = None) -> float:
        """Clean-data fill rate of the class (used for density guidance).

        Subclasses record this during :meth:`fit`; the fallback 0.5 applies
        before fitting.
        """
        fills = getattr(self, "_target_fills", None)
        if fills is None:
            return 0.5
        return float(fills[self._validate_condition(condition)])

    def _record_target_fills(
        self, topologies: np.ndarray, conditions: Optional[np.ndarray]
    ) -> None:
        slots = max(1, self.n_classes)
        fills = np.full(slots, float(topologies.mean()))
        if self.n_classes > 0 and conditions is not None:
            for c in range(self.n_classes):
                mask = conditions == c
                if mask.any():
                    fills[c] = float(topologies[mask].mean())
        self._target_fills = fills

    @abstractmethod
    def predict_x0(
        self, xk: np.ndarray, noise_level: float, condition: Optional[int] = None
    ) -> np.ndarray:
        """Posterior probability map for ``x_0 = 1``.

        Args:
            xk: noised topology, shape ``(H, W)`` or ``(B, H, W)``, values {0,1}.
            noise_level: cumulative flip probability ``beta_bar_k`` in (0, 0.5].
            condition: class index, or ``None`` for unconditional prediction.

        Returns:
            float64 array of the same shape with values in [0, 1].
        """

    def predict_x0_many(
        self,
        xk: np.ndarray,
        noise_level: float,
        conditions: Sequence[Optional[int]],
    ) -> np.ndarray:
        """Posterior maps for a ``(B, H, W)`` stack with per-item conditions.

        The batched-serving entry point: one call covers a mixed-condition
        micro-batch.  The default groups the stack by condition and calls
        :meth:`predict_x0` per distinct class; denoisers whose per-item work
        can be shared across conditions override it.
        """
        stack = np.asarray(xk, dtype=np.uint8)
        if stack.ndim != 3:
            raise ValueError("predict_x0_many expects a (B, H, W) stack")
        if len(conditions) != stack.shape[0]:
            raise ValueError(
                f"{len(conditions)} condition(s) for batch of {stack.shape[0]}"
            )
        out = np.empty(stack.shape, dtype=np.float64)
        by_condition: dict = {}
        for i, condition in enumerate(conditions):
            by_condition.setdefault(condition, []).append(i)
        for condition, index in by_condition.items():
            index = np.asarray(index, dtype=np.intp)
            out[index] = self.predict_x0(stack[index], noise_level, condition)
        return out

    @abstractmethod
    def fit(
        self,
        topologies: np.ndarray,
        conditions: Optional[np.ndarray],
        schedule: DiffusionSchedule,
        rng: np.random.Generator,
    ) -> dict:
        """Train on clean topologies; returns a metrics/history dict."""

    def compile_tables(self, force: bool = False) -> bool:
        """Precompile sampling-time lookup structures, if the backend has any.

        Called after :meth:`fit` and when a pickled model is rehydrated from
        the registry's disk tier, so the compiled form travels with the
        model.  Returns ``True`` when the denoiser holds a compiled
        representation afterwards; the default has none.
        """
        return False

    def _validate_condition(self, condition: Optional[int]) -> int:
        if self.n_classes == 0:
            return 0
        if condition is None:
            raise ValueError(
                "this denoiser is class-conditional; pass condition explicitly"
            )
        if not 0 <= condition < self.n_classes:
            raise ValueError(
                f"condition {condition} outside [0, {self.n_classes})"
            )
        return int(condition)


class MarginalDenoiser(Denoiser):
    """Degenerate denoiser predicting the per-class fill marginal.

    Exists as the simplest correct baseline and as a test fixture: with no
    spatial information the reverse process produces i.i.d. pixels at the
    class density.
    """

    def __init__(self, n_classes: int = 0):
        self.n_classes = n_classes
        self._marginals = np.full(max(1, n_classes), 0.5)

    def predict_x0(
        self, xk: np.ndarray, noise_level: float, condition: Optional[int] = None
    ) -> np.ndarray:
        c = self._validate_condition(condition)
        return np.full(xk.shape, self._marginals[c], dtype=np.float64)

    def fit(
        self,
        topologies: np.ndarray,
        conditions: Optional[np.ndarray],
        schedule: DiffusionSchedule,
        rng: np.random.Generator,
    ) -> dict:
        if self.n_classes == 0:
            self._marginals = np.array([float(topologies.mean())])
        else:
            if conditions is None:
                raise ValueError("conditions required for class-conditional fit")
            for c in range(self.n_classes):
                mask = conditions == c
                if mask.any():
                    self._marginals[c] = float(topologies[mask].mean())
        return {"marginals": self._marginals.tolist()}
