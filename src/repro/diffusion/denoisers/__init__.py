"""Pluggable denoiser backends for the discrete diffusion model."""

from repro.diffusion.denoisers.base import Denoiser, MarginalDenoiser
from repro.diffusion.denoisers.neighborhood import (
    NeighborhoodDenoiser,
    neighborhood_codes,
)
from repro.diffusion.denoisers.unet_lite import UNetLite

__all__ = [
    "Denoiser",
    "MarginalDenoiser",
    "NeighborhoodDenoiser",
    "UNetLite",
    "neighborhood_codes",
]
