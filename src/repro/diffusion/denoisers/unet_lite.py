"""UNetLite: a small encoder-decoder CNN denoiser in pure numpy.

A faithful-but-tiny stand-in for the paper's U-Net backbone: one
downsampling level with a skip connection, conditioned on the noise level
and the class embedding via extra input channels (the paper adds the
condition embedding to the timestep embedding; broadcasting both as input
feature maps is the equivalent mechanism for a network this small).
Training uses the cross-entropy term of Eq. (10) (predicting ``x_0``), the
standard simplification for discrete diffusion.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.diffusion.denoisers.base import Denoiser
from repro.diffusion.schedule import DiffusionSchedule
from repro.nn.functional import (
    avg_pool2,
    avg_pool2_backward,
    bce_with_logits,
    conv2d_backward,
    conv2d_forward,
    relu,
    relu_backward,
    sigmoid,
    upsample2,
    upsample2_backward,
)
from repro.nn.optim import Adam


class UNetLite(Denoiser):
    """Encoder-decoder denoiser: enc -> pool -> mid -> upsample+skip -> out.

    Input channels: noisy topology, a constant noise-level plane and one
    one-hot plane per class.  Output: per-pixel logit of ``P(x_0 = 1)``.
    """

    def __init__(
        self,
        n_classes: int = 0,
        base_channels: int = 12,
        seed: int = 0,
    ):
        self.n_classes = n_classes
        self.channels = base_channels
        c_in = 2 + n_classes
        c = base_channels
        rng = np.random.default_rng(seed)
        self.params: Dict[str, np.ndarray] = {
            "enc_w": _kaiming(rng, (c, c_in, 3, 3)),
            "enc_b": np.zeros(c),
            "mid_w": _kaiming(rng, (2 * c, c, 3, 3)),
            "mid_b": np.zeros(2 * c),
            "dec_w": _kaiming(rng, (c, 3 * c, 3, 3)),
            "dec_b": np.zeros(c),
            "out_w": _kaiming(rng, (1, c, 3, 3)),
            "out_b": np.zeros(1),
        }

    def _input_planes(
        self, xk: np.ndarray, noise_level: float, condition: int
    ) -> np.ndarray:
        b, h, w = xk.shape
        planes = [xk.astype(np.float64)[:, None], np.full((b, 1, h, w), noise_level)]
        for c in range(self.n_classes):
            planes.append(np.full((b, 1, h, w), 1.0 if c == condition else 0.0))
        return np.concatenate(planes, axis=1)

    def _forward(self, x: np.ndarray) -> tuple:
        enc_pre, enc_cache = conv2d_forward(x, self.params["enc_w"], self.params["enc_b"])
        enc = relu(enc_pre)
        pooled = avg_pool2(enc)
        mid_pre, mid_cache = conv2d_forward(pooled, self.params["mid_w"], self.params["mid_b"])
        mid = relu(mid_pre)
        up = upsample2(mid)
        merged = np.concatenate([up, enc], axis=1)
        dec_pre, dec_cache = conv2d_forward(merged, self.params["dec_w"], self.params["dec_b"])
        dec = relu(dec_pre)
        logits, out_cache = conv2d_forward(dec, self.params["out_w"], self.params["out_b"])
        caches = {
            "enc_pre": enc_pre, "enc_cache": enc_cache, "enc": enc,
            "mid_pre": mid_pre, "mid_cache": mid_cache,
            "dec_pre": dec_pre, "dec_cache": dec_cache,
            "out_cache": out_cache,
        }
        return logits[:, 0], caches

    def _backward(self, dlogits: np.ndarray, caches: Dict) -> Dict[str, np.ndarray]:
        grads: Dict[str, np.ndarray] = {}
        ddec, grads["out_w"], grads["out_b"] = conv2d_backward(
            dlogits[:, None], caches["out_cache"]
        )
        ddec_pre = relu_backward(ddec, caches["dec_pre"])
        dmerged, grads["dec_w"], grads["dec_b"] = conv2d_backward(
            ddec_pre, caches["dec_cache"]
        )
        c2 = 2 * self.channels
        dup = dmerged[:, :c2]
        denc_skip = dmerged[:, c2:]
        dmid = upsample2_backward(dup)
        dmid_pre = relu_backward(dmid, caches["mid_pre"])
        dpooled, grads["mid_w"], grads["mid_b"] = conv2d_backward(
            dmid_pre, caches["mid_cache"]
        )
        denc = avg_pool2_backward(dpooled) + denc_skip
        denc_pre = relu_backward(denc, caches["enc_pre"])
        _, grads["enc_w"], grads["enc_b"] = conv2d_backward(
            denc_pre, caches["enc_cache"]
        )
        return grads

    def predict_x0(
        self, xk: np.ndarray, noise_level: float, condition: Optional[int] = None
    ) -> np.ndarray:
        c = self._validate_condition(condition)
        batched = xk.ndim == 3
        arr = xk if batched else xk[None]
        x = self._input_planes(np.asarray(arr, dtype=np.uint8), noise_level, c)
        logits, _ = self._forward(x)
        probs = sigmoid(logits)
        return probs if batched else probs[0]

    def fit(
        self,
        topologies: np.ndarray,
        conditions: Optional[np.ndarray],
        schedule: DiffusionSchedule,
        rng: np.random.Generator,
        iterations: int = 200,
        batch_size: int = 8,
        lr: float = 2e-4,
    ) -> dict:
        """Minibatch Adam training on the x0-prediction cross-entropy."""
        topologies = np.asarray(topologies, dtype=np.uint8)
        n = topologies.shape[0]
        cond = (
            np.zeros(n, dtype=np.int64)
            if conditions is None
            else np.asarray(conditions, dtype=np.int64)
        )
        optimizer = Adam(self.params, lr=lr, grad_clip=1.0)
        losses = []
        for _ in range(iterations):
            idx = rng.integers(0, n, size=batch_size)
            # One class per batch: the condition plane is batch-constant.
            c = int(cond[idx[0]])
            idx = idx[cond[idx] == c] if self.n_classes else idx
            x0 = topologies[idx]
            k = int(rng.integers(1, schedule.steps + 1))
            xk = schedule.forward_sample(x0, k, rng)
            x = self._input_planes(xk, schedule.beta_bar(k), c)
            logits, caches = self._forward(x)
            loss, dlogits = bce_with_logits(logits, x0)
            grads = self._backward(dlogits, caches)
            optimizer.step(grads)
            losses.append(loss)
        return {"loss_history": losses, "final_loss": losses[-1] if losses else None}


def _kaiming(rng: np.random.Generator, shape: tuple) -> np.ndarray:
    fan_in = int(np.prod(shape[1:]))
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)
