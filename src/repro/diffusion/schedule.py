"""Noise schedule and transition algebra of the 2-state discrete diffusion.

Implements Eqs. (1)-(4) of the paper for the binary topology alphabet
{0, 1}.  The per-step transition matrix is symmetric,

    Q_k = [[1 - beta_k, beta_k], [beta_k, 1 - beta_k]],

so the cumulative product stays in the same family with an effective flip
probability ``beta_bar_k`` obeying ``1 - 2*beta_bar_k = prod(1 - 2*beta_i)``,
which gives closed-form forward sampling at any step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np


SamplerSteps = Union[str, int, None]


def validate_sampler_steps(value: SamplerSteps) -> SamplerSteps:
    """Check a ``sampler_steps`` spec: ``"full"`` | ``"bucketed"`` | int.

    The single validation every path funnels through — config, CLI and
    per-call overrides alike (``reverse_steps`` applies it itself).
    """
    if value is None or value in ("full", "bucketed"):
        return value
    if isinstance(value, bool):
        raise ValueError("sampler_steps must be 'full', 'bucketed' or an int")
    if isinstance(value, (int, np.integer)):
        if value < 1:
            raise ValueError(f"sampler_steps must be >= 1, got {value}")
        return int(value)
    raise ValueError(
        f"sampler_steps must be 'full', 'bucketed' or an int, got {value!r}"
    )


def linear_beta_schedule(steps: int, beta_1: float = 0.01, beta_k: float = 0.5) -> np.ndarray:
    """Eq. (4): linearly increasing flip probabilities ``beta_1 .. beta_K``."""
    if steps < 1:
        raise ValueError("steps must be >= 1")
    if not (0.0 < beta_1 <= beta_k <= 0.5):
        raise ValueError("need 0 < beta_1 <= beta_K <= 0.5")
    if steps == 1:
        return np.array([beta_1])
    k = np.arange(1, steps + 1, dtype=np.float64)
    return (k - 1.0) * (beta_k - beta_1) / (steps - 1.0) + beta_1


@dataclass
class DiffusionSchedule:
    """Precomputed schedule over ``K`` forward steps.

    ``betas[i]`` is the flip probability of step ``k = i + 1`` and
    ``beta_bars[i]`` the cumulative flip probability of ``q(x_k | x_0)``.
    """

    betas: np.ndarray
    beta_bars: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.betas = np.asarray(self.betas, dtype=np.float64)
        if self.betas.ndim != 1 or self.betas.size == 0:
            raise ValueError("betas must be a non-empty 1-D array")
        if ((self.betas <= 0) | (self.betas > 0.5)).any():
            raise ValueError("betas must lie in (0, 0.5]")
        self.beta_bars = 0.5 * (1.0 - np.cumprod(1.0 - 2.0 * self.betas))

    @classmethod
    def linear(cls, steps: int, beta_1: float = 0.01, beta_k: float = 0.5) -> "DiffusionSchedule":
        """Schedule with the paper's linear beta ramp (default 0.01 -> 0.5)."""
        return cls(betas=linear_beta_schedule(steps, beta_1, beta_k))

    def respaced(self, steps: int) -> "DiffusionSchedule":
        """DDIM-style respacing: a shorter schedule visiting the same
        terminal noise level.

        Selects ``steps`` cumulative noise levels evenly spaced over this
        schedule's ``beta_bar`` trajectory and derives the per-step betas
        that realise them, so a denoiser trained against this schedule can
        sample in fewer reverse steps without re-training.
        """
        if not 1 <= steps <= self.steps:
            raise ValueError(f"respaced steps must be in [1, {self.steps}]")
        indices = np.linspace(0, self.steps - 1, steps).round().astype(int)
        bars = self.beta_bars[indices]
        # Invert the cumulative recursion: 1-2*bar_k = prod(1-2*beta_i).
        survival = 1.0 - 2.0 * bars
        prev = np.concatenate(([1.0], survival[:-1]))
        ratio = np.clip(survival / prev, 1e-12, 1.0)
        betas = np.clip((1.0 - ratio) / 2.0, 1e-9, 0.5)
        return DiffusionSchedule(betas=betas)

    @property
    def steps(self) -> int:
        """K, the diffusion length."""
        return int(self.betas.shape[0])

    def reverse_steps(
        self,
        sampler_steps: Union[str, int, None] = "full",
        n_buckets: Optional[int] = None,
    ) -> List[int]:
        """The descending step indices a reverse chain visits.

        The step-schedule abstraction behind the fast samplers: the reverse
        chain walks the returned ``k`` values in order (always ending at 1,
        the deterministic final step) and re-noises each prediction to the
        *next visited* step instead of ``k - 1``, a DDIM-style stride.

        Modes:

        - ``"full"`` (or ``None``) — every step ``K .. 1``, the exact
          original chain.
        - ``"bucketed"`` — one representative step per *noise bucket* of a
          bucketed denoiser (``n_buckets`` required): consecutive steps
          whose ``beta_bar`` falls in the same bucket read identical tables,
          so only the lowest-noise step of each occupied bucket is kept —
          cutting denoiser evaluations from ``K`` to at most ``n_buckets``.
          Falls back to ``"full"`` when ``n_buckets`` is ``None`` (the
          denoiser is not bucketed, so there is nothing to collapse).
        - an ``int`` ``n`` — ``n`` steps evenly spaced over the step range
          (endpoints included); ``n >= K`` clamps to the full chain, so one
          configured count works across schedules of any length.
        """
        sampler_steps = validate_sampler_steps(sampler_steps)
        if sampler_steps is None or sampler_steps == "full":
            return list(range(self.steps, 0, -1))
        if sampler_steps == "bucketed":
            if n_buckets is None:
                return list(range(self.steps, 0, -1))
            # beta_bar is strictly increasing in k, so walking k upward
            # visits buckets in order; keep the first (lowest-noise) k of
            # each occupied bucket.  k=1 is always kept: it is the first k
            # of the lowest occupied bucket.
            buckets = np.minimum(
                n_buckets - 1, (self.beta_bars / 0.5 * n_buckets).astype(int)
            )
            _, first_of_bucket = np.unique(buckets, return_index=True)
            return sorted((int(i) + 1 for i in first_of_bucket), reverse=True)
        ks = np.linspace(self.steps, 1, min(sampler_steps, self.steps))
        return sorted({int(round(k)) for k in ks}, reverse=True)

    def beta(self, k: int) -> float:
        """Flip probability of forward step ``k`` (1-based)."""
        self._check_k(k)
        return float(self.betas[k - 1])

    def beta_bar(self, k: int) -> float:
        """Cumulative flip probability of ``q(x_k | x_0)`` (1-based)."""
        self._check_k(k)
        return float(self.beta_bars[k - 1])

    def forward_sample(
        self, x0: np.ndarray, k: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample ``x_k ~ q(x_k | x_0)`` (Eq. 2) by independent pixel flips."""
        flip = rng.random(x0.shape) < self.beta_bar(k)
        return np.where(flip, 1 - x0, x0).astype(np.uint8)

    def posterior_probability(
        self, xk: np.ndarray, x0: np.ndarray, k: int
    ) -> np.ndarray:
        """``P(x_{k-1} = 1 | x_k, x_0)`` elementwise.

        ``q(x_{k-1}|x_k, x_0) \\propto q(x_k|x_{k-1}) q(x_{k-1}|x_0)``; for
        ``k = 1`` the posterior is the delta at ``x_0``.
        """
        self._check_k(k)
        xk_f = xk.astype(np.float64)
        x0_f = x0.astype(np.float64)
        if k == 1:
            return x0_f
        beta = self.beta(k)
        bar_prev = self.beta_bar(k - 1)
        # Likelihood of observing x_k from hypothetical x_{k-1} = 1 / 0.
        like_1 = np.where(xk_f == 1.0, 1.0 - beta, beta)
        like_0 = np.where(xk_f == 0.0, 1.0 - beta, beta)
        # Prior of x_{k-1} given x_0.
        prior_1 = np.where(x0_f == 1.0, 1.0 - bar_prev, bar_prev)
        prior_0 = 1.0 - prior_1
        numer = like_1 * prior_1
        denom = numer + like_0 * prior_0
        return numer / denom

    def posterior_mix(
        self, xk: np.ndarray, p_x0: np.ndarray, k: int
    ) -> np.ndarray:
        """Eq. (5)/(9): ``P(x_{k-1}=1 | x_k)`` marginalised over predicted x0.

        ``p_x0`` holds the model's ``P(x_0 = 1 | x_k, c)`` per pixel; the sum
        over the two possible ``x_0`` states is carried out in closed form.
        """
        ones = np.ones_like(xk)
        zeros = np.zeros_like(xk)
        post_if_1 = self.posterior_probability(xk, ones, k)
        post_if_0 = self.posterior_probability(xk, zeros, k)
        return p_x0 * post_if_1 + (1.0 - p_x0) * post_if_0

    def _check_k(self, k: int) -> None:
        if not 1 <= k <= self.steps:
            raise ValueError(f"step k={k} outside [1, {self.steps}]")
