"""Conditional discrete diffusion: schedule, losses, denoisers, model."""

from repro.diffusion.denoisers.base import Denoiser, MarginalDenoiser
from repro.diffusion.denoisers.neighborhood import (
    NeighborhoodDenoiser,
    neighborhood_codes,
)
from repro.diffusion.denoisers.unet_lite import UNetLite
from repro.diffusion.loss import bernoulli_kl, bernoulli_nll, diffusion_loss
from repro.diffusion.model import ConditionalDiffusionModel
from repro.diffusion.schedule import DiffusionSchedule, linear_beta_schedule

__all__ = [
    "ConditionalDiffusionModel",
    "Denoiser",
    "DiffusionSchedule",
    "MarginalDenoiser",
    "NeighborhoodDenoiser",
    "UNetLite",
    "bernoulli_kl",
    "bernoulli_nll",
    "diffusion_loss",
    "linear_beta_schedule",
    "neighborhood_codes",
]
