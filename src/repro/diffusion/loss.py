"""Training objective of the conditional discrete diffusion model (Eq. 10).

``L = KL(q(x_{k-1}|x_k, x_0) || p_theta(x_{k-1}|x_k, c))
      - lambda * log p_theta(x_0 | x_k, c)``

Both terms are evaluated pixelwise in closed form for the binary alphabet.
"""

from __future__ import annotations

import numpy as np

from repro.diffusion.schedule import DiffusionSchedule

_EPS = 1e-12


def bernoulli_kl(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Elementwise ``KL(Bern(p) || Bern(q))`` in nats."""
    p = np.clip(p, _EPS, 1.0 - _EPS)
    q = np.clip(q, _EPS, 1.0 - _EPS)
    return p * np.log(p / q) + (1.0 - p) * np.log((1.0 - p) / (1.0 - q))


def bernoulli_nll(x: np.ndarray, p: np.ndarray) -> np.ndarray:
    """Elementwise ``-log p(x)`` for a Bernoulli with success prob ``p``."""
    p = np.clip(p, _EPS, 1.0 - _EPS)
    x = x.astype(np.float64)
    return -(x * np.log(p) + (1.0 - x) * np.log(1.0 - p))


def diffusion_loss(
    schedule: DiffusionSchedule,
    x0: np.ndarray,
    xk: np.ndarray,
    k: int,
    p_x0: np.ndarray,
    lam: float = 1e-3,
) -> float:
    """Mean Eq.-(10) loss over all pixels.

    ``p_x0`` is the model's predicted ``P(x_0 = 1 | x_k, c)``.
    """
    q_post = schedule.posterior_probability(xk, x0, k)
    p_post = schedule.posterior_mix(xk, p_x0, k)
    kl = bernoulli_kl(q_post, p_post)
    ce = bernoulli_nll(x0, p_x0)
    return float(np.mean(kl + lam * ce))
