"""Standard requirement lists: the agent's structured task format.

Requirement auto-formatting (Section 3.1 / 4.2) translates a free-form user
request into one requirement list per sub-task, each with a Basic part
(topology size, physical size, style, count) and an Advanced part
(extension method, drop policy, time limit).  The text template below is the
exact shape shown in the paper's running example.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass
class RequirementList:
    """One sub-task's fully-specified requirements.

    Basic part parameters are mandatory; Advanced part parameters carry
    defaults (``extension_method`` defaults per the agent's experience
    documents, ``drop_allowed`` to True, ``time_limit`` to None).
    """

    topology_size: Tuple[int, int]
    physical_size: Tuple[int, int]
    style: str
    count: int
    extension_method: Optional[str] = None  # "Out", "In", or None
    drop_allowed: bool = True
    time_limit: Optional[float] = None
    seed: int = 0
    subtask_id: int = 1

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("count must be positive")
        if self.extension_method not in (None, "Out", "In"):
            raise ValueError(
                f"extension_method must be 'Out', 'In' or None, "
                f"got {self.extension_method!r}"
            )
        if min(self.topology_size) <= 0 or min(self.physical_size) <= 0:
            raise ValueError("sizes must be positive")

    def needs_extension(self, window: int) -> bool:
        """True if the target topology exceeds the model window."""
        return max(self.topology_size) > window

    def to_text(self) -> str:
        """Render in the paper's requirement-list template."""
        method = self.extension_method if self.extension_method else "None"
        time_limit = self.time_limit if self.time_limit is not None else "None"
        return (
            f"# Requirement - subtask {self.subtask_id}\n"
            f"## Basic Part: Topology Size: [{self.topology_size[0]}, "
            f"{self.topology_size[1]}], Physical Size: [{self.physical_size[0]}, "
            f"{self.physical_size[1]}] nm, Style: {self.style}, "
            f"Count: {self.count},\n"
            f"## Advanced Part: Extension Method: {method} (Default: Out), "
            f"Drop Allowed: {self.drop_allowed} (Default: True), "
            f"Time Limitation: {time_limit} (Default: None)."
        )


_BLOCK_RE = re.compile(r"# Requirement - subtask (\d+)(.*?)(?=# Requirement - subtask |\Z)", re.S)
_PAIR_RE = re.compile(r"\[\s*(\d+)\s*,\s*(\d+)\s*\]")


def parse_requirement_lists(text: str) -> List[RequirementList]:
    """Parse one or more requirement lists from template-formatted text.

    Inverse of :meth:`RequirementList.to_text`; tolerant of whitespace and
    ordering inside each block.  Raises ``ValueError`` when a block misses a
    Basic-part field.
    """
    results: List[RequirementList] = []
    for match in _BLOCK_RE.finditer(text):
        subtask_id = int(match.group(1))
        block = match.group(2)
        topo = _field_pair(block, "Topology Size")
        phys = _field_pair(block, "Physical Size")
        style = _field_str(block, "Style")
        count = _field_int(block, "Count")
        method = _field_optional(block, "Extension Method")
        if method is not None:
            method = method.capitalize()
            if method == "None":
                method = None
        drop_text = _field_optional(block, "Drop Allowed")
        drop = True if drop_text is None else drop_text.lower().startswith("t")
        time_text = _field_optional(block, "Time Limitation")
        time_limit = None
        if time_text is not None and time_text.lower() != "none":
            time_limit = float(time_text)
        results.append(
            RequirementList(
                topology_size=topo,
                physical_size=phys,
                style=style,
                count=count,
                extension_method=method,
                drop_allowed=drop,
                time_limit=time_limit,
                subtask_id=subtask_id,
            )
        )
    if not results:
        raise ValueError("no requirement lists found in text")
    return results


def _field_pair(block: str, name: str) -> Tuple[int, int]:
    match = re.search(rf"{name}:\s*(\[[^\]]*\])", block)
    if not match:
        raise ValueError(f"missing field {name!r} in requirement block")
    pair = _PAIR_RE.search(match.group(1))
    if not pair:
        raise ValueError(f"malformed pair for field {name!r}")
    return (int(pair.group(1)), int(pair.group(2)))


def _field_str(block: str, name: str) -> str:
    match = re.search(rf"{name}:\s*([\w\-']+)", block)
    if not match:
        raise ValueError(f"missing field {name!r} in requirement block")
    return match.group(1).strip("'")


def _field_int(block: str, name: str) -> int:
    match = re.search(rf"{name}:\s*([\d_,]+)", block)
    if not match:
        raise ValueError(f"missing field {name!r} in requirement block")
    return int(match.group(1).replace(",", "").replace("_", ""))


def _field_optional(block: str, name: str) -> Optional[str]:
    match = re.search(rf"{name}:\s*([\w\.\-]+)", block)
    return match.group(1) if match else None
