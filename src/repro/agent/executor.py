"""Task execution: the agent's plan-act-observe loop (Fig. 4, boxes #5-#7).

For every pattern in a requirement list the executor runs the standard
pipeline (generate -> extend -> legalize).  When legalization fails it does
*not* hard-code a recovery: it formats the failure log as an observation,
asks the LLM backend for a ReAct-style decision (Thought / Action / Action
Input) and dispatches whatever tool the model picks — modification of the
failed region, regeneration from a fresh seed, or dropping the case.  This
is the mistake-processing loop Section 4.2 demonstrates.
"""

from __future__ import annotations

import json
import re
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.agent.backend import LLMBackend, Message
from repro.agent.documents import WorkHistory
from repro.agent.requirements import RequirementList
from repro.agent.tools import AgentTools, ToolResult


@dataclass
class ReActStep:
    """One parsed LLM decision."""

    thought: str
    action: str
    action_input: dict
    raw: str


def parse_react(text: str) -> ReActStep:
    """Parse a Thought/Action/Action Input block.

    Tolerant of surrounding prose; ``Action Input`` may be a JSON object or
    the paper's loose ``"key": value`` comma list.
    """
    thought_match = re.search(r"Thought:\s*(.*?)(?:\n|$)", text, re.S)
    action_match = re.search(r"Action:\s*([\w_]+)", text)
    input_match = re.search(r"Action Input:\s*(\{.*\}|[^\n]*)", text, re.S)
    if not action_match:
        raise ValueError(f"no Action found in LLM reply: {text[:200]!r}")
    raw_input = (input_match.group(1).strip() if input_match else "") or "{}"
    braced = raw_input if raw_input.startswith("{") else "{" + raw_input + "}"
    try:
        action_input = json.loads(braced)
    except json.JSONDecodeError:
        action_input = _loose_parse(raw_input)
    return ReActStep(
        thought=(thought_match.group(1).strip() if thought_match else ""),
        action=action_match.group(1),
        action_input=action_input,
        raw=text,
    )


def _loose_parse(text: str) -> dict:
    """Fallback parser for the paper's loose key:value comma syntax."""
    out = {}
    text = text.strip()
    if text.startswith("{") and text.endswith("}"):
        text = text[1:-1]
    for key, value in re.findall(
        r'"(\w+)"\s*:\s*("[^"]*"|\$\{[^}]*\}|[\w\.\-/]+)', text
    ):
        value = value.strip('"')
        if re.fullmatch(r"-?\d+", value):
            out[key] = int(value)
        elif re.fullmatch(r"-?\d+\.\d*", value):
            out[key] = float(value)
        else:
            out[key] = value
    return out


@dataclass
class SubTaskReport:
    """Execution statistics for one requirement list."""

    requirement: RequirementList
    produced: int = 0
    dropped: int = 0
    modifications: int = 0
    regenerations: int = 0
    tool_calls: int = 0
    elapsed_seconds: float = 0.0
    timed_out: bool = False
    decisions: List[ReActStep] = field(default_factory=list)

    @property
    def fulfilled(self) -> bool:
        return self.produced >= self.requirement.count

    def summary(self) -> str:
        req = self.requirement
        return (
            f"subtask {req.subtask_id} [{req.style} "
            f"{req.topology_size[0]}x{req.topology_size[1]} x{req.count}]: "
            f"produced {self.produced}, dropped {self.dropped}, "
            f"{self.modifications} modification(s), "
            f"{self.regenerations} regeneration(s), "
            f"{self.tool_calls} tool call(s) in {self.elapsed_seconds:.1f}s"
        )


class TaskExecutor:
    """Drives tools against one requirement list with LLM failure handling."""

    def __init__(
        self,
        tools: AgentTools,
        backend: LLMBackend,
        history: Optional[WorkHistory] = None,
        max_retries: int = 2,
    ):
        self.tools = tools
        self.backend = backend
        self.history = history or WorkHistory()
        self.max_retries = max_retries

    def execute(self, requirement: RequirementList) -> SubTaskReport:
        """Produce ``requirement.count`` legal patterns (or drop failures)."""
        report = SubTaskReport(requirement=requirement)
        start = time.perf_counter()
        calls_before = len(self.tools.call_log)
        for index in range(requirement.count):
            if (
                requirement.time_limit is not None
                and time.perf_counter() - start > requirement.time_limit
            ):
                # Advanced-part Time Limitation: stop cleanly, report what
                # was produced; the remaining count stays unfulfilled.
                report.timed_out = True
                self.history.record(
                    "timed_out",
                    requirement.subtask_id,
                    f"after {index}/{requirement.count} patterns",
                )
                break
            seed = requirement.seed + index
            handle = self._build_topology(requirement, seed, report)
            self._legalize_with_recovery(requirement, handle, seed, report)
        report.elapsed_seconds = time.perf_counter() - start
        report.tool_calls = len(self.tools.call_log) - calls_before
        return report

    # -- pipeline steps --------------------------------------------------

    def _build_topology(
        self, requirement: RequirementList, seed: int, report: SubTaskReport
    ) -> str:
        window = self.tools.model.window
        base_size = min(max(requirement.topology_size), window)
        result = self.tools.call(
            "Topology_Generation",
            seed=seed,
            style=requirement.style,
            size=base_size,
        )
        if not result.ok:
            raise RuntimeError(f"topology generation failed: {result.message}")
        handle = result.data["topology_path"]
        if requirement.needs_extension(window):
            method = requirement.extension_method or "Out"
            result = self.tools.call(
                "Topology_Extension",
                topology_path=handle,
                target_size=max(requirement.topology_size),
                method=method,
                style=requirement.style,
                seed=seed,
            )
            if not result.ok:
                raise RuntimeError(f"extension failed: {result.message}")
            handle = result.data["topology_path"]
        self.history.record(
            "generated", requirement.subtask_id, f"seed {seed} -> {handle}"
        )
        return handle

    def _legalize_with_recovery(
        self,
        requirement: RequirementList,
        handle: str,
        seed: int,
        report: SubTaskReport,
    ) -> None:
        retries = self.max_retries
        while True:
            result = self.tools.call(
                "Legalization",
                topology_path=handle,
                physical_size=requirement.physical_size,
            )
            if result.ok:
                report.produced += 1
                self.history.record(
                    "legalized", requirement.subtask_id, f"{handle} ok"
                )
                return
            step = self._decide(requirement, result, retries, seed)
            report.decisions.append(step)
            if step.action == "Topology_Modification" and retries > 0:
                retries -= 1
                report.modifications += 1
                args = dict(step.action_input)
                args.setdefault("style", requirement.style)
                args.setdefault("seed", seed)
                args["topology_path"] = handle
                mod = self.tools.call("Topology_Modification", **args)
                if mod.ok:
                    handle = mod.data["topology_path"]
                self.history.record(
                    "modified",
                    requirement.subtask_id,
                    f"{handle} region "
                    f"{(args.get('upper'), args.get('left'), args.get('bottom'), args.get('right'))}",
                )
            elif step.action == "Regenerate" and retries > 0:
                retries -= 1
                report.regenerations += 1
                new_seed = int(step.action_input.get("seed", seed + 104_729))
                handle = self._build_topology(
                    RequirementList(
                        topology_size=requirement.topology_size,
                        physical_size=requirement.physical_size,
                        style=requirement.style,
                        count=1,
                        extension_method=requirement.extension_method,
                        drop_allowed=requirement.drop_allowed,
                        seed=new_seed,
                        subtask_id=requirement.subtask_id,
                    ),
                    new_seed,
                    report,
                )
                self.history.record(
                    "regenerated", requirement.subtask_id, f"seed {new_seed}"
                )
            else:
                report.dropped += 1
                self.history.record(
                    "dropped", requirement.subtask_id, f"{handle} after failures"
                )
                return

    # -- LLM decision -----------------------------------------------------

    def _decide(
        self,
        requirement: RequirementList,
        failure: ToolResult,
        retries: int,
        seed: int,
    ) -> ReActStep:
        messages: List[Message] = [
            {
                "role": "system",
                "content": (
                    "You are operating layout design tools. Given the "
                    "observation from the last tool call, decide the next "
                    "action. Available actions: Topology_Modification, "
                    "Regenerate, Drop. Respond as:\n"
                    "Thought: <reasoning>\nAction: <name>\n"
                    "Action Input: <JSON arguments>"
                ),
            },
            {
                "role": "user",
                "content": (
                    "TASK: REACT_DECISION\n"
                    f"STYLE: {requirement.style}\n"
                    f"SEED: {seed}\n"
                    f"RETRIES REMAINING: {retries}\n"
                    f"DROP ALLOWED: {requirement.drop_allowed}\n"
                    f"OBSERVATION:\n{failure.message}"
                ),
            },
        ]
        return parse_react(self.backend.complete(messages))
