"""LLM backends for the expert agent.

The agent core is backend-agnostic: it exchanges *text* with an
:class:`LLMBackend` (chat-completion style).  ``SimulatedLLM`` is the
offline substitute for the paper's hosted LLM — a deterministic
grammar-driven policy that implements the same two competencies the paper
evaluates (requirement auto-formatting and ReAct-style mistake processing),
responding in the same text formats a hosted model would.  ``ScriptedLLM``
replays canned responses for tests.  A real API client only needs to
implement :meth:`LLMBackend.complete`.
"""

from __future__ import annotations

import json
import re
from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence, Tuple

Message = Dict[str, str]


class LLMBackend(ABC):
    """Chat-completion interface; keeps a transcript for inspection."""

    def __init__(self) -> None:
        self.transcript: List[Message] = []

    @abstractmethod
    def _respond(self, messages: Sequence[Message]) -> str:
        """Produce the assistant reply for the conversation so far."""

    def complete(self, messages: Sequence[Message]) -> str:
        """Run one completion, recording prompt and reply."""
        reply = self._respond(messages)
        self.transcript.extend(messages)
        self.transcript.append({"role": "assistant", "content": reply})
        return reply


class ScriptedLLM(LLMBackend):
    """Replays a fixed sequence of responses (test fixture)."""

    def __init__(self, responses: Sequence[str]):
        super().__init__()
        self._responses = list(responses)
        self._cursor = 0

    def _respond(self, messages: Sequence[Message]) -> str:
        if self._cursor >= len(self._responses):
            raise RuntimeError("ScriptedLLM ran out of responses")
        reply = self._responses[self._cursor]
        self._cursor += 1
        return reply


_COUNT_RE = re.compile(
    r"(\d[\d,\.]*)\s*(k|m|thousand|million)?\s*(?:layout\s+|legal\s+)?patterns",
    re.I,
)
_PHYSICAL_RE = re.compile(
    r"(\d+(?:\.\d+)?)\s*(um|µm|nm)\s*[*x×]\s*(\d+(?:\.\d+)?)\s*(um|µm|nm)", re.I
)
_TOPO_RE = re.compile(r"(\d+)\s*[*x×]\s*(\d+)(?!\s*(?:um|µm|nm))", re.I)
_STYLE_RE = re.compile(r"Layer-\d+")


class SimulatedLLM(LLMBackend):
    """Deterministic policy standing in for a hosted LLM.

    Dispatches on the task marker the agent embeds in its prompts
    (``TASK: AUTO_FORMAT`` / ``TASK: REACT_DECISION``) and answers in the
    same free-text formats the paper shows, which the agent then parses the
    way it would parse any LLM output.
    """

    def _respond(self, messages: Sequence[Message]) -> str:
        prompt = "\n".join(m["content"] for m in messages)
        if "TASK: AUTO_FORMAT" in prompt:
            return self._auto_format(prompt)
        if "TASK: REACT_DECISION" in prompt:
            return self._react_decision(prompt)
        return (
            "I can help with layout pattern generation tasks. Please provide "
            "a requirement or a tool observation."
        )

    # ------------------------------------------------------------------
    # Requirement auto-formatting
    # ------------------------------------------------------------------

    def _auto_format(self, prompt: str) -> str:
        requirement = _section(prompt, "USER REQUIREMENT")
        window = _int_field(prompt, "MODEL WINDOW", default=128)
        recommended = _str_field(prompt, "RECOMMENDED_EXTENSION", default="Out")

        total = self._parse_count(requirement)
        physical = self._parse_physical(requirement)
        topo_sizes = self._parse_topology_sizes(requirement, physical)
        styles = _STYLE_RE.findall(requirement) or ["Layer-10001"]
        method_override = self._parse_method(requirement)
        drop_allowed = not re.search(
            r"(no|without|don't|do not)\s+drop", requirement, re.I
        )

        if not topo_sizes:
            topo_sizes = [(window, window)]
        if physical is None:
            # Default physical scaling: 16 nm per topology cell.
            physical = (topo_sizes[0][0] * 16, topo_sizes[0][1] * 16)

        combos: List[Tuple[str, Tuple[int, int]]] = [
            (style, size) for style in styles for size in topo_sizes
        ]
        share = total // len(combos)
        remainder = total - share * len(combos)
        blocks = []
        for i, (style, size) in enumerate(combos):
            count = share + (remainder if i == 0 else 0)
            needs_ext = max(size) > window
            method = method_override if method_override else (
                recommended if needs_ext else "None"
            )
            blocks.append(
                f"# Requirement - subtask {i + 1}\n"
                f"## Basic Part: Topology Size: [{size[0]}, {size[1]}], "
                f"Physical Size: [{physical[0]}, {physical[1]}] nm, "
                f"Style: {style}, Count: {count},\n"
                f"## Advanced Part: Extension Method: {method} (Default: Out), "
                f"Drop Allowed: {drop_allowed} (Default: True), "
                f"Time Limitation: None (Default: None)."
            )
        return "\n".join(blocks)

    @staticmethod
    def _parse_count(text: str) -> int:
        match = _COUNT_RE.search(text)
        if not match:
            return 10
        value = float(match.group(1).replace(",", ""))
        unit = (match.group(2) or "").lower()
        if unit in ("k", "thousand"):
            value *= 1_000
        elif unit in ("m", "million"):
            value *= 1_000_000
        return max(1, int(value))

    @staticmethod
    def _parse_physical(text: str) -> Optional[Tuple[int, int]]:
        match = _PHYSICAL_RE.search(text)
        if not match:
            return None
        w = float(match.group(1))
        h = float(match.group(3))
        if match.group(2).lower() in ("um", "µm"):
            w *= 1000
        if match.group(4).lower() in ("um", "µm"):
            h *= 1000
        return (int(w), int(h))

    @staticmethod
    def _parse_topology_sizes(
        text: str, physical: Optional[Tuple[int, int]]
    ) -> List[Tuple[int, int]]:
        spans_to_skip = []
        match = _PHYSICAL_RE.search(text)
        if match:
            spans_to_skip.append(match.span())
        sizes = []
        for m in _TOPO_RE.finditer(text):
            if any(a <= m.start() < b for a, b in spans_to_skip):
                continue
            size = (int(m.group(1)), int(m.group(2)))
            if size not in sizes:
                sizes.append(size)
        return sizes

    @staticmethod
    def _parse_method(text: str) -> Optional[str]:
        if re.search(r"out[\s-]?paint", text, re.I):
            return "Out"
        if re.search(r"in[\s-]?paint", text, re.I):
            return "In"
        return None

    # ------------------------------------------------------------------
    # ReAct mistake processing
    # ------------------------------------------------------------------

    def _react_decision(self, prompt: str) -> str:
        retries = _int_field(prompt, "RETRIES REMAINING", default=0)
        drop_allowed = _str_field(prompt, "DROP ALLOWED", default="True") == "True"
        style = _str_field(prompt, "STYLE", default="Layer-10001")
        seed = _int_field(prompt, "SEED", default=42)
        region = self._parse_region(prompt)

        if retries > 0 and region is not None:
            upper, left, bottom, right = region
            payload = {
                "upper": upper,
                "left": left,
                "bottom": bottom,
                "right": right,
                "style": style,
                "seed": seed,
            }
            return (
                "Thought: The legalization failed in a localized region; I "
                "will re-paint that specific area with the same style and "
                "then attempt legalization again.\n"
                "Action: Topology_Modification\n"
                f"Action Input: {json.dumps(payload)}"
            )
        if retries > 0:
            return (
                "Thought: The failure is not localized; I will regenerate "
                "the topology from a fresh seed.\n"
                "Action: Regenerate\n"
                f"Action Input: {json.dumps({'seed': seed + 1})}"
            )
        if drop_allowed:
            return (
                "Thought: Repair attempts are exhausted and dropping is "
                "allowed, so I will drop this case to guarantee legality of "
                "the final library.\n"
                "Action: Drop\nAction Input: {}"
            )
        return (
            "Thought: Dropping is not allowed; I will regenerate from a "
            "fresh seed as a last resort.\n"
            "Action: Regenerate\n"
            f"Action Input: {json.dumps({'seed': seed + 1})}"
        )

    @staticmethod
    def _parse_region(prompt: str) -> Optional[Tuple[int, int, int, int]]:
        match = re.search(
            r"FAILED REGION:\s*\((\d+),\s*(\d+),\s*(\d+),\s*(\d+)\)", prompt
        )
        if not match:
            return None
        return tuple(int(match.group(i)) for i in range(1, 5))


def _section(prompt: str, header: str) -> str:
    match = re.search(rf"{header}:\s*(.*?)(?:\n[A-Z_ ]+:|\Z)", prompt, re.S)
    return match.group(1).strip() if match else prompt


def _int_field(prompt: str, name: str, default: int) -> int:
    match = re.search(rf"{name}:\s*(-?\d+)", prompt)
    return int(match.group(1)) if match else default


def _str_field(prompt: str, name: str, default: str) -> str:
    match = re.search(rf"{name}:\s*([^\n]+)", prompt)
    return match.group(1).strip() if match else default
