"""Design tools the LLM agent operates (Tool Function Learning, Sec. 3.1).

The core contract: the agent never sees the 0/1 matrices themselves — tools
exchange *handles* into a workspace plus high-level characteristics
(size, complexity, error locations), exactly the paper's workaround for the
LLM token limit.  Each tool returns a :class:`ToolResult` whose message is
the text the agent reasons over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # runtime import would cycle through repro.serve -> core
    from repro.serve.store import LibraryStore

from repro.api.pipeline import PatternPipeline
from repro.data.styles import style_condition
from repro.diffusion.model import ConditionalDiffusionModel
from repro.drc.rules import rules_for_style
from repro.drc.violations import GridRegion
from repro.legalize.legalizer import LegalizationResult
from repro.metrics.stats import library_stats
from repro.ops.modify import modify_region
from repro.squish.complexity import topology_complexity
from repro.squish.pattern import PatternLibrary


@dataclass
class ToolResult:
    """Outcome of one tool call, as the agent sees it."""

    ok: bool
    message: str
    data: Dict = field(default_factory=dict)


class Workspace:
    """Handle-addressed storage for topologies and the output library."""

    def __init__(self) -> None:
        self._topologies: Dict[str, np.ndarray] = {}
        self._styles: Dict[str, str] = {}
        self.library = PatternLibrary(name="agent-output")
        self._counter = 0

    def put(self, topology: np.ndarray, style: str) -> str:
        """Store a topology; returns its handle (a pseudo-path)."""
        self._counter += 1
        handle = f"workspace/topology_{self._counter:06d}.npy"
        self._topologies[handle] = np.asarray(topology, dtype=np.uint8)
        self._styles[handle] = style
        return handle

    def get(self, handle: str) -> np.ndarray:
        try:
            return self._topologies[handle]
        except KeyError:
            raise KeyError(f"unknown topology handle {handle!r}") from None

    def style_of(self, handle: str) -> str:
        return self._styles[handle]

    def drop(self, handle: str) -> None:
        """Free a topology (memory-friendliness of the working space)."""
        self._topologies.pop(handle, None)
        self._styles.pop(handle, None)

    def __len__(self) -> int:
        return len(self._topologies)


class AgentTools:
    """The tool suite bound to a generator model and a workspace.

    Args:
        model: the conditional diffusion back-end.
        workspace: handle store (a fresh one is created by default).
        base_seed: offset mixed into every per-call seed for reproducibility.
        store: optional indexed :class:`~repro.serve.store.LibraryStore`;
            when attached, ``Save_Library`` persists the output library with
            content-hash dedup and ``Analyze_Library`` reports store totals.
        pipeline: the :class:`PatternPipeline` the sampling/extension/
            legalization tools route through; rebound to ``model`` so the
            tools and the pipeline always agree on the back-end (the serve
            path hands in a batched scheduler client).  A default pipeline
            is built when omitted.
    """

    def __init__(
        self,
        model: ConditionalDiffusionModel,
        workspace: Optional[Workspace] = None,
        base_seed: int = 0,
        store: Optional["LibraryStore"] = None,
        pipeline: Optional[PatternPipeline] = None,
    ):
        self.model = model
        # Note: "workspace or Workspace()" would discard an *empty* caller
        # workspace (PatternLibrary-backed containers are falsy when empty).
        self.workspace = workspace if workspace is not None else Workspace()
        self.base_seed = base_seed
        self.store = store
        self.pipeline = (
            pipeline.bound_to(model)
            if pipeline is not None
            else PatternPipeline(model=model)
        )
        if store is not None:
            # Save_Library persists through the pipeline's store primitive,
            # so the tools' store and the pipeline's must be one object
            # (with_store is a no-op when they already are).
            self.pipeline = self.pipeline.with_store(store)
        self.call_log: List[Tuple[str, Dict]] = []
        self._registry: Dict[str, Callable[..., ToolResult]] = {
            "Topology_Generation": self.topology_generation,
            "Topology_Extension": self.topology_extension,
            "Legalization": self.legalization,
            "Topology_Modification": self.topology_modification,
            "Topology_Selection": self.topology_selection,
            "Analyze_Library": self.analyze_library,
            "Save_Library": self.save_library,
        }

    # -- registry ------------------------------------------------------

    def names(self) -> List[str]:
        return sorted(self._registry)

    def call(self, name: str, **kwargs) -> ToolResult:
        """Dispatch a tool call by name (the agent's Action)."""
        self.call_log.append((name, dict(kwargs)))
        job = getattr(self.pipeline, "job", None)
        if job is not None:
            # Cancel checkpoint between tool calls: a DELETEd chat job
            # stops before its next action rather than running the plan
            # to completion.
            job.check_cancelled()
        fn = self._registry.get(name)
        if fn is None:
            return ToolResult(
                ok=False,
                message=f"unknown tool {name!r}; available: {self.names()}",
            )
        try:
            return fn(**kwargs)
        except (KeyError, ValueError, RuntimeError) as exc:
            # Typed serving control-flow must propagate with its class
            # intact: engine backpressure/deadline errors carry the stable
            # machine-readable ``code`` the service's terminal job state is
            # keyed on, and a cancel must abort the whole request — neither
            # is a tool failure the agent should retry around.
            from repro.serve.engine import EngineError
            from repro.serve.jobs import JobCancelled

            if isinstance(exc, (EngineError, JobCancelled)):
                raise
            return ToolResult(ok=False, message=f"tool error: {exc}")

    def documentation(self) -> str:
        """Tool descriptions injected into the agent prompt (#2 in Fig. 4)."""
        return (
            "Topology_Generation(seed, style, size): sample a size x size "
            "topology of the given style; returns a topology path.\n"
            "Topology_Extension(topology_path, target_size, method, style, "
            "seed): extend a topology to target_size via method 'Out' "
            "(out-painting) or 'In' (in-painting); returns a topology path.\n"
            "Legalization(topology_path, physical_size): legalize the "
            "topology into physical_size nm; on success the pattern joins "
            "the output library, on failure the log names the failed "
            "region.\n"
            "Topology_Modification(topology_path, upper, left, bottom, "
            "right, style, seed): regenerate the given cell region of the "
            "topology; returns a new topology path.\n"
            "Topology_Selection(seed, style, count, physical_size, size, "
            "max_attempts): generate-and-select — keep sampling topologies "
            "and keep only those that legalize, until count legal patterns "
            "join the library (guarantees legality at the cost of wasted "
            "samplings; disabled in Table-1 comparisons).\n"
            "Analyze_Library(): report count/diversity statistics of the "
            "output library.\n"
            "Save_Library(): persist the output library into the attached "
            "indexed pattern store (content-hash deduplicated); fails when "
            "no store is attached."
        )

    # -- tools ---------------------------------------------------------

    def _rng(self, seed: int) -> np.random.Generator:
        return np.random.default_rng((self.base_seed * 1_000_003 + seed) % (2**63))

    def topology_generation(
        self, seed: int, style: str, size: Optional[int] = None
    ) -> ToolResult:
        """Random Topology Generation under a style condition."""
        size = size or self.model.window
        if size > self.model.window:
            return ToolResult(
                ok=False,
                message=(
                    f"requested size {size} exceeds model window "
                    f"{self.model.window}; use Topology_Extension"
                ),
            )
        topo = self.pipeline.sample_topologies(
            1, style, size=size, rng=self._rng(seed)
        )[0]
        handle = self.workspace.put(topo, style)
        cx, cy = topology_complexity(topo)
        return ToolResult(
            ok=True,
            message=(
                f"generated {size}x{size} topology of style {style} at "
                f"{handle}; complexity (cx={cx}, cy={cy})"
            ),
            data={"topology_path": handle, "complexity": (cx, cy)},
        )

    def topology_extension(
        self,
        topology_path: str,
        target_size: int,
        method: str = "Out",
        style: Optional[str] = None,
        seed: int = 0,
    ) -> ToolResult:
        """Extend a topology to ``target_size`` (In/Out-Painting)."""
        topo = self.workspace.get(topology_path)
        style = style or self.workspace.style_of(topology_path)
        method_key = method.lower()
        if method_key not in ("in", "out"):
            return ToolResult(ok=False, message=f"unknown method {method!r}")
        result = self.pipeline.extend_one(
            target_size,
            style,
            method=method_key,
            rng=self._rng(seed),
            seed_topology=topo if topo.shape == (self.model.window,) * 2 else None,
        )
        handle = self.workspace.put(result.topology, style)
        return ToolResult(
            ok=True,
            message=(
                f"extended to {target_size}x{target_size} via "
                f"{method}-painting with {result.samplings} samplings; "
                f"result at {handle}"
            ),
            data={"topology_path": handle, "samplings": result.samplings},
        )

    def legalization(
        self,
        topology_path: str,
        physical_size: Tuple[int, int],
    ) -> ToolResult:
        """Legalize; success adds the pattern to the output library."""
        topo = self.workspace.get(topology_path)
        style = self.workspace.style_of(topology_path)
        result: LegalizationResult = self.pipeline.legalize_one(
            topo, style, physical_size
        )
        if result.ok:
            self.workspace.library.add(result.pattern)
            return ToolResult(
                ok=True,
                message=f"legalization succeeded; pattern added to library "
                f"(size {len(self.workspace.library)})",
                data={"pattern_index": len(self.workspace.library) - 1},
            )
        region = result.failed_region.as_tuple() if result.failed_region else None
        return ToolResult(
            ok=False,
            message=(
                "legalization FAILED.\n"
                + result.log_text()
                + (f"\nFAILED REGION: {region}" if region else "")
            ),
            data={"failed_region": region, "log": result.log},
        )

    def topology_modification(
        self,
        topology_path: str,
        upper: int,
        left: int,
        bottom: int,
        right: int,
        style: Optional[str] = None,
        seed: int = 0,
    ) -> ToolResult:
        """Regenerate a cell region of an existing topology (Eq. 12)."""
        topo = self.workspace.get(topology_path)
        style = style or self.workspace.style_of(topology_path)
        rows, cols = topo.shape
        region = GridRegion(
            max(0, upper),
            max(0, left),
            min(rows - 1, bottom),
            min(cols - 1, right),
        )
        condition = style_condition(style) if self.model.n_classes else None
        repaired = modify_region(
            self.model, topo, region, condition, self._rng(seed),
            sampler_steps=self.pipeline.config.sample.sampler_steps,
        )
        handle = self.workspace.put(repaired, style)
        return ToolResult(
            ok=True,
            message=(
                f"modified region {region.as_tuple()} with style {style}; "
                f"result at {handle}"
            ),
            data={"topology_path": handle},
        )

    def topology_selection(
        self,
        seed: int,
        style: str,
        count: int,
        physical_size: Optional[Tuple[int, int]] = None,
        size: Optional[int] = None,
        max_attempts: Optional[int] = None,
    ) -> ToolResult:
        """Generate-and-select: sample until ``count`` legal patterns found.

        The selection trick every squish-based method can apply to reach
        100% legality (Sec. 4.1); the Table-1 protocol disables it, but the
        agent may use it when a user demands a guaranteed-legal library.
        """
        from repro.metrics.legality import physical_size_for

        size = size or self.model.window
        if size > self.model.window:
            return ToolResult(
                ok=False,
                message="selection works on window-sized topologies; extend "
                "afterwards or select over extended topologies manually",
            )
        max_attempts = max_attempts or count * 10
        physical = physical_size or physical_size_for((size, size))
        rules = rules_for_style(style)
        rng = self._rng(seed)
        kept = 0
        attempts = 0
        while kept < count and attempts < max_attempts:
            attempts += 1
            topo = self.pipeline.sample_topologies(
                1, style, size=size, rng=rng
            )[0]
            result = self.pipeline.legalize_one(
                topo, style, physical, rules=rules
            )
            if result.ok:
                self.workspace.library.add(result.pattern)
                kept += 1
        ok = kept >= count
        return ToolResult(
            ok=ok,
            message=(
                f"selection kept {kept}/{count} legal pattern(s) in "
                f"{attempts} attempt(s)"
                + ("" if ok else "; attempt budget exhausted")
            ),
            data={"kept": kept, "attempts": attempts},
        )

    def analyze_library(self) -> ToolResult:
        """Report aggregate statistics of the output library (and store)."""
        stats = library_stats(self.workspace.library)
        data = stats.as_dict()
        message = f"library statistics: {data}"
        if self.store is not None:
            store_stats = self.store.stats()
            data["store"] = store_stats
            message += f"; persistent store: {store_stats}"
        return ToolResult(ok=True, message=message, data=data)

    def save_library(self) -> ToolResult:
        """Persist the output library into the attached indexed store.

        Patterns reach the output library only through successful
        legalization, so they are recorded as legal; topologies already in
        the store are deduplicated by content hash.
        """
        if self.store is None:
            return ToolResult(
                ok=False,
                message="no pattern store attached; Save_Library unavailable",
            )
        if len(self.workspace.library) == 0:
            return ToolResult(
                ok=False, message="output library is empty; nothing to save"
            )
        # The same persist primitive the CLI and the serving path use.
        report = self.pipeline.persist_library(self.workspace.library)
        return ToolResult(
            ok=True,
            message=(
                f"saved {report.added} new pattern(s) to the store, "
                f"{report.deduplicated} duplicate(s) skipped; store now "
                f"holds {len(self.store)} unique pattern(s)"
            ),
            data={
                "added": report.added,
                "deduplicated": report.deduplicated,
                "hashes": report.hashes,
            },
        )
