"""The expert LLM agent front-end of ChatPattern."""

from repro.agent.backend import LLMBackend, ScriptedLLM, SimulatedLLM
from repro.agent.documents import (
    ExperienceDocuments,
    ExtensionRecord,
    HistoryEvent,
    WorkHistory,
)
from repro.agent.executor import (
    ReActStep,
    SubTaskReport,
    TaskExecutor,
    parse_react,
)
from repro.agent.planner import Plan, TaskPlanner
from repro.agent.requirements import RequirementList, parse_requirement_lists
from repro.agent.session import ChatSession, Turn
from repro.agent.tools import AgentTools, ToolResult, Workspace

__all__ = [
    "AgentTools",
    "ChatSession",
    "ExperienceDocuments",
    "ExtensionRecord",
    "HistoryEvent",
    "LLMBackend",
    "Plan",
    "ReActStep",
    "RequirementList",
    "ScriptedLLM",
    "SimulatedLLM",
    "SubTaskReport",
    "TaskExecutor",
    "TaskPlanner",
    "ToolResult",
    "Turn",
    "Workspace",
    "WorkHistory",
    "parse_react",
    "parse_requirement_lists",
]
