"""Multi-turn chat sessions: the "further improvement" loop of Figure 1.

A :class:`ChatSession` keeps the conversation, the accumulated library and
the work history across requests, so users can iterate: ask for a library,
inspect it, then ask for "200 more of the same" or a different style —
without re-stating the full requirement.  Follow-up requests are resolved
against the previous turn's requirement text before planning, then flow
through the ordinary planner/executor stack.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional

from typing import TYPE_CHECKING

from repro.agent.documents import ExperienceDocuments, WorkHistory
from repro.squish.pattern import PatternLibrary

if TYPE_CHECKING:  # avoid a circular import (core builds on agent)
    from repro.core.chatpattern import ChatPattern, ChatResult

_FOLLOW_UP_RE = re.compile(
    r"\b(more|another|again|additional|same (as|but))\b", re.I
)
_COUNT_RE = re.compile(r"(\d[\d,\.]*)\s*(k|m)?\s*(more|additional|extra)", re.I)


@dataclass
class Turn:
    """One request/response exchange."""

    user_text: str
    effective_text: str
    result: "ChatResult"


@dataclass
class ChatSession:
    """Stateful conversation wrapper around :class:`ChatPattern`."""

    chat: "ChatPattern"
    turns: List[Turn] = field(default_factory=list)
    library: PatternLibrary = field(
        default_factory=lambda: PatternLibrary(name="session-library")
    )
    history: WorkHistory = field(default_factory=WorkHistory)

    def request(self, user_text: str, objective: str = "legality") -> "ChatResult":
        """Handle one turn; follow-ups inherit the previous requirement."""
        effective = self._resolve(user_text)
        result = self.chat.handle_request(effective, objective=objective)
        self.library.extend(list(result.library))
        self.history.events.extend(result.history.events)
        self.turns.append(
            Turn(user_text=user_text, effective_text=effective, result=result)
        )
        return result

    def _resolve(self, user_text: str) -> str:
        """Rewrite a follow-up request into a standalone requirement."""
        if not self.turns or not self.is_follow_up(user_text):
            return user_text
        previous = self.turns[-1].effective_text
        count_match = _COUNT_RE.search(user_text)
        if count_match:
            value = float(count_match.group(1).replace(",", ""))
            unit = (count_match.group(2) or "").lower()
            if unit == "k":
                value *= 1_000
            elif unit == "m":
                value *= 1_000_000
            count_text = f"{int(value)} patterns"
            previous = re.sub(
                r"\d[\d,\.]*\s*(k|m|thousand|million)?\s*(layout\s+)?patterns",
                count_text,
                previous,
                count=1,
                flags=re.I,
            )
        # Style overrides mentioned in the follow-up replace the old style.
        new_styles = re.findall(r"Layer-\d+", user_text)
        if new_styles:
            previous = re.sub(r"Layer-\d+", new_styles[0], previous)
        return previous

    @staticmethod
    def is_follow_up(user_text: str) -> bool:
        """Heuristic: the request references the previous turn."""
        return bool(_FOLLOW_UP_RE.search(user_text))

    def summary(self) -> str:
        """Session-level report: turns, library size, exceptional cases."""
        lines = [
            f"session: {len(self.turns)} turn(s), "
            f"{len(self.library)} pattern(s) accumulated"
        ]
        for i, turn in enumerate(self.turns, start=1):
            lines.append(
                f"turn {i}: {turn.user_text!r} -> "
                f"produced {turn.result.produced}, dropped {turn.result.dropped}"
            )
        exceptional = self.history.exceptional_cases()
        if exceptional:
            lines.append(f"exceptional cases recorded: {len(exceptional)}")
        return "\n".join(lines)
