"""Requirement auto-formatting and task planning (Sec. 3.1).

The planner owns the agent-setup prompt (Fig. 4, boxes #1-#3): role
setting, tool documentation and the document/experience summaries.  It asks
the LLM backend to translate the user's free-form request into standard
requirement lists — one per sub-task — then parses and validates the reply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.agent.backend import LLMBackend, Message
from repro.agent.documents import ExperienceDocuments
from repro.agent.requirements import RequirementList, parse_requirement_lists

AGENT_SETTING = (
    "You are a layout designer and are required to produce a well-designed "
    "layout pattern library according to the user's requirements. Decompose "
    "complex requests into simple sub-tasks, one requirement list each, and "
    "always fill every Basic Part field."
)


@dataclass
class Plan:
    """The planner's output: validated requirement lists + raw LLM text."""

    requirements: List[RequirementList]
    raw_response: str
    warnings: List[str] = field(default_factory=list)

    @property
    def total_count(self) -> int:
        return sum(r.count for r in self.requirements)


class TaskPlanner:
    """Builds auto-format prompts and validates the parsed plan."""

    def __init__(
        self,
        backend: LLMBackend,
        documents: Optional[ExperienceDocuments] = None,
        window: int = 128,
        tool_documentation: str = "",
    ):
        self.backend = backend
        self.documents = documents or ExperienceDocuments()
        self.window = window
        self.tool_documentation = tool_documentation

    def build_prompt(self, user_text: str, objective: str = "legality") -> List[Message]:
        """Compose the Fig.-4 setup prompt around the user requirement."""
        recommended = self.documents.recommend_extension(
            style="Layer-10001", objective=objective
        )
        system = "\n\n".join(
            part
            for part in (
                AGENT_SETTING,
                self.tool_documentation
                and "During the design process, you have access to the "
                "following functions:\n" + self.tool_documentation,
                "There is a standard working pipeline you can refer to:\n"
                + self.documents.pipeline_text(),
                "There is some experience you can refer to:\n"
                + self.documents.summary_text(),
            )
            if part
        )
        user = (
            "TASK: AUTO_FORMAT\n"
            f"MODEL WINDOW: {self.window}\n"
            f"RECOMMENDED_EXTENSION: {recommended}\n"
            f"USER REQUIREMENT: {user_text}\n"
            "Respond with one standard requirement list per sub-task, using "
            "the exact template:\n"
            "# Requirement - subtask N\n"
            "## Basic Part: Topology Size: [H, W], Physical Size: [W, H] nm, "
            "Style: <style>, Count: <n>,\n"
            "## Advanced Part: Extension Method: <Out|In|None> (Default: "
            "Out), Drop Allowed: <True|False> (Default: True), Time "
            "Limitation: <seconds|None> (Default: None)."
        )
        return [
            {"role": "system", "content": system},
            {"role": "user", "content": user},
        ]

    def auto_format(self, user_text: str, objective: str = "legality") -> Plan:
        """Run requirement auto-formatting through the LLM backend."""
        reply = self.backend.complete(self.build_prompt(user_text, objective))
        requirements = parse_requirement_lists(reply)
        warnings: List[str] = []
        for i, req in enumerate(requirements):
            req.seed = 10_007 * (i + 1)
            if req.needs_extension(self.window) and req.extension_method is None:
                req.extension_method = self.documents.recommend_extension(
                    req.style, size=max(req.topology_size), objective=objective
                )
                warnings.append(
                    f"subtask {req.subtask_id}: extension method defaulted "
                    f"to {req.extension_method} from experience documents"
                )
            if not req.needs_extension(self.window) and req.extension_method:
                warnings.append(
                    f"subtask {req.subtask_id}: extension method "
                    f"{req.extension_method} ignored (fits the model window)"
                )
                req.extension_method = None
        return Plan(requirements=requirements, raw_response=reply, warnings=warnings)
