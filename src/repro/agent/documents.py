"""Documents and experience: the agent's high-level knowledge (Sec. 3.1).

Two knowledge sources the paper equips the agent with:

- a **standard working pipeline** (Fig. 4) injected at agent setup, and
- **experience documents** holding statistical data on pattern extension
  (the Fig. 10 measurements): which extension algorithm wins on legality
  versus diversity per style and size.  The agent consults these when a
  requirement leaves the extension method open, and appends its own
  measurements as it works (Learning from Documents and Experience).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

STANDARD_PIPELINE = """\
Standard working pipeline for one requirement list:
1. topology = Topology_Generation(seed, style)            # fixed-size basic topology
2. if target size exceeds the model window:
       topology = Topology_Extension(topology, target, method)
3. result = Legalization(topology, physical_size)          # first attempt
4. if legalization fails:
       inspect the log; if a failed region is reported, call
       Topology_Modification on that region and retry Legalization;
       otherwise regenerate with a fresh seed.
5. if retries are exhausted and dropping is allowed, drop the case;
   record the episode in the work history either way.
"""


@dataclass
class ExtensionRecord:
    """One measured (style, method, size) data point for the documents."""

    style: str
    method: str  # "Out" or "In"
    size: int
    legality: float
    diversity: float


@dataclass
class ExperienceDocuments:
    """The agent's document store: pipeline text + extension statistics."""

    records: List[ExtensionRecord] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def pipeline_text(self) -> str:
        """The standard working pipeline (#3 Document Learning in Fig. 4)."""
        return STANDARD_PIPELINE

    def record_extension(self, record: ExtensionRecord) -> None:
        """Append a measured data point (ongoing refinement)."""
        self.records.append(record)

    def add_note(self, note: str) -> None:
        """Free-form experience note."""
        self.notes.append(note)

    def recommend_extension(
        self,
        style: str,
        size: Optional[int] = None,
        objective: str = "legality",
    ) -> str:
        """Pick 'Out' or 'In' from the recorded statistics.

        With no matching data the paper's documented insight applies:
        out-painting typically yields better legality, while in-painting
        excels in diversity under certain conditions.
        """
        if objective not in ("legality", "diversity"):
            raise ValueError("objective must be 'legality' or 'diversity'")
        candidates = [r for r in self.records if r.style == style]
        if size is not None:
            sized = [r for r in candidates if r.size == size]
            candidates = sized or candidates
        if not candidates:
            return "Out" if objective == "legality" else "In"
        best: Dict[str, float] = {}
        for rec in candidates:
            value = rec.legality if objective == "legality" else rec.diversity
            if rec.method not in best or value > best[rec.method]:
                best[rec.method] = value
        return max(best, key=best.get)

    def summary_text(self, style: Optional[str] = None) -> str:
        """Document text injected into planner prompts."""
        rows = [
            r for r in self.records if style is None or r.style == style
        ]
        if not rows:
            return (
                "Extension experience: out-painting typically yields better "
                "legality; in-painting excels in diversity."
            )
        lines = ["Extension experience (measured):"]
        for r in rows:
            lines.append(
                f"- {r.style} @ {r.size}: {r.method}-painting legality "
                f"{r.legality:.2%}, diversity {r.diversity:.2f}"
            )
        return "\n".join(lines)

    def save(self, path: Union[str, Path]) -> Path:
        """Persist documents as JSON."""
        path = Path(path)
        payload = {
            "records": [vars(r) for r in self.records],
            "notes": self.notes,
        }
        path.write_text(json.dumps(payload, indent=2))
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ExperienceDocuments":
        """Load documents saved by :meth:`save`."""
        payload = json.loads(Path(path).read_text())
        docs = cls(notes=list(payload.get("notes", [])))
        for rec in payload.get("records", []):
            docs.records.append(ExtensionRecord(**rec))
        return docs


@dataclass
class HistoryEvent:
    """One work-history entry (saved for ongoing refinement)."""

    kind: str  # "generated", "modified", "regenerated", "dropped", "legalized"
    subtask_id: int
    detail: str


@dataclass
class WorkHistory:
    """Chronological record of the agent's actions on one request."""

    events: List[HistoryEvent] = field(default_factory=list)

    def record(self, kind: str, subtask_id: int, detail: str) -> None:
        self.events.append(HistoryEvent(kind, subtask_id, detail))

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def exceptional_cases(self) -> List[HistoryEvent]:
        """Failure-path events, the cases worth scrutinising (Sec. 3.1)."""
        return [
            e for e in self.events
            if e.kind in ("modified", "regenerated", "dropped")
        ]
