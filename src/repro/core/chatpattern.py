"""The ChatPattern facade: natural language in, legal pattern library out.

Wires the two halves of the system together (Fig. 1): the expert LLM agent
(planner + executor + tools + documents) as the front end and the
conditional discrete diffusion generator as the back end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.agent.backend import LLMBackend, SimulatedLLM
from repro.agent.documents import ExperienceDocuments, WorkHistory
from repro.agent.executor import SubTaskReport, TaskExecutor
from repro.agent.planner import Plan, TaskPlanner
from repro.agent.tools import AgentTools, Workspace
from repro.api.config import PipelineConfig, TrainConfig
from repro.api.pipeline import PatternPipeline
from repro.data.dataset import DatasetConfig
from repro.data.styles import STYLES
from repro.diffusion.model import ConditionalDiffusionModel
from repro.squish.pattern import PatternLibrary


@dataclass
class ChatResult:
    """Everything one request produced."""

    plan: Plan
    reports: List[SubTaskReport]
    library: PatternLibrary
    history: WorkHistory

    @property
    def produced(self) -> int:
        return sum(r.produced for r in self.reports)

    @property
    def dropped(self) -> int:
        return sum(r.dropped for r in self.reports)

    def summary(self) -> str:
        """Final answer text (#7 in Fig. 4)."""
        lines = [
            f"Planned {len(self.plan.requirements)} sub-task(s) for "
            f"{self.plan.total_count} pattern(s); produced {self.produced} "
            f"legal pattern(s), dropped {self.dropped}."
        ]
        lines.extend(r.summary() for r in self.reports)
        return "\n".join(lines)


class ChatPattern:
    """LLM-powered layout pattern library builder.

    Args:
        model: trained conditional diffusion back-end.  Use
            :meth:`pretrained` to build and train one on the synthetic
            dataset in a few seconds.
        backend: LLM backend; defaults to the offline :class:`SimulatedLLM`.
        documents: experience documents (extension statistics etc.).
        max_retries: per-pattern legalization recovery budget.
        store: optional indexed :class:`~repro.serve.store.LibraryStore`
            handed to the agent's tools (``Save_Library`` persistence).
        pipeline: the :class:`PatternPipeline` the agent's sampling and
            legalization tools route through; a default one bound to
            ``model`` is built when omitted, so the constructor stays a
            thin facade over the typed pipeline API.
    """

    def __init__(
        self,
        model: ConditionalDiffusionModel,
        backend: Optional[LLMBackend] = None,
        documents: Optional[ExperienceDocuments] = None,
        max_retries: int = 2,
        base_seed: int = 0,
        store=None,
        pipeline: Optional[PatternPipeline] = None,
    ):
        if not model.fitted:
            raise ValueError("model must be fitted; see ChatPattern.pretrained")
        self.model = model
        self.backend = backend or SimulatedLLM()
        self.documents = documents or ExperienceDocuments()
        self.max_retries = max_retries
        self.base_seed = base_seed
        self.store = store
        self.pipeline = (
            pipeline.bound_to(model)
            if pipeline is not None
            else PatternPipeline(model=model)
        )

    @classmethod
    def pretrained(
        cls,
        styles: tuple = STYLES,
        train_count: int = 48,
        window: int = 128,
        seed: Optional[int] = None,
        backend: Optional[LLMBackend] = None,
        dataset_config: Optional[DatasetConfig] = None,
        registry=None,
        model_cache: Optional[str] = None,
        **kwargs,
    ) -> "ChatPattern":
        """Build + train the full system on the synthetic dataset.

        A back-compat facade over the typed pipeline API: the arguments
        become a :class:`TrainConfig` and the fitted back-end is resolved
        through the shared :class:`~repro.serve.registry.ModelRegistry`
        (memory LRU, plus the ``model_cache`` disk tier when given), so
        repeated calls with the same recipe reuse the fitted model instead
        of retraining.

        When ``dataset_config`` is given its ``topology_size`` defines the
        model window — the model must generate the tiles it was trained on,
        so a conflicting ``window`` argument is overridden.  The recipe's
        single seed is an explicit ``seed`` argument if given, else the
        ``dataset_config`` seed, else the paper's 2024.
        """
        if seed is None:
            seed = (
                dataset_config.seed if dataset_config is not None else 2024
            )
        cfg = dataset_config or DatasetConfig(topology_size=window, seed=seed)
        train = TrainConfig(
            styles=tuple(styles),
            window=cfg.topology_size,
            train_count=train_count,
            seed=seed,
            tile_nm=cfg.tile_nm,
            map_scale=cfg.map_scale,
        )
        pipeline = PatternPipeline(
            PipelineConfig(train=train, model_cache=model_cache),
            registry=registry,
        )
        return cls(
            model=pipeline.model, backend=backend, pipeline=pipeline, **kwargs
        )

    def handle_request(
        self, user_text: str, objective: str = "legality"
    ) -> ChatResult:
        """End-to-end: auto-format, plan, execute, summarise (Fig. 4)."""
        workspace = Workspace()
        tools = AgentTools(
            self.model,
            workspace,
            base_seed=self.base_seed,
            store=self.store,
            pipeline=self.pipeline,
        )
        planner = TaskPlanner(
            self.backend,
            documents=self.documents,
            window=self.model.window,
            tool_documentation=tools.documentation(),
        )
        plan = planner.auto_format(user_text, objective=objective)
        history = WorkHistory()
        executor = TaskExecutor(
            tools, self.backend, history=history, max_retries=self.max_retries
        )
        reports = [executor.execute(req) for req in plan.requirements]
        return ChatResult(
            plan=plan,
            reports=reports,
            library=workspace.library,
            history=history,
        )
