"""ChatPattern facade."""

from repro.core.chatpattern import ChatPattern, ChatResult

__all__ = ["ChatPattern", "ChatResult"]
