"""Normalising topology matrices to a fixed square size.

Generative models require fixed-size input, so squish topologies are
normalised to ``N x N`` following the adaptive-squish idea (Yang et al., DAC
2019): undersized topologies are *split* along their largest deltas (which
duplicates rows/columns without changing the physical layout) and oversized
topologies are first re-squished; a genuinely oversized topology is a hard
error because splitting cannot reduce scan-line count.
"""

from __future__ import annotations

import numpy as np

from repro.squish.encode import resquish
from repro.squish.pattern import SquishPattern


class NormalizationError(ValueError):
    """Raised when a topology cannot be normalised to the requested size."""


def split_axis(topology: np.ndarray, deltas: np.ndarray, target: int, axis: int) -> tuple:
    """Grow one axis to ``target`` entries by splitting the largest deltas.

    Splitting a column (axis=1) duplicates it in the topology and divides its
    delta in two near-equal halves; the decoded layout is identical.
    """
    t = topology.copy()
    d = list(int(v) for v in deltas)
    size = t.shape[axis]
    if size > target:
        raise NormalizationError(
            f"axis {axis} has {size} scan stripes, cannot split down to {target}"
        )
    while len(d) < target:
        idx = int(np.argmax(d))
        if d[idx] < 2:
            raise NormalizationError(
                "cannot split further: all deltas are 1 nm wide"
            )
        left = d[idx] // 2
        right = d[idx] - left
        d[idx : idx + 1] = [left, right]
        if axis == 1:
            t = np.insert(t, idx, t[:, idx], axis=1)
        else:
            t = np.insert(t, idx, t[idx, :], axis=0)
    return t, np.array(d, dtype=np.int64)


def normalize_pattern(pattern: SquishPattern, size: int) -> SquishPattern:
    """Normalise ``pattern`` to a ``size x size`` topology.

    The pattern is first re-squished to canonical form.  If either axis then
    exceeds ``size`` the pattern is rejected (the dataset builder filters
    such tiles, mirroring how real squish datasets choose their topology
    resolution).
    """
    canonical = resquish(pattern)
    rows, cols = canonical.shape
    if rows > size or cols > size:
        raise NormalizationError(
            f"topology {rows}x{cols} exceeds target {size}x{size}"
        )
    t, dy = split_axis(canonical.topology, canonical.dy, size, axis=0)
    t, dx = split_axis(t, canonical.dx, size, axis=1)
    return SquishPattern(topology=t, dx=dx, dy=dy, style=pattern.style)


def uniform_deltas(size_nm: int, cells: int) -> np.ndarray:
    """Deltas dividing ``size_nm`` into ``cells`` near-equal positive parts."""
    if cells <= 0:
        raise ValueError("cells must be positive")
    if size_nm < cells:
        raise ValueError(f"cannot divide {size_nm} nm into {cells} >=1 nm cells")
    base = size_nm // cells
    rem = size_nm - base * cells
    deltas = np.full(cells, base, dtype=np.int64)
    deltas[:rem] += 1
    return deltas
