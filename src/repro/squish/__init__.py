"""Squish pattern representation: encode, decode, normalise, complexity."""

from repro.squish.complexity import pattern_complexity, topology_complexity
from repro.squish.encode import encode_rects, resquish, scan_lines
from repro.squish.normalize import (
    NormalizationError,
    normalize_pattern,
    split_axis,
    uniform_deltas,
)
from repro.squish.pattern import PatternLibrary, SquishPattern

__all__ = [
    "NormalizationError",
    "PatternLibrary",
    "SquishPattern",
    "encode_rects",
    "normalize_pattern",
    "pattern_complexity",
    "resquish",
    "scan_lines",
    "split_axis",
    "topology_complexity",
    "uniform_deltas",
]
