"""The squish pattern: topology matrix + geometry delta vectors.

A layout patch is encoded as a binary topology matrix ``T`` plus delta
vectors ``dx`` (nm per column) and ``dy`` (nm per row), exactly the
representation of Gennari & Lai's squish pattern used throughout the paper
(Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.grid import as_topology
from repro.geometry.polygon import GridPolygon, extract_polygons
from repro.geometry.rect import Rect


@dataclass
class SquishPattern:
    """A squish-encoded layout pattern.

    Attributes:
        topology: 2-D ``uint8`` matrix of {0, 1}; rows index y, columns x.
        dx: physical width of each column in nm (length = #columns).
        dy: physical height of each row in nm (length = #rows).
        style: optional dataset style tag (e.g. ``"Layer-10001"``).
    """

    topology: np.ndarray
    dx: np.ndarray
    dy: np.ndarray
    style: Optional[str] = None

    def __post_init__(self) -> None:
        self.topology = as_topology(self.topology)
        self.dx = np.asarray(self.dx, dtype=np.int64)
        self.dy = np.asarray(self.dy, dtype=np.int64)
        rows, cols = self.topology.shape
        if self.dx.shape != (cols,):
            raise ValueError(f"dx must have length {cols}, got {self.dx.shape}")
        if self.dy.shape != (rows,):
            raise ValueError(f"dy must have length {rows}, got {self.dy.shape}")
        if (self.dx <= 0).any() or (self.dy <= 0).any():
            raise ValueError("delta entries must be positive")

    @property
    def shape(self) -> Tuple[int, int]:
        """Topology shape as ``(rows, cols)``."""
        return self.topology.shape

    @property
    def physical_width(self) -> int:
        """Total pattern width in nm."""
        return int(self.dx.sum())

    @property
    def physical_height(self) -> int:
        """Total pattern height in nm."""
        return int(self.dy.sum())

    @property
    def physical_size(self) -> Tuple[int, int]:
        """``(width, height)`` in nm."""
        return (self.physical_width, self.physical_height)

    @property
    def fill_ratio(self) -> float:
        """Fraction of physical area covered by shapes."""
        cell_areas = np.outer(self.dy, self.dx).astype(np.float64)
        total = float(cell_areas.sum())
        if total == 0:
            return 0.0
        return float((cell_areas * self.topology).sum() / total)

    def x_coords(self) -> np.ndarray:
        """Scan-line x coordinates (length = cols + 1), starting at 0."""
        return np.concatenate(([0], np.cumsum(self.dx)))

    def y_coords(self) -> np.ndarray:
        """Scan-line y coordinates (length = rows + 1), starting at 0."""
        return np.concatenate(([0], np.cumsum(self.dy)))

    def polygons(self) -> List[GridPolygon]:
        """Connected rectilinear polygons with physical geometry."""
        return extract_polygons(self.topology, self.dx, self.dy)

    def to_rects(self) -> List[Rect]:
        """Decode to physical rectangles, one per maximal per-row run."""
        xs = self.x_coords()
        ys = self.y_coords()
        rects: List[Rect] = []
        for r in range(self.topology.shape[0]):
            row = self.topology[r]
            change = np.flatnonzero(np.diff(row)) + 1
            bounds = np.concatenate(([0], change, [row.shape[0]]))
            for a, b in zip(bounds[:-1], bounds[1:]):
                if row[a]:
                    rects.append(
                        Rect(int(xs[a]), int(ys[r]), int(xs[b]), int(ys[r + 1]))
                    )
        return rects

    def copy(self) -> "SquishPattern":
        """Deep copy."""
        return SquishPattern(
            topology=self.topology.copy(),
            dx=self.dx.copy(),
            dy=self.dy.copy(),
            style=self.style,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SquishPattern):
            return NotImplemented
        return (
            np.array_equal(self.topology, other.topology)
            and np.array_equal(self.dx, other.dx)
            and np.array_equal(self.dy, other.dy)
        )


@dataclass
class PatternLibrary:
    """A collection of squish patterns, the unit the agent delivers.

    The library tracks the style tag per pattern so mixed-style libraries
    (the "Total" column in Table 1) can be evaluated jointly.
    """

    patterns: List[SquishPattern] = field(default_factory=list)
    name: str = "library"

    def add(self, pattern: SquishPattern) -> None:
        """Append one pattern."""
        self.patterns.append(pattern)

    def extend(self, patterns: Sequence[SquishPattern]) -> None:
        """Append many patterns."""
        self.patterns.extend(patterns)

    def filter_style(self, style: str) -> "PatternLibrary":
        """Sub-library containing only the given style tag."""
        return PatternLibrary(
            patterns=[p for p in self.patterns if p.style == style],
            name=f"{self.name}:{style}",
        )

    def styles(self) -> List[str]:
        """Distinct style tags present, sorted."""
        return sorted({p.style for p in self.patterns if p.style is not None})

    def __len__(self) -> int:
        return len(self.patterns)

    def __iter__(self):
        return iter(self.patterns)

    def __getitem__(self, idx: int) -> SquishPattern:
        return self.patterns[idx]
