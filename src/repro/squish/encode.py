"""Encoding a rectangle layout into a squish pattern.

Scan lines are drawn along every polygon edge inside the window; intervals
between consecutive scan lines become the delta vectors and each grid cell is
marked filled iff it is covered by a shape (Figure 2 of the paper).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.geometry.rect import Rect, clip_rects
from repro.squish.pattern import SquishPattern


def scan_lines(rects: Sequence[Rect], window: Rect) -> tuple:
    """Compute x and y scan-line coordinates for ``rects`` inside ``window``.

    The window edges are always included, so an empty window still yields a
    valid 1x1 squish grid.
    """
    xs = {window.x0, window.x1}
    ys = {window.y0, window.y1}
    for r in rects:
        xs.update((r.x0, r.x1))
        ys.update((r.y0, r.y1))
    return (np.array(sorted(xs), dtype=np.int64), np.array(sorted(ys), dtype=np.int64))


def encode_rects(
    rects: Iterable[Rect],
    window: Rect,
    style: Optional[str] = None,
) -> SquishPattern:
    """Squish-encode rectangles clipped to ``window``.

    The resulting pattern's origin is the window's lower-left corner; deltas
    sum exactly to the window dimensions.
    """
    clipped = clip_rects(rects, window)
    xs, ys = scan_lines(clipped, window)
    dx = np.diff(xs)
    dy = np.diff(ys)
    topology = np.zeros((dy.shape[0], dx.shape[0]), dtype=np.uint8)
    # Mark cells covered by each rect via searchsorted on scan lines; rect
    # edges are scan lines by construction so coverage is exact.
    for r in clipped:
        c0 = int(np.searchsorted(xs, r.x0))
        c1 = int(np.searchsorted(xs, r.x1))
        r0 = int(np.searchsorted(ys, r.y0))
        r1 = int(np.searchsorted(ys, r.y1))
        topology[r0:r1, c0:c1] = 1
    return SquishPattern(topology=topology, dx=dx, dy=dy, style=style)


def resquish(pattern: SquishPattern) -> SquishPattern:
    """Remove redundant scan lines (identical adjacent rows/columns).

    A generated topology matrix often contains adjacent duplicate columns or
    rows; the canonical squish form merges them, summing their deltas.  The
    physical layout is unchanged.
    """
    t = pattern.topology
    dx = pattern.dx.astype(np.int64).copy()
    dy = pattern.dy.astype(np.int64).copy()

    keep_cols = _distinct_mask(t.T)
    new_cols = []
    new_dx = []
    acc = 0
    for c in range(t.shape[1]):
        acc += int(dx[c])
        if keep_cols[c]:
            new_cols.append(c)
            new_dx.append(acc)
            acc = 0
    t2 = t[:, new_cols]

    keep_rows = _distinct_mask(t2)
    new_rows = []
    new_dy = []
    acc = 0
    for r in range(t2.shape[0]):
        acc += int(dy[r])
        if keep_rows[r]:
            new_rows.append(r)
            new_dy.append(acc)
            acc = 0
    t3 = t2[new_rows, :]

    return SquishPattern(
        topology=t3.copy(),
        dx=np.array(new_dx, dtype=np.int64),
        dy=np.array(new_dy, dtype=np.int64),
        style=pattern.style,
    )


def _distinct_mask(t: np.ndarray) -> np.ndarray:
    """Mask of rows that differ from the *next* row (last row always kept).

    When merging duplicates we keep the last row of each duplicate block so
    accumulated deltas attach to it.
    """
    rows = t.shape[0]
    keep = np.ones(rows, dtype=bool)
    for r in range(rows - 1):
        if np.array_equal(t[r], t[r + 1]):
            keep[r] = False
    return keep
