"""Pattern complexity: the diversity metric's coordinate system.

The paper defines complexity ``(cx, cy)`` as the number of scan lines minus
one along x and y (Definition 2).  For a topology matrix this is the number
of *distinct* adjacent columns / rows after re-squishing, i.e. redundant scan
lines introduced by normalisation do not count.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.geometry.grid import as_topology
from repro.squish.pattern import SquishPattern


def topology_complexity(topology: np.ndarray) -> Tuple[int, int]:
    """Return ``(cx, cy)`` for a raw topology matrix.

    ``cx`` counts transitions between distinct adjacent columns (the number
    of interior vertical scan lines of the canonical squish form) and ``cy``
    the same for rows.
    """
    t = as_topology(topology)
    col_changes = int(np.any(t[:, 1:] != t[:, :-1], axis=0).sum())
    row_changes = int(np.any(t[1:, :] != t[:-1, :], axis=1).sum())
    return (col_changes, row_changes)


def pattern_complexity(pattern: SquishPattern) -> Tuple[int, int]:
    """Complexity of a squish pattern (delegates to the topology)."""
    return topology_complexity(pattern.topology)
