"""LayouTransformer baseline: sequential pattern modeling.

Wen et al. generate layouts autoregressively over squish tokens.  This
substrate realises the same sequential factorisation with a row-level
Markov model: each topology is a sequence of row bit-patterns; the model
learns start frequencies and row-to-row transitions and generates new
topologies by walking the chain.  Rows are real dataset rows, so horizontal
structure is perfect; occasional improbable vertical transitions are the
model's legality cost — the LayouTransformer signature in Table 1 (better
than auto-encoders, below diffusion).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Tuple

import numpy as np

from repro.baselines.base import TopologyGenerator


class LayouTransformer(TopologyGenerator):
    """Row-sequence Markov generator over squish topologies.

    Args:
        order_smoothing: probability of ignoring the chain and drawing from
            the marginal row distribution (injects diversity and covers
            unseen transitions).
    """

    def __init__(self, order_smoothing: float = 0.02):
        self.order_smoothing = order_smoothing
        self._rows: List[np.ndarray] = []
        self._starts: List[int] = []
        self._start_weights: List[float] = []
        self._transitions: Dict[int, Tuple[List[int], List[float]]] = {}
        self._shape = None

    def fit(self, topologies: np.ndarray, rng: np.random.Generator) -> dict:
        t = np.asarray(topologies, dtype=np.uint8)
        n, h, w = t.shape
        self._shape = (h, w)
        index: Dict[bytes, int] = {}
        rows: List[np.ndarray] = []

        def row_id(row: np.ndarray) -> int:
            key = row.tobytes()
            if key not in index:
                index[key] = len(rows)
                rows.append(row.copy())
            return index[key]

        start_counts: Counter = Counter()
        trans_counts: Dict[int, Counter] = defaultdict(Counter)
        for i in range(n):
            ids = [row_id(t[i, r]) for r in range(h)]
            start_counts[ids[0]] += 1
            for a, b in zip(ids[:-1], ids[1:]):
                trans_counts[a][b] += 1

        self._rows = rows
        self._starts = list(start_counts.keys())
        total = sum(start_counts.values())
        self._start_weights = [start_counts[s] / total for s in self._starts]
        self._transitions = {}
        for a, counter in trans_counts.items():
            nexts = list(counter.keys())
            weights = np.array([counter[b] for b in nexts], dtype=np.float64)
            self._transitions[a] = (nexts, (weights / weights.sum()).tolist())
        return {
            "vocabulary": len(rows),
            "transitions": sum(len(v[0]) for v in self._transitions.values()),
        }

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("generator not fitted")
        h, w = self._shape
        out = np.zeros((count, h, w), dtype=np.uint8)
        for i in range(count):
            current = int(
                rng.choice(self._starts, p=self._start_weights)
            )
            for r in range(h):
                out[i, r] = self._rows[current]
                if r == h - 1:
                    break
                jump = rng.random() < self.order_smoothing
                choices = self._transitions.get(current)
                if choices is None:
                    # Unseen continuation: repeating the current row keeps
                    # vertical runs intact (rows span several cells in real
                    # squish data), which a sequence model trained to
                    # convergence would learn; a uniform fallback would
                    # shred the pattern.
                    continue
                if jump:
                    current = self._compatible_jump(current, rng)
                else:
                    nexts, weights = choices
                    current = int(rng.choice(nexts, p=weights))
        return out

    def _compatible_jump(self, current: int, rng: np.random.Generator) -> int:
        """Random row that does not corner-touch the current one.

        A trained sequence model assigns near-zero probability to row pairs
        that never co-occur *and* clash geometrically; the bigram surrogate
        enforces the geometric part explicitly when it explores.
        """
        here = self._rows[current].astype(np.int8)
        for _ in range(8):
            candidate = int(rng.integers(0, len(self._rows)))
            nxt = self._rows[candidate].astype(np.int8)
            diag1 = (here[:-1] == 1) & (nxt[1:] == 1) & (here[1:] == 0) & (nxt[:-1] == 0)
            diag2 = (here[1:] == 1) & (nxt[:-1] == 1) & (here[:-1] == 0) & (nxt[1:] == 0)
            if not (diag1.any() or diag2.any()):
                return candidate
        return current
