"""Table-1 baselines: CAE, VCAE, LegalGAN, LayouTransformer, DiffPattern."""

from repro.baselines.base import TopologyGenerator
from repro.baselines.cae import CAEGenerator, VCAEGenerator
from repro.baselines.diffpattern import DiffPattern
from repro.baselines.layoutransformer import LayouTransformer
from repro.baselines.legalgan import LegalGAN

__all__ = [
    "CAEGenerator",
    "DiffPattern",
    "LayouTransformer",
    "LegalGAN",
    "TopologyGenerator",
    "VCAEGenerator",
]
