"""DiffPattern baseline: per-style unconditional discrete diffusion.

DiffPattern (the prior SOTA this paper builds on) trains one unconditional
diffusion model *per style* — mixing styles conflicts their rule decks,
which is exactly the motivation for ChatPattern's conditional model.  For
free-size generation DiffPattern can only concatenate fixed-size samples
("[9] w/ Concatenation" in Table 1); :func:`free_size_concat` implements
that pipeline.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.baselines.base import TopologyGenerator
from repro.diffusion.denoisers.neighborhood import NeighborhoodDenoiser
from repro.diffusion.model import ConditionalDiffusionModel
from repro.diffusion.schedule import DiffusionSchedule
from repro.ops.concat import naive_concat


class DiffPattern(TopologyGenerator):
    """Unconditional discrete diffusion trained on a single style."""

    def __init__(
        self,
        window: int = 128,
        schedule: Optional[DiffusionSchedule] = None,
        denoiser_kwargs: Optional[dict] = None,
    ):
        kwargs = dict(denoiser_kwargs or {})
        kwargs.setdefault("n_classes", 0)
        self.model = ConditionalDiffusionModel(
            denoiser=NeighborhoodDenoiser(**kwargs),
            schedule=schedule,
            window=window,
            n_classes=0,
        )

    def fit(self, topologies: np.ndarray, rng: np.random.Generator) -> dict:
        return self.model.fit(topologies, None, rng)

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        return self.model.sample(count, None, rng)

    def free_size_concat(
        self,
        target_shape: Tuple[int, int],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Free-size generation by naive concatenation (the Table-1 baseline)."""
        return naive_concat(self.model, target_shape, None, rng)
