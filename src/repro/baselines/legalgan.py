"""LegalGAN surrogate: learned legalization post-processor.

Zhang et al.'s LegalGAN is a network trained to snap near-legal topologies
onto the legal manifold.  This surrogate implements the same input/output
contract with *bounded* morphological repairs derived from the rule deck:
like the learned network, it reliably fixes small deviations — specks,
hairline gaps, corner touches — but cannot re-synthesise structure, so
inputs far off the manifold (heavily blurred auto-encoder output) keep
their mid-size violations.  That bounded competence is what produces the
CAE << VCAE legality gap of Table 1.

``repair_limit`` is the maximum deviation (in cells) the snapper can fix;
1 mirrors the single-pixel-scale edits a conv net learns most easily.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.drc.rules import DesignRules
from repro.geometry.grid import as_topology, diagonal_touch_pairs


class LegalGAN:
    """Bounded topology-space legalizer applied before geometric legalization.

    Args:
        rules: rule deck to target.
        cell_nm: nominal physical cell pitch (tile nm / topology size); rule
            distances are converted to cell counts with this pitch.
        repair_limit: largest defect size (cells) the snapper can fix.
    """

    def __init__(
        self, rules: DesignRules, cell_nm: float = 16.0, repair_limit: int = 1
    ):
        self.rules = rules
        self.cell_nm = cell_nm
        self.repair_limit = int(repair_limit)
        self.min_width_cells = max(1, round(rules.min_width / cell_nm))
        self.min_space_cells = max(1, round(rules.min_space / cell_nm))
        self.min_area_cells = max(1, round(rules.min_area / (cell_nm * cell_nm)))

    def legalize_topology(self, topology: np.ndarray) -> np.ndarray:
        """Snap one topology toward the legal manifold (single pass)."""
        t = as_topology(topology).copy()
        t = self._fill_hairline_gaps(t)
        t = self._erase_specks(t)
        t = self._drop_tiny_components(t)
        t = self._clear_corner_touches(t)
        return t

    def batch(self, topologies: np.ndarray) -> np.ndarray:
        """Apply to a ``(B, H, W)`` stack."""
        return np.stack([self.legalize_topology(t) for t in topologies])

    def _erase_specks(self, t: np.ndarray) -> np.ndarray:
        """Remove violating 1-runs no longer than the repair limit."""
        return self._rewrite_runs(
            t, value=1, min_len=self.min_width_cells,
            max_fixable=self.repair_limit, fill=0,
        )

    def _fill_hairline_gaps(self, t: np.ndarray) -> np.ndarray:
        """Bridge violating interior 0-runs no wider than the repair limit."""
        return self._rewrite_runs(
            t, value=0, min_len=self.min_space_cells,
            max_fixable=self.repair_limit, fill=1, interior_only=True,
        )

    def _rewrite_runs(
        self,
        t: np.ndarray,
        value: int,
        min_len: int,
        max_fixable: int,
        fill: int,
        interior_only: bool = False,
    ) -> np.ndarray:
        out = t.copy()
        for axis in (0, 1):
            view = out if axis == 0 else out.T
            n = view.shape[1]
            for line in view:
                change = np.flatnonzero(np.diff(line)) + 1
                bounds = np.concatenate(([0], change, [n]))
                for a, b in zip(bounds[:-1], bounds[1:]):
                    length = b - a
                    if line[a] != value or length >= min_len:
                        continue
                    if length > max_fixable:
                        continue  # beyond the snapper's competence
                    if interior_only and (a == 0 or b == n):
                        continue
                    line[a:b] = fill
        return out

    def _drop_tiny_components(self, t: np.ndarray) -> np.ndarray:
        structure = np.array([[0, 1, 0], [1, 1, 1], [0, 1, 0]])
        labels, n = ndimage.label(t, structure=structure)
        if n == 0:
            return t
        limit = min(self.min_area_cells, self.repair_limit * 2)
        sizes = ndimage.sum_labels(np.ones_like(t), labels, index=range(1, n + 1))
        out = t.copy()
        for lab, size in enumerate(sizes, start=1):
            if size <= limit:
                out[labels == lab] = 0
        return out

    def _clear_corner_touches(self, t: np.ndarray) -> np.ndarray:
        out = t.copy()
        for row, col in diagonal_touch_pairs(out):
            # Clearing one diagonal cell of the 2x2 window breaks the touch
            # (a single-pixel edit, well within the snapper's competence).
            if out[row, col]:
                out[row, col] = 0
            else:
                out[row, col + 1] = 0
        return out
