"""CAE and VCAE baselines (DeePattern / Zhang et al.).

The originals are convolutional (variational) auto-encoders; on this CPU
substrate they are realised as linear auto-encoders (PCA) with a Gaussian
latent sampler — the same generative mechanism (decode a sampled latent,
threshold to binary).  The crucial difference between the two is modelled
explicitly: the plain CAE has an *unregularized* latent space, so sampling
latents for generation lands far off the data manifold
(``latent_scale > 1``) and the decoded topologies are fragmented and badly
rule-violating; the variational variant's KL-regularized latent space is
safe to sample (``latent_scale = 1``) and its decoder is smoother, giving
markedly better (but not diffusion-level) legality — the CAE << VCAE
ordering of Table 1.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import TopologyGenerator


class CAEGenerator(TopologyGenerator):
    """Linear auto-encoder; generation samples an unregularized latent."""

    #: Latent over-dispersion at sampling time.  The CAE objective never
    #: shapes the latent distribution, so "reasonable" latent draws are
    #: off-manifold; >1 models that mismatch.
    latent_scale: float = 2.5

    #: Decoder output noise.  A plain auto-encoder decoder has no denoising
    #: objective, so generated maps carry deconvolution artefacts; modelled
    #: as additive noise before thresholding.  The VCAE's reconstruction
    #: term plus KL smoothing suppresses this (0.0 there).
    decode_noise: float = 0.25

    def __init__(self, latent_dim: int = 8, threshold: float = 0.5):
        self.latent_dim = latent_dim
        self.threshold = threshold
        self._mean = None
        self._components = None
        self._latent_mean = None
        self._latent_std = None
        self._shape = None

    def fit(self, topologies: np.ndarray, rng: np.random.Generator) -> dict:
        t = np.asarray(topologies, dtype=np.float64)
        n, h, w = t.shape
        self._shape = (h, w)
        x = t.reshape(n, h * w)
        self._mean = x.mean(axis=0)
        centered = x - self._mean
        # Economy SVD: N is small in practice, so this is cheap.
        _, s, vt = np.linalg.svd(centered, full_matrices=False)
        k = min(self.latent_dim, vt.shape[0])
        self._components = vt[:k]
        latents = centered @ self._components.T
        self._latent_mean = latents.mean(axis=0)
        self._latent_std = latents.std(axis=0) + 1e-8
        explained = float((s[:k] ** 2).sum() / max(1e-12, (s ** 2).sum()))
        return {"latent_dim": k, "explained_variance": explained}

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        if self._components is None:
            raise RuntimeError("generator not fitted")
        z = self._latent_mean + self.latent_scale * self._latent_std * (
            rng.standard_normal((count, self._components.shape[0]))
        )
        decoded = z @ self._components + self._mean
        h, w = self._shape
        maps = decoded.reshape(count, h, w)
        if self.decode_noise:
            maps = maps + self.decode_noise * rng.standard_normal(maps.shape)
        maps = self._shape_decoded(maps)
        return (maps >= self.threshold).astype(np.uint8)

    def _shape_decoded(self, maps: np.ndarray) -> np.ndarray:
        """Decoder output shaping; the plain CAE emits the raw map."""
        return maps


class VCAEGenerator(CAEGenerator):
    """Variational variant: regularized latent + block-coherent decoder.

    The KL term makes the latent prior safe to sample (``latent_scale=1``,
    no artefact noise), and the transposed-conv decoder emits output whose
    edges align on its upsampling grid — modelled by snapping the decoded
    map to constant ``block`` x ``block`` cells before thresholding.  The
    aligned edges are what lets most VCAE samples legalize (rule distances
    chain cleanly), reproducing the CAE << VCAE gap of Table 1.
    """

    latent_scale = 1.0
    #: Residual artefact level: far below the CAE's, not quite zero — the
    #: VCAE still trails the sequence and diffusion models in Table 1.
    decode_noise = 0.08

    def __init__(self, latent_dim: int = 48, threshold: float = 0.5, block: int = 4):
        super().__init__(latent_dim=latent_dim, threshold=threshold)
        self.block = block

    def _shape_decoded(self, maps: np.ndarray) -> np.ndarray:
        b = self.block
        count, h, w = maps.shape
        ph = (-h) % b
        pw = (-w) % b
        padded = np.pad(maps, ((0, 0), (0, ph), (0, pw)), mode="edge")
        pooled = padded.reshape(
            count, (h + ph) // b, b, (w + pw) // b, b
        ).mean(axis=(2, 4))
        return pooled.repeat(b, axis=1).repeat(b, axis=2)[:, :h, :w]
