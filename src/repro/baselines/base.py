"""Common interface for the fixed-size generator baselines of Table 1."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class TopologyGenerator(ABC):
    """A fixed-size topology generator trained on one style."""

    @abstractmethod
    def fit(self, topologies: np.ndarray, rng: np.random.Generator) -> dict:
        """Train on ``(N, H, W)`` clean topologies; returns a metrics dict."""

    @abstractmethod
    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Generate ``(count, H, W)`` uint8 topologies."""
