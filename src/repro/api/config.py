"""Typed configuration for the one true pipeline.

Every entrypoint of the system — the CLI subcommands, the ``ChatPattern``
facade, the batched ``PatternService`` — describes the same pipeline
(condition -> diffusion sampling -> legalization -> library), so they share
one configuration vocabulary: five frozen dataclasses, one per stage,
composed into :class:`PipelineConfig`.  Each config round-trips losslessly
through ``as_dict``/``from_dict`` and :class:`PipelineConfig` through JSON
(``save``/``load``), which is what the CLI's ``--config pipeline.json``
flag consumes.

:class:`TrainConfig` doubles as the *recipe* of a fitted back-end: the
registry's ``ModelKey`` derives from it (see :mod:`repro.serve.registry`),
so the config system and the model cache speak the same language, and
``recipe_hash`` names the on-disk cache entry of a fitted model.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.data.dataset import DatasetConfig
from repro.data.styles import STYLES, TILE_NM
from repro.diffusion.schedule import validate_sampler_steps
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, MetricError, validate_buckets


class ConfigError(ValueError):
    """A config payload does not describe a valid pipeline."""


@dataclass(frozen=True)
class StageConfig:
    """Shared dict/JSON plumbing for the flat per-stage configs.

    ``from_dict`` rejects unknown keys (a typo in a pipeline.json must fail
    loudly, not silently fall back to a default) and normalises lists to
    tuples so a JSON round-trip compares equal to the original.
    """

    def as_dict(self) -> Dict:
        out = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, tuple):
                value = list(value)
            out[spec.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "StageConfig":
        if not isinstance(data, dict):
            raise ConfigError(
                f"{cls.__name__} payload must be a mapping, got "
                f"{type(data).__name__}"
            )
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown {cls.__name__} field(s): {unknown}; "
                f"known: {sorted(known)}"
            )
        kwargs = {
            name: tuple(value) if isinstance(value, list) else value
            for name, value in data.items()
        }
        return cls(**kwargs)

    def replace(self, **changes) -> "StageConfig":
        """Functional update (configs are frozen)."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class TrainConfig(StageConfig):
    """Everything that determines a fitted diffusion back-end.

    The defaults reproduce the paper's base setting (both styles, 128
    window, 48 training tiles per style).  ``seed`` drives both the dataset
    tiling and the denoiser's fit, exactly as the registry's builder does.
    """

    styles: Tuple[str, ...] = tuple(STYLES)
    window: int = 128
    train_count: int = 48
    seed: int = 2024
    tile_nm: int = TILE_NM
    map_scale: int = 8

    def dataset_config(self) -> DatasetConfig:
        return DatasetConfig(
            tile_nm=self.tile_nm,
            topology_size=self.window,
            map_scale=self.map_scale,
            seed=self.seed,
        )

    def recipe_hash(self) -> str:
        """Stable content hash of the recipe (the disk-cache key)."""
        payload = json.dumps(self.as_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


@dataclass(frozen=True)
class SampleConfig(StageConfig):
    """Fixed-size sampling and free-size extension parameters.

    ``size`` defaults to the model window; ``seed`` falls back to the
    training seed when unset.  ``extend_size`` switches the pipeline's
    default run from the ``sample`` stage to the ``extend`` stage.
    ``sampler_steps`` picks the reverse-step schedule: ``"full"`` walks
    every schedule step, ``"bucketed"`` collapses steps sharing a denoiser
    noise bucket to one representative (~``n_buckets`` denoiser evaluations
    instead of K), an int visits that many evenly spaced steps.
    """

    style: str = STYLES[0]
    count: int = 4
    size: Optional[int] = None
    seed: Optional[int] = None
    extend_size: Optional[int] = None
    extend_method: str = "out"
    sampler_steps: Union[str, int] = "full"

    def __post_init__(self):
        if self.extend_method not in ("out", "in"):
            raise ConfigError(
                f"extend_method must be 'out' or 'in', got "
                f"{self.extend_method!r}"
            )
        try:
            validate_sampler_steps(self.sampler_steps)
        except ValueError as exc:
            raise ConfigError(str(exc)) from exc


@dataclass(frozen=True)
class LegalizeConfig(StageConfig):
    """Batch-legalization knobs (see :func:`repro.metrics.legalize_many`)."""

    physical_size: Optional[Tuple[int, int]] = None
    max_workers: Optional[int] = None
    engine: str = "vectorized"
    keep_failures: bool = False
    fault_isolation: bool = True


@dataclass(frozen=True)
class StoreConfig(StageConfig):
    """Where pipeline output goes: flat ``.npz`` and/or the indexed store."""

    store_dir: Optional[str] = None
    output_path: Optional[str] = None


#: Registered batching policies of the serving engine.  The canonical
#: implementations live in :mod:`repro.serve.engine`; the names are
#: declared here so config validation never has to import the engine.
#: ``adaptive`` is the self-tuning policy: greedy selection steered by the
#: hysteresis controller configured through :class:`TuneConfig`.
SERVE_POLICIES = ("greedy", "shape_bucketed", "fair_share", "adaptive")

#: Registered executor back-ends of the serving engine (layer 3).
#: ``thread`` runs sampling in-process; ``process`` fans batches out to
#: spawned worker processes over shared memory (requires a disk model
#: cache so workers can load fitted models by recipe hash).
SERVE_EXECUTORS = ("thread", "process")


@dataclass(frozen=True)
class ServeConfig(StageConfig):
    """Multi-request service/engine knobs (see :class:`PatternService` and
    :class:`~repro.serve.engine.ServeEngine`).

    ``policy`` picks the batching policy (``greedy`` = classic
    gather-window FIFO, ``shape_bucketed`` = coalesce compatible jobs
    across the whole queue, ``fair_share`` = round-robin across request
    sources, ``adaptive`` = greedy selection steered by the
    :class:`TuneConfig` hysteresis controller, degrading sampler quality
    under queue pressure to hold the latency SLO).  ``executor`` picks
    the engine's execution tier:
    ``thread`` (default) samples in-process, ``process`` dispatches each
    batch to a spawned worker process over shared memory — isolation from
    a crashing model and true multi-core sampling, at the price of
    requiring a disk model cache (``model_cache``) so workers can load
    fitted models by recipe hash.  ``engine_workers`` sizes the executor
    pool draining batches in parallel; ``queue_limit`` bounds the
    admission queue (jobs beyond it fast-fail with backpressure instead
    of queueing unboundedly); ``deadline`` expires jobs still queued
    after that many seconds.
    ``job_ttl`` bounds, in seconds, how long finished lifecycle jobs stay
    readable in the service's :class:`~repro.serve.jobs.JobTable` (and
    thus pollable over HTTP) after reaching a terminal state.
    ``state_dir`` names a directory where the job table journals job
    records: on restart, terminal jobs are rehydrated (pollable instead
    of 404) and jobs caught mid-flight come back FAILED with the stable
    ``server_restart`` error code.
    """

    objective: str = "legality"
    gather_window: float = 0.02
    max_batch: int = 64
    max_workers: int = 8
    max_retries: int = 2
    base_seed: int = 0
    policy: str = "greedy"
    executor: str = "thread"
    engine_workers: int = 1
    queue_limit: Optional[int] = None
    deadline: Optional[float] = None
    job_ttl: float = 600.0
    state_dir: Optional[str] = None

    def __post_init__(self):
        if self.policy not in SERVE_POLICIES:
            raise ConfigError(
                f"unknown serve policy {self.policy!r}; known: "
                f"{sorted(SERVE_POLICIES)}"
            )
        if self.executor not in SERVE_EXECUTORS:
            raise ConfigError(
                f"unknown serve executor {self.executor!r}; known: "
                f"{sorted(SERVE_EXECUTORS)}"
            )
        if self.engine_workers < 1:
            raise ConfigError("engine_workers must be >= 1")
        if self.queue_limit is not None and self.queue_limit < 1:
            raise ConfigError("queue_limit must be >= 1 (or null)")
        if self.deadline is not None and self.deadline <= 0:
            raise ConfigError("deadline must be > 0 seconds (or null)")
        if self.job_ttl <= 0:
            raise ConfigError("job_ttl must be > 0 seconds")
        if self.state_dir is not None and not isinstance(self.state_dir, str):
            raise ConfigError("state_dir must be a path string (or null)")


@dataclass(frozen=True)
class ObsConfig(StageConfig):
    """Observability knobs (see :mod:`repro.obs`).

    ``enabled`` turns the whole telemetry layer on/off — off hands every
    instrumented component a shared no-op registry/tracer, so the cost of
    instrumentation is one attribute call.  ``snapshot_path`` (with
    ``snapshot_interval`` seconds) activates the background
    :class:`~repro.obs.export.SnapshotWriter` dumping the JSON snapshot
    there and the Prometheus text exposition next to it (``+ ".prom"``);
    ``trace_path`` writes the request span trees as JSON lines on service
    shutdown.  ``latency_buckets`` is the histogram bucket ladder
    (seconds, strictly increasing) every latency histogram uses;
    ``max_spans`` bounds the tracer's span buffer.
    """

    enabled: bool = True
    snapshot_path: Optional[str] = None
    snapshot_interval: float = 5.0
    trace_path: Optional[str] = None
    latency_buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    max_spans: int = 10000

    def __post_init__(self):
        if self.snapshot_interval <= 0:
            raise ConfigError("snapshot_interval must be > 0 seconds")
        if self.max_spans < 1:
            raise ConfigError("max_spans must be >= 1")
        try:
            validate_buckets(self.latency_buckets)
        except MetricError as exc:
            raise ConfigError(str(exc)) from exc


@dataclass(frozen=True)
class FaultConfig(StageConfig):
    """Deterministic fault injection (see :mod:`repro.faults`).

    Disabled by default: every component then shares the no-op
    :data:`~repro.faults.NULL_FAULTS` plan and injection costs one
    attribute load — the same null-object pattern as :class:`ObsConfig`.
    When ``enabled``, the service builds and installs a seeded
    :class:`~repro.faults.FaultPlan` from ``points`` (each a mapping as
    accepted by :func:`repro.faults.validate_point`); injections are
    counted in ``repro_faults_injected_total{site=...}``.
    """

    enabled: bool = False
    seed: int = 0
    points: Tuple[Dict, ...] = ()

    def __post_init__(self):
        from repro.faults.plan import validate_point

        try:
            normalized = tuple(validate_point(p) for p in self.points)
        except ValueError as exc:
            raise ConfigError(str(exc)) from exc
        object.__setattr__(self, "points", normalized)
        if not isinstance(self.seed, int):
            raise ConfigError(f"fault seed must be an int, got {self.seed!r}")


@dataclass(frozen=True)
class TuneConfig(StageConfig):
    """Self-tuning knobs: the latency SLO and the adaptive-policy
    hysteresis controller (see :mod:`repro.tune`).

    ``slo_p95`` is the target p95 request latency in seconds — the
    contract both halves of the tuning subsystem optimise for: the online
    ``adaptive`` batch policy trades sampler quality for latency to hold
    it, and the offline ``repro tune`` search scores candidate configs
    against it.  ``degrade_ladder`` lists the step schedules the
    controller walks through under sustained pressure, best quality
    first (level 1 uses the first entry, level 2 the second, ...);
    ``floor_steps`` is the quality floor no job is ever degraded below.
    ``degrade_after`` / ``restore_after`` are the hysteresis widths:
    consecutive pressured ticks before stepping down one level, and
    consecutive calm ticks before stepping back up.  ``queue_high`` /
    ``queue_low`` are the per-worker queue-depth thresholds defining
    *pressured* and *calm*; ``gather_boost`` multiplies the engine's
    gather window per degrade level (wider gathering = bigger batches
    under load); ``tick_interval`` rate-limits controller decisions.
    """

    slo_p95: float = 2.0
    degrade_ladder: Tuple[Union[str, int], ...] = (32, "bucketed")
    floor_steps: Union[str, int] = "bucketed"
    degrade_after: int = 2
    restore_after: int = 5
    queue_high: int = 8
    queue_low: int = 2
    gather_boost: float = 2.0
    tick_interval: float = 0.05

    def __post_init__(self):
        if self.slo_p95 <= 0:
            raise ConfigError("slo_p95 must be > 0 seconds")
        if not self.degrade_ladder:
            raise ConfigError(
                "degrade_ladder must name at least one degraded schedule"
            )
        for spec in tuple(self.degrade_ladder) + (self.floor_steps,):
            if spec is None:
                raise ConfigError(
                    "degrade_ladder/floor_steps entries must be explicit "
                    "step schedules ('full' | 'bucketed' | int), not null"
                )
            try:
                validate_sampler_steps(spec)
            except ValueError as exc:
                raise ConfigError(str(exc)) from exc
        if self.degrade_after < 1:
            raise ConfigError("degrade_after must be >= 1 ticks")
        if self.restore_after < 1:
            raise ConfigError("restore_after must be >= 1 ticks")
        if self.queue_low < 0 or self.queue_high <= self.queue_low:
            raise ConfigError("need queue_high > queue_low >= 0")
        if self.gather_boost < 1.0:
            raise ConfigError("gather_boost must be >= 1")
        if self.tick_interval < 0:
            raise ConfigError("tick_interval must be >= 0 seconds")


@dataclass(frozen=True)
class PipelineConfig(StageConfig):
    """The composed pipeline description behind every entrypoint.

    ``model_cache`` names a directory for the persistent fitted-model cache:
    when set, a second run with the same :class:`TrainConfig` loads the
    fitted back-end from disk instead of retraining.
    """

    train: TrainConfig = field(default_factory=TrainConfig)
    sample: SampleConfig = field(default_factory=SampleConfig)
    legalize: LegalizeConfig = field(default_factory=LegalizeConfig)
    store: StoreConfig = field(default_factory=StoreConfig)
    serve: ServeConfig = field(default_factory=ServeConfig)
    obs: ObsConfig = field(default_factory=ObsConfig)
    faults: FaultConfig = field(default_factory=FaultConfig)
    tune: TuneConfig = field(default_factory=TuneConfig)
    model_cache: Optional[str] = None

    _SECTIONS = {
        "train": TrainConfig,
        "sample": SampleConfig,
        "legalize": LegalizeConfig,
        "store": StoreConfig,
        "serve": ServeConfig,
        "obs": ObsConfig,
        "faults": FaultConfig,
        "tune": TuneConfig,
    }

    def as_dict(self) -> Dict:
        out = {
            name: getattr(self, name).as_dict() for name in self._SECTIONS
        }
        out["model_cache"] = self.model_cache
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "PipelineConfig":
        if not isinstance(data, dict):
            raise ConfigError(
                f"PipelineConfig payload must be a mapping, got "
                f"{type(data).__name__}"
            )
        known = set(cls._SECTIONS) | {"model_cache"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown PipelineConfig field(s): {unknown}; "
                f"known: {sorted(known)}"
            )
        kwargs = {}
        for name, section_cls in cls._SECTIONS.items():
            if name in data:
                value = data[name]
                if isinstance(value, section_cls):
                    kwargs[name] = value
                else:
                    kwargs[name] = section_cls.from_dict(value)
        if "model_cache" in data:
            kwargs["model_cache"] = data["model_cache"]
        return cls(**kwargs)

    # -- JSON round-trip ----------------------------------------------

    def dumps(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    @classmethod
    def loads(cls, text: str) -> "PipelineConfig":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"invalid pipeline JSON: {exc}") from exc
        return cls.from_dict(data)

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.dumps() + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "PipelineConfig":
        return cls.loads(Path(path).read_text())
