"""The typed-config pipeline API: one front door for every entrypoint.

- :mod:`repro.api.config` — frozen per-stage configs composed into
  :class:`PipelineConfig`, with lossless dict/JSON round-trips.
- :mod:`repro.api.pipeline` — :class:`PatternPipeline`, the chainable
  sample -> extend -> legalize -> score -> persist pipeline all CLI
  subcommands, the ``ChatPattern`` facade and the serving subsystem share.
"""

from repro.api.config import (
    SERVE_POLICIES,
    ConfigError,
    FaultConfig,
    LegalizeConfig,
    ObsConfig,
    PipelineConfig,
    SampleConfig,
    ServeConfig,
    StoreConfig,
    TrainConfig,
    TuneConfig,
)
from repro.api.pipeline import (
    PatternPipeline,
    PipelineResult,
    StageTiming,
    default_registry,
)

__all__ = [
    "SERVE_POLICIES",
    "ConfigError",
    "FaultConfig",
    "LegalizeConfig",
    "ObsConfig",
    "PatternPipeline",
    "PipelineConfig",
    "PipelineResult",
    "SampleConfig",
    "ServeConfig",
    "StageTiming",
    "StoreConfig",
    "TrainConfig",
    "TuneConfig",
    "default_registry",
]
