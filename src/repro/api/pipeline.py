"""The one typed pipeline behind every entrypoint.

``PatternPipeline`` is built once from a :class:`PipelineConfig` and
exposes the paper's chain — condition -> diffusion sampling -> legalization
-> library — as chainable stages::

    pipeline = PatternPipeline(PipelineConfig())
    result = pipeline.sample().legalize().score().persist()
    print(result.scores, result.timings)

Each stage returns a :class:`PipelineResult` carrying the accumulated
artifacts (topologies, legal library, scores, output paths) and per-stage
wall-clock timings; results chain back into the pipeline, so
``pipeline.sample().legalize()`` and ``pipeline.legalize(pipeline.sample())``
are the same call.

The fitted back-end is resolved lazily through a
:class:`~repro.serve.registry.ModelRegistry` (memory LRU + optional disk
cache under ``config.model_cache``), so repeated pipelines — including
repeated CLI processes — skip retraining.  The stage *primitives*
(``sample_topologies``, ``extend_one``, ``legalize_topologies``,
``legalize_one``, ``persist_library``) are the single implementation the
agent tools, the serving subsystem and the CLI all route through.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.api.config import PipelineConfig
from repro.data.styles import style_condition
from repro.io.gds import write_gds
from repro.io.store import save_library
from repro.legalize.legalizer import LegalizationResult, legalize
from repro.metrics.legality import (
    LegalityResult,
    legalize_many,
    physical_size_for,
)
from repro.metrics.stats import library_stats
from repro.obs.metrics import NULL_METRICS, default_metrics
from repro.obs.trace import NULL_TRACER, default_tracer
from repro.ops.extend import ExtensionResult, extend
from repro.squish.pattern import PatternLibrary

# Process-wide default registries, one per model-cache directory, so every
# facade that builds a pipeline without an explicit registry (repeated
# ``ChatPattern.pretrained`` calls, CLI subcommands...) shares fitted models.
_default_registries: Dict[Optional[str], "ModelRegistry"] = {}
_default_registries_lock = threading.Lock()

_UNSET = object()  # "resolve the store from config" vs an explicit None


def default_registry(model_cache: Optional[Union[str, Path]] = None):
    """The process-wide shared registry for ``model_cache`` (or in-memory)."""
    from repro.serve.registry import ModelRegistry

    token = (
        str(Path(model_cache).expanduser().resolve()) if model_cache else None
    )
    with _default_registries_lock:
        registry = _default_registries.get(token)
        if registry is None:
            registry = ModelRegistry(save_dir=model_cache)
            _default_registries[token] = registry
        return registry


@dataclass
class StageTiming:
    """Wall-clock record of one executed stage."""

    stage: str
    seconds: float
    detail: Dict = field(default_factory=dict)

    def as_dict(self) -> Dict:
        return {
            "stage": self.stage,
            "seconds": round(self.seconds, 4),
            **({"detail": dict(self.detail)} if self.detail else {}),
        }


@dataclass
class PipelineResult:
    """Accumulated artifacts of a pipeline run, chainable into more stages."""

    config: PipelineConfig
    style: Optional[str] = None
    topologies: List[np.ndarray] = field(default_factory=list)
    library: PatternLibrary = field(
        default_factory=lambda: PatternLibrary(name="pipeline-output")
    )
    legality: Optional[LegalityResult] = None
    scores: Dict = field(default_factory=dict)
    output_path: Optional[Path] = None
    gds_path: Optional[Path] = None
    store_added: int = 0
    store_deduplicated: int = 0
    timings: List[StageTiming] = field(default_factory=list)
    _pipeline: Optional["PatternPipeline"] = field(
        default=None, repr=False, compare=False
    )

    # -- chaining ------------------------------------------------------

    def _require_pipeline(self) -> "PatternPipeline":
        if self._pipeline is None:
            raise RuntimeError("result is not attached to a pipeline")
        return self._pipeline

    def legalize(self, **kwargs) -> "PipelineResult":
        return self._require_pipeline().legalize(result=self, **kwargs)

    def score(self, **kwargs) -> "PipelineResult":
        return self._require_pipeline().score(result=self, **kwargs)

    def persist(self, **kwargs) -> "PipelineResult":
        return self._require_pipeline().persist(result=self, **kwargs)

    def export(self, path, **kwargs) -> "PipelineResult":
        return self._require_pipeline().export(path, result=self, **kwargs)

    # -- bookkeeping ---------------------------------------------------

    def _record(self, stage: str, seconds: float, **detail) -> None:
        self.timings.append(StageTiming(stage, seconds, dict(detail)))
        if self._pipeline is not None:
            self._pipeline._observe_stage(stage, seconds, detail)

    def stage_seconds(self, stage: str) -> float:
        return sum(t.seconds for t in self.timings if t.stage == stage)

    @property
    def produced(self) -> int:
        return len(self.library)

    @property
    def dropped(self) -> int:
        """Topologies that failed legalization (0 before the stage ran)."""
        if self.legality is None:
            return 0
        return self.legality.total - len(self.legality.legal)

    def summary(self) -> str:
        parts = [f"{len(self.topologies)} topology(ies)"]
        if self.legality is not None:
            parts.append(
                f"legal {len(self.legality.legal)} "
                f"({self.legality.legality:.0%})"
            )
        if self.scores:
            parts.append(f"scores {self.scores}")
        timing = ", ".join(
            f"{t.stage}={t.seconds:.3f}s" for t in self.timings
        )
        return f"pipeline: {'; '.join(parts)}" + (
            f" [{timing}]" if timing else ""
        )


class PatternPipeline:
    """The typed sample -> extend -> legalize -> score -> persist pipeline.

    Args:
        config: the composed pipeline description; defaults to the paper's
            base setting.
        model: a pre-fitted back-end, bypassing registry resolution (used
            by the agent tools, whose model may be a batched scheduler
            client, and by tests).
        registry: explicit :class:`ModelRegistry`; defaults to the shared
            process-wide registry for ``config.model_cache``.
        store: explicit :class:`LibraryStore` (or an explicit ``None`` to
            disable persistence); when omitted one is opened lazily at
            ``config.store.store_dir``.
        verbose: print model-resolution markers to stderr (the CLI's
            training/cache-hit lines).
        metrics / tracer: explicit observability sinks.  When omitted,
            ``config.obs.enabled`` picks between the process-wide defaults
            and the shared no-op instances, so a disabled config costs one
            attribute call per stage.
        job: optional lifecycle :class:`~repro.serve.jobs.Job` this
            pipeline reports into.  Each chainable stage then starts with
            a cancel checkpoint + state transition
            (``legalize`` -> LEGALIZING, ``persist`` -> PERSISTING, others
            -> RUNNING(stage)), and the stage record produced by
            ``PipelineResult._record`` is mirrored into the job's
            ``stage_events`` — ``PipelineResult.timings`` and the job's
            progress are two views of one record.
    """

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        *,
        model=None,
        registry=None,
        store=_UNSET,
        verbose: bool = False,
        metrics=None,
        tracer=None,
        job=None,
    ):
        self.config = config or PipelineConfig()
        self._model = model
        self._registry = registry
        self._store = None if store is _UNSET else store
        self._store_resolved = store is not _UNSET
        self.verbose = verbose
        self.model_source: Optional[str] = None
        obs = self.config.obs
        if metrics is None:
            metrics = default_metrics() if obs.enabled else NULL_METRICS
        if tracer is None:
            tracer = default_tracer() if obs.enabled else NULL_TRACER
        self.metrics = metrics
        self.tracer = tracer
        self.job = job
        self._m_stage_latency = metrics.histogram(
            "repro_stage_latency_seconds",
            "Pipeline stage wall time",
            labels=("stage",),
        )

    def _observe_stage(
        self, stage: str, seconds: float, detail: Optional[Dict] = None
    ) -> None:
        """Feed one executed stage into metrics, trace and the job.

        Rides the same ``PipelineResult._record`` call that produces
        :class:`StageTiming`, so all views (timings, histogram, span, job
        ``stage_events``) always agree on the measured window.
        """
        self._m_stage_latency.observe(seconds, stage=stage)
        now = time.perf_counter()
        self.tracer.record(stage, now - seconds, now)
        if self.job is not None:
            self.job.record_stage(stage, seconds, detail)

    def _enter_stage(self, stage: str) -> None:
        """Stage entry hook: cancel checkpoint + job state transition.

        Runs before the stage's timed window, so ``DELETE`` on a running
        job takes effect between stages (raising
        :class:`~repro.serve.jobs.JobCancelled`) and ``GET`` status
        reports the stage actually executing.  No-op without a job.
        """
        if self.job is not None:
            self.job.enter_stage(stage)

    # -- resolution ----------------------------------------------------

    @property
    def registry(self):
        if self._registry is None:
            self._registry = default_registry(self.config.model_cache)
        return self._registry

    @property
    def model_key(self):
        from repro.serve.registry import ModelKey

        return ModelKey.from_config(self.config.train)

    @property
    def model(self):
        """The fitted back-end, resolved through the registry on first use."""
        if self._model is None:
            started = time.perf_counter()
            self._model, self.model_source = self.registry.resolve(
                self.model_key, on_fit_start=self._log_fit_start
            )
            self._log_model_source(
                self.model_source, time.perf_counter() - started
            )
        return self._model

    def _log_fit_start(self, key) -> None:
        """Announce training *before* it runs, so a cold first run is not
        silent for the whole fit."""
        if self.verbose:
            print(
                f"[repro] training back-end ({key.train_count} tiles/style, "
                f"window {key.window})...",
                file=sys.stderr,
            )

    def _log_model_source(self, source: str, seconds: float) -> None:
        if not self.verbose:
            return
        if source == "fit":
            message = f"[repro] training done in {seconds:.1f}s"
        elif source == "disk":
            message = (
                "[repro] model cache hit: loaded fitted back-end from "
                f"{self.registry.cache_path(self.config.train)} "
                "(skipping training)"
            )
        else:
            message = (
                "[repro] model registry hit: reusing fitted back-end "
                "(skipping training)"
            )
        print(message, file=sys.stderr)

    @property
    def store(self):
        """The attached indexed pattern store, opened lazily from config."""
        if not self._store_resolved:
            if self.config.store.store_dir:
                from repro.serve.store import LibraryStore

                self._store = LibraryStore(
                    self.config.store.store_dir, metrics=self.metrics
                )
            self._store_resolved = True
        return self._store

    def _rng(self, seed: Optional[int] = None) -> np.random.Generator:
        if seed is None:
            seed = (
                self.config.sample.seed
                if self.config.sample.seed is not None
                else self.config.train.seed
            )
        return np.random.default_rng(seed)

    def _condition(self, style: str) -> Optional[int]:
        return style_condition(style) if self.model.n_classes else None

    def _result(self) -> PipelineResult:
        return PipelineResult(config=self.config, _pipeline=self)

    def bound_to(self, model) -> "PatternPipeline":
        """A pipeline with the same config/registry/store but a different
        back-end (e.g. a per-request batched scheduler client)."""
        if model is self._model:
            return self
        return PatternPipeline(
            self.config,
            model=model,
            registry=self._registry,
            store=self._store if self._store_resolved else _UNSET,
            verbose=False,
            metrics=self.metrics,
            tracer=self.tracer,
            job=self.job,
        )

    def with_store(self, store) -> "PatternPipeline":
        """A pipeline with the same config/model/registry but a different
        attached store (``None`` disables persistence)."""
        if self._store_resolved and store is self._store:
            return self
        return PatternPipeline(
            self.config,
            model=self._model,
            registry=self._registry,
            store=store,
            verbose=False,
            metrics=self.metrics,
            tracer=self.tracer,
            job=self.job,
        )

    def with_library(self, library: PatternLibrary) -> PipelineResult:
        """Start a result from an existing library (evaluate/export flows)."""
        result = self._result()
        result.library = library
        return result

    # -- primitives (the single shared implementation) -----------------

    def sample_topologies(
        self,
        count: int,
        style: str,
        size: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Sample ``count`` fixed-size topologies of one style."""
        size = size or self.config.sample.size or self.model.window
        return self.model.sample(
            count, self._condition(style), rng or self._rng(),
            shape=(size, size),
            sampler_steps=self.config.sample.sampler_steps,
        )

    def extend_one(
        self,
        size: Union[int, Tuple[int, int]],
        style: str,
        method: Optional[str] = None,
        rng: Optional[np.random.Generator] = None,
        seed_topology: Optional[np.ndarray] = None,
    ) -> ExtensionResult:
        """Free-size synthesis of one topology via in/out-painting."""
        shape = (size, size) if isinstance(size, int) else tuple(size)
        if min(shape) < self.model.window:
            raise ValueError(
                f"extension target {shape} is smaller than the model "
                f"window {self.model.window}; use sample(size=...) for "
                "sub-window topologies"
            )
        return extend(
            self.model,
            shape,
            self._condition(style),
            rng or self._rng(),
            method=(method or self.config.sample.extend_method).lower(),
            seed_topology=seed_topology,
            sampler_steps=self.config.sample.sampler_steps,
        )

    def legalize_topologies(
        self,
        topologies: Sequence[np.ndarray],
        style: str,
        physical_size: Optional[Tuple[int, int]] = None,
        max_workers: Optional[int] = None,
        rules=None,
    ) -> LegalityResult:
        """Batch-legalize topologies with the configured engine/pool."""
        cfg = self.config.legalize
        return legalize_many(
            topologies,
            style,
            rules=rules,
            physical_size=physical_size or cfg.physical_size,
            keep_failures=cfg.keep_failures,
            max_workers=max_workers if max_workers is not None else cfg.max_workers,
            engine=cfg.engine,
            fault_isolation=cfg.fault_isolation,
        )

    def legalize_one(
        self,
        topology: np.ndarray,
        style: str,
        physical_size: Optional[Tuple[int, int]] = None,
        rules=None,
    ) -> LegalizationResult:
        """Legalize a single topology, keeping the full per-item log/region
        contract (the agent's Legalization tool rides this)."""
        from repro.drc.rules import rules_for_style

        target = (
            physical_size
            or self.config.legalize.physical_size
            or physical_size_for(topology.shape)
        )
        return legalize(
            topology,
            target,
            rules or rules_for_style(style),
            style=style,
            engine=self.config.legalize.engine,
        )

    def _sampler_detail(self) -> Dict:
        """Step-schedule provenance for stage timings.

        Reports how many denoiser evaluations one trajectory costs under
        the configured ``sampler_steps`` against the full chain, so
        ``PipelineResult.timings`` carries the per-stage speedup factor.
        """
        detail: Dict = {"sampler_steps": self.config.sample.sampler_steps}
        model = self.model
        if hasattr(model, "denoise_evals") and hasattr(model, "schedule"):
            evals = int(model.denoise_evals(self.config.sample.sampler_steps))
            full = int(model.schedule.steps)
            detail.update(
                denoise_evals=evals,
                full_steps=full,
                step_speedup=round(full / max(evals, 1), 2),
            )
        return detail

    def persist_library(self, library: PatternLibrary):
        """Add a library to the attached indexed store (dedup); no-op
        without a store.  Returns the store report or ``None``."""
        if self.store is None or not len(library):
            return None
        return self.store.add_library(library, legal=True)

    # -- chainable stages ----------------------------------------------

    def sample(
        self,
        count: Optional[int] = None,
        style: Optional[str] = None,
        size: Optional[int] = None,
        seed: Optional[int] = None,
        result: Optional[PipelineResult] = None,
    ) -> PipelineResult:
        """Stage: draw fixed-size samples into a fresh (or given) result."""
        self._enter_stage("sample")
        result = result or self._result()
        style = style or self.config.sample.style
        count = count if count is not None else self.config.sample.count
        self.model  # resolve the back-end before the timed window
        started = time.perf_counter()
        samples = self.sample_topologies(
            count, style, size=size, rng=self._rng(seed)
        )
        result.topologies.extend(list(samples))
        result.style = style
        result._record(
            "sample",
            time.perf_counter() - started,
            count=count,
            style=style,
            size=int(samples.shape[-1]) if len(samples) else size,
            **self._sampler_detail(),
        )
        return result

    def extend(
        self,
        size: Optional[int] = None,
        method: Optional[str] = None,
        count: Optional[int] = None,
        style: Optional[str] = None,
        seed: Optional[int] = None,
        result: Optional[PipelineResult] = None,
    ) -> PipelineResult:
        """Stage: free-size synthesis via in/out-painting."""
        self._enter_stage("extend")
        result = result or self._result()
        style = style or self.config.sample.style
        count = count if count is not None else self.config.sample.count
        size = size or self.config.sample.extend_size or self.model.window
        rng = self._rng(seed)
        started = time.perf_counter()
        samplings = 0
        for _ in range(count):
            extension = self.extend_one(size, style, method=method, rng=rng)
            result.topologies.append(extension.topology)
            samplings += extension.samplings
        result.style = style
        result._record(
            "extend",
            time.perf_counter() - started,
            count=count,
            size=size,
            method=(method or self.config.sample.extend_method).lower(),
            samplings=samplings,
            **self._sampler_detail(),
        )
        return result

    def legalize(
        self,
        result: Optional[PipelineResult] = None,
        topologies: Optional[Sequence[np.ndarray]] = None,
        style: Optional[str] = None,
        physical_size: Optional[Tuple[int, int]] = None,
    ) -> PipelineResult:
        """Stage: batch-legalize the result's topologies into its library."""
        self._enter_stage("legalize")
        result = result or self._result()
        items = list(topologies) if topologies is not None else result.topologies
        style = style or result.style or self.config.sample.style
        started = time.perf_counter()
        legality = self.legalize_topologies(
            items, style, physical_size=physical_size
        )
        result.legality = legality
        result.library.extend(list(legality.legal))
        result.style = style
        result._record(
            "legalize",
            time.perf_counter() - started,
            total=legality.total,
            legal=len(legality.legal),
        )
        return result

    def score(
        self, result: Optional[PipelineResult] = None
    ) -> PipelineResult:
        """Stage: legality/diversity/library statistics into ``scores``."""
        self._enter_stage("score")
        result = result or self._result()
        started = time.perf_counter()
        scores: Dict = {"count": len(result.library)}
        if result.legality is not None:
            scores["legality"] = round(result.legality.legality, 4)
        stats = library_stats(result.library)
        scores["stats"] = stats.as_dict()
        if len(result.library):
            scores["diversity"] = round(stats.diversity, 4)
        result.scores = scores
        result._record("score", time.perf_counter() - started)
        return result

    def persist(
        self,
        result: Optional[PipelineResult] = None,
        output: Optional[Union[str, Path]] = None,
    ) -> PipelineResult:
        """Stage: write the legal library (.npz and/or the indexed store)."""
        self._enter_stage("persist")
        result = result or self._result()
        output = output or self.config.store.output_path
        started = time.perf_counter()
        if output and len(result.library):
            result.output_path = save_library(result.library, output)
        report = self.persist_library(result.library)
        if report is not None:
            result.store_added += report.added
            result.store_deduplicated += report.deduplicated
        result._record(
            "persist",
            time.perf_counter() - started,
            output=str(result.output_path) if result.output_path else None,
            store_added=result.store_added,
        )
        return result

    def export(
        self,
        path: Union[str, Path],
        result: Optional[PipelineResult] = None,
    ) -> PipelineResult:
        """Stage: write the result's library to GDSII."""
        self._enter_stage("export")
        result = result or self._result()
        started = time.perf_counter()
        result.gds_path = Path(write_gds(result.library, path))
        result._record(
            "export", time.perf_counter() - started, path=str(result.gds_path)
        )
        return result

    def run(self) -> PipelineResult:
        """The configured default chain: (sample | extend) -> legalize ->
        score -> persist."""
        if self.config.sample.extend_size:
            result = self.extend()
        else:
            result = self.sample()
        return self.persist(self.score(self.legalize(result)))

    # -- facades over the other subsystems -----------------------------

    def chat(self, text: str, objective: Optional[str] = None):
        """Run one natural-language request through the agent front-end."""
        from repro.core.chatpattern import ChatPattern

        facade = ChatPattern(
            model=self.model,
            max_retries=self.config.serve.max_retries,
            base_seed=self.config.serve.base_seed,
            store=self.store,
            pipeline=self,
        )
        return facade.handle_request(
            text, objective=objective or self.config.serve.objective
        )

    def service(self, registry=None, engine=None):
        """Build a :class:`PatternService` from this pipeline's config.

        ``engine`` attaches the service to an existing (possibly shared)
        :class:`~repro.serve.engine.ServeEngine` instead of letting it
        build a private one — the multi-tenant wiring.  The service shares
        this pipeline's metrics registry and tracer, so one snapshot
        covers the pipeline stages, the engine and the store.
        """
        from repro.serve.service import PatternService

        return PatternService.from_config(
            self.config,
            model=self._model,
            registry=registry or self.registry,
            store=self.store,
            engine=engine,
            metrics=self.metrics,
            tracer=self.tracer,
        )
