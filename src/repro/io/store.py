"""Persistence of squish patterns and pattern libraries.

Libraries serialise to a single ``.npz`` (topologies and deltas are ragged,
so each pattern gets indexed keys) plus embedded JSON metadata.  This is the
format the agent's ``save_library`` tool writes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.squish.pattern import PatternLibrary, SquishPattern


def save_library(library: PatternLibrary, path: Union[str, Path]) -> Path:
    """Write a pattern library to ``path`` (``.npz``).

    Returns the path actually written: ``np.savez_compressed`` appends
    ``.npz`` exactly when the file name does not already end with it, so
    the same rule (name-based, not ``Path.suffix``-based) is mirrored here —
    e.g. saving to ``lib.v1`` returns (and writes) ``lib.v1.npz``.
    """
    path = Path(path)
    arrays = {}
    meta = {"name": library.name, "count": len(library), "styles": []}
    for i, pattern in enumerate(library):
        arrays[f"t{i}"] = pattern.topology
        arrays[f"dx{i}"] = pattern.dx
        arrays[f"dy{i}"] = pattern.dy
        meta["styles"].append(pattern.style)
    arrays["_meta"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)
    if path.name.endswith(".npz"):
        return path
    return path.with_name(path.name + ".npz")


def load_library(path: Union[str, Path]) -> PatternLibrary:
    """Read a pattern library written by :func:`save_library`."""
    with np.load(Path(path)) as data:
        meta = json.loads(bytes(data["_meta"].tobytes()).decode("utf-8"))
        library = PatternLibrary(name=meta["name"])
        for i in range(meta["count"]):
            library.add(
                SquishPattern(
                    topology=data[f"t{i}"],
                    dx=data[f"dx{i}"],
                    dy=data[f"dy{i}"],
                    style=meta["styles"][i],
                )
            )
    return library
