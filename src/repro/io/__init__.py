"""Library persistence (npz, GDSII) and topology rendering."""

from repro.io.gds import read_gds, write_gds
from repro.io.render import ascii_art, write_pgm
from repro.io.store import load_library, save_library

__all__ = [
    "ascii_art",
    "load_library",
    "read_gds",
    "save_library",
    "write_gds",
    "write_pgm",
]
