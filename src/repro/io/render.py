"""ASCII / PGM rendering of topology matrices (for the figure benches)."""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.geometry.grid import as_topology


def ascii_art(topology: np.ndarray, max_size: int = 64) -> str:
    """Render a topology as ASCII art, downsampling to ``max_size``.

    Filled regions print as ``#``; downsampling takes block means with a 0.5
    threshold so structure stays readable at terminal width.
    """
    t = as_topology(topology).astype(np.float64)
    rows, cols = t.shape
    factor = max(1, (max(rows, cols) + max_size - 1) // max_size)
    if factor > 1:
        pad_r = (-rows) % factor
        pad_c = (-cols) % factor
        t = np.pad(t, ((0, pad_r), (0, pad_c)))
        t = t.reshape(
            t.shape[0] // factor, factor, t.shape[1] // factor, factor
        ).mean(axis=(1, 3))
    lines = []
    for row in t[::-1]:  # row 0 is the bottom stripe; print top-down
        lines.append("".join("#" if v >= 0.5 else "." for v in row))
    return "\n".join(lines)


def write_pgm(topology: np.ndarray, path: Union[str, Path]) -> Path:
    """Write the topology as a binary PGM image (viewable anywhere)."""
    t = as_topology(topology)
    path = Path(path)
    rows, cols = t.shape
    pixels = ((1 - t[::-1]) * 255).astype(np.uint8)  # filled = black, top-down
    with open(path, "wb") as fh:
        fh.write(f"P5\n{cols} {rows}\n255\n".encode("ascii"))
        fh.write(pixels.tobytes())
    return path
