"""Minimal GDSII stream writer/reader for pattern libraries.

Downstream DFM tools consume layouts, not numpy arrays; this module writes
each pattern of a library as one structure of BOUNDARY elements in a real
GDSII binary stream (and reads it back).  Only the subset of the format
needed for rectilinear single-layer patterns is implemented: HEADER,
BGNLIB/LIBNAME/UNITS, BGNSTR/STRNAME, BOUNDARY/LAYER/DATATYPE/XY/ENDEL,
ENDSTR, ENDLIB.

Record framing: ``[u16 length][u8 record type][u8 data type][payload]``,
big-endian, as per the GDSII stream format.
"""

from __future__ import annotations

import struct
from datetime import datetime
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.geometry.rect import Rect
from repro.squish.encode import encode_rects
from repro.squish.pattern import PatternLibrary, SquishPattern

# Record types (subset).
HEADER = 0x00
BGNLIB = 0x01
LIBNAME = 0x02
UNITS = 0x03
ENDLIB = 0x04
BGNSTR = 0x05
STRNAME = 0x06
ENDSTR = 0x07
BOUNDARY = 0x08
LAYER = 0x0D
DATATYPE = 0x0E
XY = 0x10
ENDEL = 0x11

# Data types.
DT_NONE = 0x00
DT_I16 = 0x02
DT_I32 = 0x03
DT_F64 = 0x05
DT_ASCII = 0x06

#: GDS layer numbers for the dataset styles.
STYLE_LAYERS: Dict[str, int] = {"Layer-10001": 10001 % 256, "Layer-10003": 10003 % 256}
_LAYER_STYLES = {v: k for k, v in STYLE_LAYERS.items()}


def _record(rtype: int, dtype: int, payload: bytes = b"") -> bytes:
    if len(payload) % 2:
        payload += b"\0"  # records are word-aligned
    return struct.pack(">HBB", 4 + len(payload), rtype, dtype) + payload


def _ascii(text: str) -> bytes:
    return text.encode("ascii")


def _gds_timestamp() -> bytes:
    now = datetime(2024, 1, 1)  # fixed for reproducible byte output
    fields = (now.year, now.month, now.day, now.hour, now.minute, now.second)
    return struct.pack(">12h", *(fields * 2))


def _float_to_gds64(value: float) -> bytes:
    """Encode an IEEE double as GDSII 8-byte excess-64 real."""
    if value == 0.0:
        return b"\0" * 8
    sign = 0
    if value < 0:
        sign = 0x80
        value = -value
    exponent = 64
    # Normalise mantissa into [1/16, 1).
    while value >= 1.0:
        value /= 16.0
        exponent += 1
    while value < 1.0 / 16.0:
        value *= 16.0
        exponent -= 1
    mantissa = int(value * (1 << 56))
    return struct.pack(">BB", sign | exponent, (mantissa >> 48) & 0xFF) + struct.pack(
        ">HI", (mantissa >> 32) & 0xFFFF, mantissa & 0xFFFFFFFF
    )


def _gds64_to_float(data: bytes) -> float:
    sign = -1.0 if data[0] & 0x80 else 1.0
    exponent = (data[0] & 0x7F) - 64
    mantissa = int.from_bytes(data[1:8], "big") / float(1 << 56)
    return sign * mantissa * (16.0 ** exponent)


def write_gds(
    library: PatternLibrary,
    path: Union[str, Path],
    unit_nm: float = 1.0,
) -> Path:
    """Write a pattern library as a GDSII stream file.

    Each pattern becomes one structure (``PAT_<index>``); every decoded
    rectangle becomes a BOUNDARY on the layer mapped from the pattern's
    style tag (layer 0 when untagged).  Coordinates are database units of
    ``unit_nm`` nanometres.
    """
    path = Path(path)
    chunks: List[bytes] = [
        _record(HEADER, DT_I16, struct.pack(">h", 600)),
        _record(BGNLIB, DT_I16, _gds_timestamp()),
        _record(LIBNAME, DT_ASCII, _ascii(library.name or "repro")),
        # UNITS: db unit in user units, db unit in metres.
        _record(
            UNITS, DT_F64,
            _float_to_gds64(1e-3) + _float_to_gds64(unit_nm * 1e-9),
        ),
    ]
    for index, pattern in enumerate(library):
        layer = STYLE_LAYERS.get(pattern.style or "", 0)
        chunks.append(_record(BGNSTR, DT_I16, _gds_timestamp()))
        chunks.append(_record(STRNAME, DT_ASCII, _ascii(f"PAT_{index:06d}")))
        for rect in pattern.to_rects():
            chunks.append(_record(BOUNDARY, DT_NONE))
            chunks.append(_record(LAYER, DT_I16, struct.pack(">h", layer)))
            chunks.append(_record(DATATYPE, DT_I16, struct.pack(">h", 0)))
            ring = [
                (rect.x0, rect.y0), (rect.x1, rect.y0),
                (rect.x1, rect.y1), (rect.x0, rect.y1),
                (rect.x0, rect.y0),
            ]
            payload = b"".join(struct.pack(">ii", x, y) for x, y in ring)
            chunks.append(_record(XY, DT_I32, payload))
            chunks.append(_record(ENDEL, DT_NONE))
        chunks.append(_record(ENDSTR, DT_NONE))
    chunks.append(_record(ENDLIB, DT_NONE))
    path.write_bytes(b"".join(chunks))
    return path


def _iter_records(data: bytes):
    offset = 0
    while offset + 4 <= len(data):
        length, rtype, dtype = struct.unpack_from(">HBB", data, offset)
        if length < 4:
            raise ValueError(f"corrupt GDS record at byte {offset}")
        payload = data[offset + 4 : offset + length]
        yield rtype, dtype, payload
        offset += length


def read_gds(path: Union[str, Path]) -> PatternLibrary:
    """Read a GDSII stream written by :func:`write_gds`.

    Rectangular BOUNDARY elements are re-encoded into squish patterns; the
    window of each structure is the bounding box of its shapes.
    """
    data = Path(path).read_bytes()
    library_name = "gds"
    library = PatternLibrary()
    current_rects: List[Rect] = []
    current_layer = 0
    pending_xy: List[Tuple[int, int]] = []
    in_structure = False

    def close_structure():
        nonlocal current_rects, current_layer
        if not current_rects:
            current_rects = []
            return
        x1 = max(r.x1 for r in current_rects)
        y1 = max(r.y1 for r in current_rects)
        window = Rect(0, 0, x1, y1)
        style = _LAYER_STYLES.get(current_layer)
        library.add(encode_rects(current_rects, window, style=style))
        current_rects = []

    for rtype, _dtype, payload in _iter_records(data):
        if rtype == LIBNAME:
            library_name = payload.rstrip(b"\0").decode("ascii")
        elif rtype == BGNSTR:
            in_structure = True
        elif rtype == ENDSTR:
            close_structure()
            in_structure = False
        elif rtype == LAYER and in_structure:
            current_layer = struct.unpack(">h", payload[:2])[0]
        elif rtype == XY and in_structure:
            count = len(payload) // 8
            pending_xy = [
                struct.unpack_from(">ii", payload, 8 * i) for i in range(count)
            ]
            xs = [p[0] for p in pending_xy]
            ys = [p[1] for p in pending_xy]
            current_rects.append(Rect(min(xs), min(ys), max(xs), max(ys)))
        elif rtype == ENDLIB:
            break
    library.name = library_name
    return library
