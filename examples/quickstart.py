"""Quickstart: build ChatPattern and request a pattern library in English.

Runs in about a minute on CPU: trains the conditional diffusion back-end on
the synthetic two-style dataset, then hands a natural-language requirement
to the LLM agent, which plans sub-tasks, drives the generation tools and
returns a DRC-clean pattern library.

    python examples/quickstart.py
"""

from repro import ChatPattern
from repro.io import ascii_art, save_library


def main() -> None:
    print("training the ChatPattern back-end (synthetic dataset, CPU)...")
    chat = ChatPattern.pretrained(train_count=48, window=128)

    request = (
        "Generate 6 layout patterns with 128*128 topology, physical size "
        "2048nm * 2048nm, in style of 'Layer-10001'."
    )
    print(f"\nuser request: {request}\n")
    result = chat.handle_request(request)

    print(result.summary())
    print("\nplanned requirement lists:")
    for requirement in result.plan.requirements:
        print(requirement.to_text())

    if len(result.library):
        print("\nfirst generated pattern (topology):")
        print(ascii_art(result.library[0].topology, max_size=48))
        path = save_library(result.library, "quickstart_library.npz")
        print(f"\nlibrary saved to {path}")


if __name__ == "__main__":
    main()
