"""Library export: write generated patterns to a real GDSII stream.

Downstream DFM tools (OPC, hotspot detection, lithography simulation)
consume GDS, not numpy arrays.  This example generates a small legal
library, exports it with :func:`repro.io.write_gds`, reads it back and
verifies the geometry survived the round trip.

    python examples/gds_export.py
"""

import numpy as np

from repro.data import DatasetConfig, STYLES, build_training_set
from repro.diffusion import ConditionalDiffusionModel
from repro.io import read_gds, write_gds
from repro.metrics import legalize_sequential



def main() -> None:
    print("training the conditional diffusion back-end...")
    topologies, conditions = build_training_set(
        list(STYLES), 48, DatasetConfig(topology_size=128)
    )
    model = ConditionalDiffusionModel(window=128, n_classes=2)
    model.fit(topologies, conditions, np.random.default_rng(0))

    rng = np.random.default_rng(9)
    samples = model.sample(3, 0, rng)
    library = legalize_sequential(list(samples), "Layer-10001").legal
    print(f"generated {len(library)} legal pattern(s)")

    path = write_gds(library, "patterns.gds")
    size = path.stat().st_size
    print(f"wrote {path} ({size} bytes)")

    loaded = read_gds(path)
    print(f"read back {len(loaded)} structure(s) from GDS")
    for i, (a, b) in enumerate(zip(library, loaded)):
        same = sorted(a.to_rects()) == sorted(b.to_rects())
        print(f"  PAT_{i:06d}: geometry round-trip {'OK' if same else 'MISMATCH'}")


if __name__ == "__main__":
    main()
