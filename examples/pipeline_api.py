"""The typed pipeline API: one config object, chainable stages, model cache.

Demonstrates the `repro.api` front door every entrypoint shares: a frozen
`PipelineConfig` builds a `PatternPipeline`; its chainable stages carry
per-stage timings; the fitted back-end persists in a disk model cache, so
the *second* run of this script skips training entirely.

    python examples/pipeline_api.py
"""

from repro.api import (
    PatternPipeline,
    PipelineConfig,
    SampleConfig,
    TrainConfig,
)

CACHE_DIR = "pipeline_model_cache"


def main() -> None:
    config = PipelineConfig(
        train=TrainConfig(train_count=48, window=128, seed=2024),
        sample=SampleConfig(style="Layer-10001", count=6),
        model_cache=CACHE_DIR,
    )
    # Configs round-trip through JSON; this file is what the CLI's
    # --config flag consumes.
    path = config.save("pipeline.json")
    assert PipelineConfig.load(path) == config
    print(f"pipeline config saved to {path}")

    pipeline = PatternPipeline(config, verbose=True)
    result = pipeline.sample().legalize().score().persist(
        output="pipeline_library.npz"
    )

    print(f"scores: {result.scores}")
    for timing in result.timings:
        print(f"  {timing.stage:>8}: {timing.seconds:.3f}s  {timing.detail}")
    if result.output_path:
        print(f"library saved to {result.output_path}")

    # Free-size synthesis rides the same pipeline:
    free = pipeline.extend(size=256, count=1).legalize().score()
    print(f"free-size 256x256: {free.scores}")
    print(
        "run this script again: the back-end now loads from "
        f"{CACHE_DIR}/ instead of retraining"
    )


if __name__ == "__main__":
    main()
