"""Pattern modification: repair a DRC-violating region with RePaint (Eq. 12).

Plants a corner-touch defect (a zero-space violation no legalizer can fix)
into a generated topology, locates it with the DRC checker, re-paints
exactly that region through the diffusion model, and shows the repaired
pattern passing legalization — the paper's mistake-processing primitive.

    python examples/pattern_editing.py
"""

import numpy as np

from repro.data import DatasetConfig, STYLES, build_training_set
from repro.diffusion import ConditionalDiffusionModel
from repro.drc import check_pattern, rules_for_style
from repro.io import ascii_art
from repro.legalize import legalize
from repro.metrics import physical_size_for
from repro.ops import modify_region

STYLE = "Layer-10003"


def main() -> None:
    print("training the conditional diffusion back-end...")
    topologies, conditions = build_training_set(
        list(STYLES), 64, DatasetConfig(topology_size=128)
    )
    model = ConditionalDiffusionModel(window=128, n_classes=2)
    model.fit(topologies, conditions, np.random.default_rng(0))

    rng = np.random.default_rng(7)
    condition = STYLES.index(STYLE)
    rules = rules_for_style(STYLE)
    topology = model.sample(1, condition, rng)[0]

    # Plant an unfixable defect: two polygons touching at a corner.
    topology[60:64, 60:64] = 1
    topology[64:68, 64:68] = 1
    topology[60:64, 64:68] = 0
    topology[64:68, 60:64] = 0

    result = legalize(topology, physical_size_for(topology.shape), rules, STYLE)
    print(f"\nlegalization of the defective pattern: ok={result.ok}")
    print(result.log_text())
    region = result.failed_region
    assert region is not None

    print(f"\nre-painting region {region.as_tuple()} with style {STYLE}...")
    repaired = modify_region(model, topology, region, condition, rng, margin=2)

    retry = legalize(repaired, physical_size_for(repaired.shape), rules, STYLE)
    print(f"legalization after modification: ok={retry.ok}")
    if retry.ok:
        report = check_pattern(retry.pattern, rules)
        print(f"final DRC: {report.summary()}")
        print("\nrepaired pattern:")
        print(ascii_art(repaired, max_size=48))


if __name__ == "__main__":
    main()
