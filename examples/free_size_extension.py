"""Free-size pattern extension: grow a 128^2 sample to 512^2.

Demonstrates the paper's headline capability: the model window is fixed at
128x128, yet patterns of any size are synthesised by recursive In-Painting
/ Out-Painting (Fig. 7), then legalized jointly.  Compares both extension
algorithms and the naive concatenation baseline on the same target.

    python examples/free_size_extension.py
"""

import numpy as np

from repro.data import DatasetConfig, STYLES, TILE_NM, build_training_set
from repro.diffusion import ConditionalDiffusionModel
from repro.drc import check_pattern, rules_for_style
from repro.io import ascii_art
from repro.metrics import legalize_sequential
from repro.ops import (
    concat_legalized_patterns,
    extend,
    n_in_samplings,
    n_out_samplings,
)


TARGET = 384  # 3x3 model windows
STYLE = "Layer-10001"


def main() -> None:
    print("training the conditional diffusion back-end...")
    topologies, conditions = build_training_set(
        list(STYLES), 64, DatasetConfig(topology_size=128)
    )
    model = ConditionalDiffusionModel(window=128, n_classes=2)
    model.fit(topologies, conditions, np.random.default_rng(0))

    rng = np.random.default_rng(42)
    condition = STYLES.index(STYLE)
    rules = rules_for_style(STYLE)

    print(f"\nwindow cost at {TARGET}x{TARGET}: "
          f"N_in={n_in_samplings(TARGET, TARGET, 128)}, "
          f"N_out={n_out_samplings(TARGET, TARGET, 128, 64)}")

    for method in ("out", "in"):
        result = extend(model, (TARGET, TARGET), condition, rng, method=method)
        legality = legalize_sequential([result.topology], STYLE)
        print(f"\n{method}-painting: {result.samplings} samplings, "
              f"legal={bool(legality.legality)}")
        print(ascii_art(result.topology, max_size=48))

    concat = concat_legalized_patterns(
        model, (TARGET, TARGET), condition, rng, rules, TILE_NM, STYLE
    )
    if concat.pattern is not None:
        report = check_pattern(concat.pattern, rules)
        print(f"\nnaive concatenation baseline: DRC clean={report.is_clean}")
        if not report.is_clean:
            print(f"seam violations: {report.count_by_rule()}")


if __name__ == "__main__":
    main()
