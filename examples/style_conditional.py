"""Style-conditional generation: one model, two rule decks.

Trains a single class-conditional diffusion model on the mixed two-style
dataset and shows that the condition flag alone steers generation to
either layer's distribution — the capability that lets ChatPattern train
on multi-source data without design-rule conflicts (Sec. 3.2, Fig. 5).

    python examples/style_conditional.py
"""

import numpy as np

from repro.data import DatasetConfig, STYLES, build_training_set
from repro.diffusion import ConditionalDiffusionModel
from repro.io import ascii_art
from repro.metrics import complexity_of, legalize_sequential


SAMPLES = 4


def main() -> None:
    print("training one conditional model on the mixed dataset...")
    topologies, conditions = build_training_set(
        list(STYLES), 64, DatasetConfig(topology_size=128)
    )
    model = ConditionalDiffusionModel(window=128, n_classes=len(STYLES))
    model.fit(topologies, conditions, np.random.default_rng(0))

    rng = np.random.default_rng(5)
    for idx, style in enumerate(STYLES):
        samples = model.sample(SAMPLES, idx, rng)
        result = legalize_sequential(list(samples), style)
        fills = samples.mean()
        print(f"\n=== condition {idx} -> {style} ===")
        print(f"legality under the {style} rule deck: {result.legality:.0%}")
        print(f"fill {fills:.3f}, complexity {complexity_of(samples[0])}")
        print(ascii_art(samples[0], max_size=40))

    # Cross-check: Layer-10003 samples evaluated against the *wrong* deck.
    samples = model.sample(SAMPLES, 1, rng)
    wrong = legalize_sequential(list(samples), "Layer-10001")
    right = legalize_sequential(list(samples), "Layer-10003")
    print("\nLayer-10003-conditioned samples:")
    print(f"  legality under Layer-10003 rules: {right.legality:.0%}")
    print(f"  legality under Layer-10001 rules: {wrong.legality:.0%}")


if __name__ == "__main__":
    main()
