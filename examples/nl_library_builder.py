"""Natural-language library building: the paper's running example, scaled.

Feeds ChatPattern a complex multi-sub-task request (mixed topology sizes,
like Fig. 4's example, with counts scaled down for CPU), prints the agent's
requirement auto-formatting, the execution reports including any ReAct
failure-recovery decisions, and the final library statistics.

    python examples/nl_library_builder.py
"""

from repro import ChatPattern
from repro.metrics import diversity


def main() -> None:
    print("training the ChatPattern back-end...")
    chat = ChatPattern.pretrained(train_count=48, window=128, max_retries=2)

    # Fig. 4's running example with CPU-friendly counts: two topology sizes
    # force the agent to split the task and pick an extension method.
    request = (
        "Generate a layout pattern library, there are 6 layout patterns in "
        "total. The physical size fixed as 4um * 4um. The topology size "
        "should be chosen from 128*128 and 256*256. They should be in style "
        "of 'Layer-10003'."
    )
    print(f"\nuser request: {request}\n")
    result = chat.handle_request(request)

    print("=== requirement auto-formatting ===")
    for requirement in result.plan.requirements:
        print(requirement.to_text())
        print()
    for warning in result.plan.warnings:
        print(f"[planner] {warning}")

    print("\n=== execution ===")
    print(result.summary())

    if any(report.decisions for report in result.reports):
        print("\n=== ReAct recovery decisions ===")
        for report in result.reports:
            for step in report.decisions:
                print(f"Thought: {step.thought}")
                print(f"Action: {step.action}")
                print(f"Action Input: {step.action_input}\n")

    print("\n=== library ===")
    print(f"patterns: {len(result.library)}")
    if len(result.library):
        print(f"diversity (Eq. 8): {diversity(result.library):.3f}")
        sizes = {p.shape for p in result.library}
        print(f"topology sizes: {sorted(sizes)}")
    print("\nwork history:", result.history.counts())


if __name__ == "__main__":
    main()
