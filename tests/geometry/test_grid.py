"""Unit tests for binary-grid utilities (runs, labelling, corner touches)."""

import numpy as np
import pytest

from repro.geometry import (
    as_topology,
    all_column_runs,
    all_row_runs,
    column_run_set,
    column_runs,
    component_count,
    diagonal_touch_pairs,
    label_components,
    row_run_set,
    row_runs,
)


class TestAsTopology:
    def test_validates_values(self):
        with pytest.raises(ValueError):
            as_topology(np.array([[0, 2]]))

    def test_validates_dims(self):
        with pytest.raises(ValueError):
            as_topology(np.zeros(4))
        with pytest.raises(ValueError):
            as_topology(np.zeros((0, 4)))

    def test_dtype_canonicalised(self):
        t = as_topology(np.array([[0.0, 1.0]]))
        assert t.dtype == np.uint8


class TestRuns:
    def test_row_runs(self):
        t = np.array([[1, 1, 0, 0, 1]], dtype=np.uint8)
        runs = row_runs(t, 0)
        assert [(r.start, r.stop, r.value) for r in runs] == [
            (0, 2, 1), (2, 4, 0), (4, 5, 1),
        ]
        assert runs[0].length == 2

    def test_column_runs(self):
        t = np.array([[1], [1], [0]], dtype=np.uint8)
        runs = column_runs(t, 0)
        assert [(r.start, r.stop, r.value) for r in runs] == [(0, 2, 1), (2, 3, 0)]

    def test_uniform_line_single_run(self):
        t = np.ones((1, 7), dtype=np.uint8)
        assert len(row_runs(t, 0)) == 1


class TestRunSet:
    def test_matches_per_line_extraction(self):
        rng = np.random.default_rng(0)
        for _ in range(120):
            rows = int(rng.integers(1, 14))
            cols = int(rng.integers(1, 14))
            t = (rng.random((rows, cols)) < rng.choice([0.2, 0.5, 0.8]))
            t = t.astype(np.uint8)
            assert all_row_runs(t) == [
                run for i in range(rows) for run in row_runs(t, i)
            ]
            assert all_column_runs(t) == [
                run for i in range(cols) for run in column_runs(t, i)
            ]

    def test_struct_of_arrays_fields(self):
        t = np.array([[1, 1, 0, 0, 1], [0, 0, 0, 0, 0]], dtype=np.uint8)
        rs = row_run_set(t)
        assert len(rs) == 4
        assert rs.n_lines == 2 and rs.n_cells == 5
        assert list(rs.index) == [0, 0, 0, 1]
        assert list(rs.start) == [0, 2, 4, 0]
        assert list(rs.stop) == [2, 4, 5, 5]
        assert list(rs.value) == [1, 0, 1, 0]
        assert list(rs.lengths) == [2, 2, 1, 5]
        # Only the middle 0-run of row 0 is interior.
        assert list(rs.interior) == [False, True, False, False]

    def test_single_cell_lines(self):
        t = np.array([[1], [0], [1]], dtype=np.uint8)
        rs = row_run_set(t)
        assert len(rs) == 3
        assert list(rs.start) == [0, 0, 0]
        assert list(rs.stop) == [1, 1, 1]
        cs = column_run_set(t)
        assert len(cs) == 3
        assert list(cs.value) == [1, 0, 1]

    def test_uniform_topology(self):
        t = np.ones((4, 6), dtype=np.uint8)
        rs = row_run_set(t)
        assert len(rs) == 4
        assert (rs.lengths == 6).all()
        assert not rs.interior.any()


class TestComponents:
    def test_four_connectivity_separates_diagonal(self):
        t = np.array([[1, 0], [0, 1]], dtype=np.uint8)
        assert component_count(t, connectivity=4) == 2
        assert component_count(t, connectivity=8) == 1

    def test_labels_shape_and_zero_background(self):
        t = np.array([[1, 0, 1]], dtype=np.uint8)
        labels = label_components(t)
        assert labels.shape == t.shape
        assert labels[0, 1] == 0
        assert labels.max() == 2

    def test_bad_connectivity(self):
        with pytest.raises(ValueError):
            label_components(np.ones((2, 2)), connectivity=6)


class TestDiagonalTouch:
    def test_detects_anti_diagonal(self):
        t = np.array([[0, 1], [1, 0]], dtype=np.uint8)
        assert diagonal_touch_pairs(t) == [(0, 0)]

    def test_detects_main_diagonal(self):
        t = np.array([[1, 0], [0, 1]], dtype=np.uint8)
        assert diagonal_touch_pairs(t) == [(0, 0)]

    def test_same_polygon_diagonal_not_flagged(self):
        # An L-shape: the diagonal cells belong to one 4-connected polygon.
        t = np.array([[1, 0], [1, 1]], dtype=np.uint8)
        assert diagonal_touch_pairs(t) == []

    def test_clean_grid(self):
        t = np.array([[1, 1, 0, 1, 1]], dtype=np.uint8)
        assert diagonal_touch_pairs(t) == []
