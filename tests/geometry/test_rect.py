"""Unit tests for axis-aligned rectangles."""

import pytest

from repro.geometry import Rect, bounding_box, clip_rects, merge_touching_rects


class TestRectBasics:
    def test_dimensions(self):
        r = Rect(0, 0, 100, 40)
        assert r.width == 100
        assert r.height == 40
        assert r.area == 4000
        assert r.center == (50.0, 20.0)

    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            Rect(10, 0, 0, 10)
        with pytest.raises(ValueError):
            Rect(0, 10, 10, 0)

    def test_zero_area_allowed(self):
        r = Rect(5, 5, 5, 9)
        assert r.area == 0

    def test_translated(self):
        assert Rect(0, 0, 10, 10).translated(3, -2) == Rect(3, -2, 13, 8)


class TestRectRelations:
    def test_intersects_touching_edges(self):
        assert Rect(0, 0, 10, 10).intersects(Rect(10, 0, 20, 10))

    def test_interior_overlap_excludes_touching(self):
        assert not Rect(0, 0, 10, 10).overlaps_interior(Rect(10, 0, 20, 10))
        assert Rect(0, 0, 10, 10).overlaps_interior(Rect(9, 9, 20, 20))

    def test_intersection(self):
        inter = Rect(0, 0, 10, 10).intersection(Rect(5, 5, 20, 20))
        assert inter == Rect(5, 5, 10, 10)
        assert Rect(0, 0, 1, 1).intersection(Rect(5, 5, 6, 6)) is None

    def test_contains(self):
        outer = Rect(0, 0, 100, 100)
        assert outer.contains_rect(Rect(10, 10, 20, 20))
        assert not outer.contains_rect(Rect(90, 90, 110, 110))
        assert outer.contains_point(0, 0)
        assert not outer.contains_point(101, 50)

    def test_distance(self):
        assert Rect(0, 0, 10, 10).distance(Rect(10, 0, 20, 10)) == 0.0
        assert Rect(0, 0, 10, 10).distance(Rect(13, 0, 20, 10)) == 3.0
        assert Rect(0, 0, 10, 10).distance(Rect(13, 14, 20, 20)) == 5.0


class TestRectCollections:
    def test_bounding_box(self):
        rects = [Rect(0, 0, 5, 5), Rect(10, -3, 20, 2)]
        assert bounding_box(rects) == Rect(0, -3, 20, 5)

    def test_bounding_box_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box([])

    def test_clip_rects(self):
        window = Rect(0, 0, 100, 100)
        clipped = clip_rects(
            [Rect(-10, -10, 50, 50), Rect(200, 200, 300, 300), Rect(90, 90, 150, 95)],
            window,
        )
        assert Rect(0, 0, 50, 50) in clipped
        assert Rect(90, 90, 100, 95) in clipped
        assert len(clipped) == 2

    def test_clip_drops_zero_area_slivers(self):
        window = Rect(0, 0, 100, 100)
        assert clip_rects([Rect(100, 0, 120, 50)], window) == []

    def test_merge_touching(self):
        clusters = merge_touching_rects(
            [Rect(0, 0, 10, 10), Rect(10, 0, 20, 10), Rect(50, 50, 60, 60)]
        )
        sizes = sorted(len(c) for c in clusters)
        assert sizes == [1, 2]
