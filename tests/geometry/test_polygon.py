"""Unit tests for grid polygons with physical deltas."""

import numpy as np
import pytest

from repro.geometry import Rect, extract_polygons


def _uniform(n, v=10):
    return np.full(n, v, dtype=np.int64)


class TestExtractPolygons:
    def test_counts_and_labels(self):
        t = np.array([[1, 0, 1], [1, 0, 0]], dtype=np.uint8)
        polys = extract_polygons(t, _uniform(3), _uniform(2))
        assert len(polys) == 2
        assert {p.label for p in polys} == {1, 2}

    def test_shape_mismatch_raises(self):
        t = np.ones((2, 3), dtype=np.uint8)
        with pytest.raises(ValueError):
            extract_polygons(t, _uniform(2), _uniform(2))
        with pytest.raises(ValueError):
            extract_polygons(t, _uniform(3), _uniform(3))


class TestPolygonGeometry:
    def test_area_uniform_grid(self):
        t = np.array([[1, 1], [1, 0]], dtype=np.uint8)
        poly = extract_polygons(t, _uniform(2), _uniform(2))[0]
        assert poly.area == 300  # three 10x10 cells

    def test_area_nonuniform_grid(self):
        t = np.array([[1, 1]], dtype=np.uint8)
        poly = extract_polygons(t, np.array([5, 20]), np.array([3]))[0]
        assert poly.area == 5 * 3 + 20 * 3

    def test_bbox(self):
        t = np.array([[0, 0, 0], [0, 1, 1], [0, 0, 0]], dtype=np.uint8)
        poly = extract_polygons(t, _uniform(3), _uniform(3))[0]
        assert poly.bbox == Rect(10, 10, 30, 20)

    def test_cell_rects(self):
        t = np.array([[1, 1]], dtype=np.uint8)
        poly = extract_polygons(t, np.array([4, 6]), np.array([8]))[0]
        rects = sorted(poly.cell_rects())
        assert rects == [Rect(0, 0, 4, 8), Rect(4, 0, 10, 8)]

    def test_extents_l_shape(self):
        t = np.array([[1, 0], [1, 1]], dtype=np.uint8)
        poly = extract_polygons(t, _uniform(2), _uniform(2))[0]
        horizontal = poly.horizontal_extents()
        assert (0, 0, 10) in horizontal  # bottom row reaches only col 0
        assert (1, 0, 20) in horizontal
        vertical = poly.vertical_extents()
        assert (0, 0, 20) in vertical
        assert (1, 10, 20) in vertical

    def test_min_width(self):
        t = np.array([[1, 1, 1]], dtype=np.uint8)  # 30 wide, 10 tall
        poly = extract_polygons(t, _uniform(3), _uniform(1))[0]
        assert poly.min_width() == 10

    def test_disjoint_spans_in_one_row(self):
        # U-shape: row 1 has two disjoint spans for the same polygon.
        t = np.array([[1, 1, 1], [1, 0, 1]], dtype=np.uint8)
        poly = extract_polygons(t, _uniform(3), _uniform(2))[0]
        row1 = [s for s in poly.horizontal_extents() if s[0] == 1]
        assert len(row1) == 2
