"""Unit tests for the DRC checker on squish patterns."""

import numpy as np
import pytest

from repro.drc import DesignRules, check_pattern, is_legal
from repro.squish import SquishPattern

RULES = DesignRules(min_space=30, min_width=40, min_area=2000, name="test")


def pattern(topology, cell=50):
    t = np.asarray(topology, dtype=np.uint8)
    return SquishPattern(
        topology=t,
        dx=np.full(t.shape[1], cell, dtype=np.int64),
        dy=np.full(t.shape[0], cell, dtype=np.int64),
    )


class TestCleanPatterns:
    def test_empty_is_clean(self):
        assert is_legal(pattern(np.zeros((6, 6))), RULES)

    def test_full_is_clean(self):
        assert is_legal(pattern(np.ones((6, 6))), RULES)

    def test_wide_block_clean(self):
        t = np.zeros((8, 8))
        t[2:5, 2:6] = 1  # 150x200 nm block, area 30000
        assert is_legal(pattern(t), RULES)


class TestWidthRule:
    def test_thin_interior_wire_flagged(self):
        t = np.zeros((8, 8))
        t[3, 2:6] = 1  # 50 nm tall wire is fine (>=40), 1-cell runs in y ok
        p = pattern(t, cell=30)  # now 30 nm tall -> width violation in y
        report = check_pattern(p, RULES)
        assert any(v.rule == "width" and v.axis == "y" for v in report.violations)

    def test_border_touching_wire_exempt(self):
        t = np.zeros((8, 8))
        t[0, 2:6] = 1  # touches the bottom border
        p = pattern(t, cell=30)
        report = check_pattern(p, RULES)
        assert not any(
            v.rule == "width" and v.axis == "y" for v in report.violations
        )


class TestSpaceRule:
    def test_narrow_gap_flagged(self):
        t = np.zeros((8, 8))
        t[2:6, 2] = 1
        t[2:6, 4] = 1  # one 50nm gap between, but with cell=20 -> 20nm gap
        p = pattern(t, cell=20)
        report = check_pattern(p, RULES)
        assert any(v.rule == "space" for v in report.violations)

    def test_wide_gap_clean(self):
        t = np.zeros((8, 8))
        t[2:6, 1:3] = 1
        t[2:6, 5:7] = 1  # 100nm gap at cell=50
        report = check_pattern(pattern(t), RULES)
        assert not any(v.rule == "space" for v in report.violations)

    def test_border_gap_exempt(self):
        t = np.zeros((4, 4))
        t[1:3, 3] = 1  # gap from border to shape is a border 0-run
        report = check_pattern(pattern(t, cell=10), RULES)
        assert not any(v.rule == "space" for v in report.violations)


class TestCornerRule:
    def test_corner_touch_flagged(self):
        t = np.zeros((6, 6))
        t[1:3, 1:3] = 1
        t[3:5, 3:5] = 1  # diagonal touch at (2,2)/(3,3)
        report = check_pattern(pattern(t), RULES)
        assert any(v.rule == "corner" for v in report.violations)

    def test_corner_violation_has_region(self):
        t = np.zeros((4, 4))
        t[0:2, 0:2] = 1
        t[2:4, 2:4] = 1
        report = check_pattern(pattern(t), RULES)
        corner = next(v for v in report.violations if v.rule == "corner")
        assert corner.region.rows == 2 and corner.region.cols == 2


class TestAreaRule:
    def test_small_interior_polygon_flagged(self):
        t = np.zeros((8, 8))
        t[3, 3] = 1  # 50x50 = 2500 >= 2000: clean
        assert is_legal(pattern(t), RULES)
        p = pattern(t, cell=40)  # 40x40 = 1600 < 2000 but width fails too
        report = check_pattern(p, RULES)
        assert any(v.rule == "area" for v in report.violations)

    def test_border_polygon_exempt_from_area(self):
        t = np.zeros((8, 8))
        t[0, 0] = 1
        p = pattern(t, cell=40)
        report = check_pattern(p, RULES)
        assert not any(v.rule == "area" for v in report.violations)


class TestReport:
    def test_summary_clean(self):
        assert check_pattern(pattern(np.zeros((3, 3))), RULES).summary() == "DRC clean"

    def test_summary_lists_counts(self):
        t = np.zeros((6, 6))
        t[1:3, 1:3] = 1
        t[3:5, 3:5] = 1
        report = check_pattern(pattern(t), RULES)
        assert "corner" in report.summary()

    def test_worst_region_none_when_clean(self):
        assert check_pattern(pattern(np.ones((3, 3))), RULES).worst_region() is None

    def test_count_by_rule(self):
        t = np.zeros((6, 6))
        t[1:3, 1:3] = 1
        t[3:5, 3:5] = 1
        counts = check_pattern(pattern(t), RULES).count_by_rule()
        assert counts.get("corner", 0) >= 1
