"""Unit tests for design-rule decks."""

import pytest

from repro.drc import DesignRules, LAYER_RULES, rules_for_style


class TestDesignRules:
    def test_pitch(self):
        r = DesignRules(min_space=30, min_width=40, min_area=4000)
        assert r.min_pitch == 70

    def test_positive_required(self):
        with pytest.raises(ValueError):
            DesignRules(min_space=0, min_width=40, min_area=4000)
        with pytest.raises(ValueError):
            DesignRules(min_space=30, min_width=-1, min_area=4000)

    def test_frozen(self):
        r = rules_for_style("Layer-10001")
        with pytest.raises(Exception):
            r.min_space = 99


class TestPresets:
    def test_both_layers_present(self):
        assert set(LAYER_RULES) == {"Layer-10001", "Layer-10003"}

    def test_layer_10003_is_coarser(self):
        a = rules_for_style("Layer-10001")
        b = rules_for_style("Layer-10003")
        assert b.min_space > a.min_space
        assert b.min_width > a.min_width
        assert b.min_area > a.min_area

    def test_unknown_style(self):
        with pytest.raises(KeyError):
            rules_for_style("Layer-9999")
