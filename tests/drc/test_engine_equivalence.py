"""Property tests: the vectorized DRC engine equals the scalar reference.

Randomized topologies and delta vectors across several rule decks must
produce *identical* violation lists (same order, same fields) from
``check_pattern`` and ``reference_check_pattern``, and identical constraint
systems from both ``extract_axis_constraints`` engines.  This is the safety
net that lets the vectorized engine own the production hot path.
"""

import numpy as np
import pytest

from repro.drc import DesignRules, check_pattern, reference_check_pattern
from repro.legalize.constraints import extract_axis_constraints
from repro.legalize.legalizer import legalize
from repro.squish import SquishPattern

DECKS = [
    DesignRules(min_space=30, min_width=40, min_area=4000, name="dense"),
    DesignRules(min_space=60, min_width=80, min_area=16000, name="sparse"),
    DesignRules(min_space=100, min_width=25, min_area=900, name="odd"),
]


def _random_pattern(rng):
    rows = int(rng.integers(1, 20))
    cols = int(rng.integers(1, 20))
    density = rng.choice([0.15, 0.4, 0.6, 0.85])
    topology = (rng.random((rows, cols)) < density).astype(np.uint8)
    dx = rng.integers(10, 120, size=cols).astype(np.int64)
    dy = rng.integers(10, 120, size=rows).astype(np.int64)
    return SquishPattern(topology=topology, dx=dx, dy=dy)


class TestCheckerEquivalence:
    def test_identical_violations_on_random_topologies(self):
        rng = np.random.default_rng(2024)
        compared = 0
        for trial in range(250):
            pattern = _random_pattern(rng)
            rules = DECKS[trial % len(DECKS)]
            vectorized = check_pattern(pattern, rules).violations
            reference = reference_check_pattern(pattern, rules).violations
            assert vectorized == reference
            compared += len(reference)
        # The workload must actually exercise every rule kind.
        assert compared > 100

    def test_edge_shapes(self):
        rules = DECKS[0]
        for topology in (
            np.zeros((1, 1), dtype=np.uint8),
            np.ones((1, 1), dtype=np.uint8),
            np.ones((1, 9), dtype=np.uint8),
            np.ones((9, 1), dtype=np.uint8),
            np.tile([0, 1], (6, 3)).astype(np.uint8),
        ):
            rows, cols = topology.shape
            pattern = SquishPattern(
                topology=topology,
                dx=np.full(cols, 20, dtype=np.int64),
                dy=np.full(rows, 20, dtype=np.int64),
            )
            assert (
                check_pattern(pattern, rules).violations
                == reference_check_pattern(pattern, rules).violations
            )

    def test_unknown_engine_rejected(self):
        pattern = _random_pattern(np.random.default_rng(0))
        with pytest.raises(ValueError, match="engine"):
            check_pattern(pattern, DECKS[0], engine="gpu")


class TestConstraintEquivalence:
    def test_identical_constraints_on_random_topologies(self):
        rng = np.random.default_rng(7)
        for trial in range(250):
            rows = int(rng.integers(1, 24))
            cols = int(rng.integers(1, 24))
            topology = (
                rng.random((rows, cols)) < rng.choice([0.2, 0.5, 0.8])
            ).astype(np.uint8)
            rules = DECKS[trial % len(DECKS)]
            for axis in ("x", "y"):
                vectorized = extract_axis_constraints(topology, axis, rules)
                reference = extract_axis_constraints(
                    topology, axis, rules, engine="reference"
                )
                assert vectorized == reference


class TestLegalizeEngineParity:
    def test_same_outcome_and_geometry_on_random(self):
        rng = np.random.default_rng(99)
        rules = DECKS[0]
        for _ in range(30):
            topology = (rng.random((16, 16)) < 0.5).astype(np.uint8)
            fast = legalize(topology, (1024, 1024), rules)
            slow = legalize(topology, (1024, 1024), rules, engine="reference")
            assert fast.ok == slow.ok
            assert fast.area_iterations == slow.area_iterations
            if fast.ok:
                assert (fast.pattern.dx == slow.pattern.dx).all()
                assert (fast.pattern.dy == slow.pattern.dy).all()

    def test_dataset_tiles_legalize_identically(self, tiny_library):
        from repro.drc import rules_for_style

        rules = rules_for_style("Layer-10001")
        successes = 0
        for pattern in tiny_library.patterns:
            fast = legalize(pattern.topology, (1024, 1024), rules)
            slow = legalize(
                pattern.topology, (1024, 1024), rules, engine="reference"
            )
            assert fast.ok == slow.ok
            if fast.ok:
                assert (fast.pattern.dx == slow.pattern.dx).all()
                assert (fast.pattern.dy == slow.pattern.dy).all()
                successes += 1
        assert successes > 0
