"""The offline tuner: simulator behavior, scoring, and the
same-seed → same-winner determinism contract of ``repro tune``."""

import pytest

from repro.api.config import ConfigError, PipelineConfig, TuneConfig
from repro.tune import (
    Candidate,
    CostModel,
    WorkloadPhase,
    WorkloadSpec,
    default_candidates,
    render_report,
    score_metrics,
    simulate_trial,
    successive_halving,
)
from repro.tune.search import _fidelity_subset
from repro.tune.simulate import TrialMetrics


def spike_spec():
    return WorkloadSpec(
        name="spike", seed=7,
        phases=(
            WorkloadPhase(duration=4.0, rate=2.0, count=2),
            WorkloadPhase(duration=2.0, rate=20.0, count=2, source="bulk"),
            WorkloadPhase(duration=4.0, rate=2.0, count=2),
        ),
    )


def metrics(**overrides):
    base = dict(
        requests=10, completed=10, rejected=0, p50_latency=0.1,
        p95_latency=0.5, p99_latency=0.6, mean_latency=0.2,
        throughput=5.0, quality=1.0, degrades=0, restores=0,
        final_level=0, makespan=2.0,
    )
    base.update(overrides)
    return TrialMetrics(**base)


class TestCostModel:
    def test_evals_ordering(self):
        cost = CostModel()
        assert cost.evals("full") == cost.evals(None) == 128
        assert cost.evals("bucketed") == 16
        assert cost.evals(32) == 32
        assert cost.evals(10 ** 6) == 128  # clamped to full

    def test_batching_amortizes_the_step_base(self):
        cost = CostModel()
        one = cost.batch_seconds(1, "full")
        eight = cost.batch_seconds(8, "full")
        assert eight < 8 * one

    def test_validation(self):
        with pytest.raises(ConfigError):
            CostModel(step_base=-1.0)
        with pytest.raises(ConfigError):
            CostModel(full_steps=8, bucketed_steps=16)


class TestCandidates:
    def test_validation_names_the_knob(self):
        with pytest.raises(ConfigError):
            Candidate(policy="nonsense")
        with pytest.raises(ConfigError):
            Candidate(engine_workers=0)
        with pytest.raises(ConfigError):
            Candidate(queue_limit=0)

    def test_grid_is_stable_and_policy_diverse_up_front(self):
        grid = default_candidates()
        assert grid == default_candidates()
        assert len(grid) == len({c.key() for c in grid})
        # Policy is the innermost axis: a tiny budget prefix still races
        # every policy (the point of trimming by prefix).
        assert {c.policy for c in grid[:4]} == {
            "greedy", "shape_bucketed", "fair_share", "adaptive"
        }
        # Adaptive owns its quality schedule: never pre-degraded.
        assert all(
            c.sampler_steps == "full"
            for c in grid if c.policy == "adaptive"
        )


class TestScoring:
    def test_holding_the_slo_beats_any_miss(self):
        holds = score_metrics(metrics(p95_latency=0.9, quality=0.4), 1.0)
        misses = score_metrics(metrics(p95_latency=1.1, quality=1.0), 1.0)
        assert holds > misses

    def test_within_slo_quality_wins(self):
        degraded = score_metrics(metrics(p95_latency=0.2, quality=0.4), 1.0)
        full = score_metrics(metrics(p95_latency=0.9, quality=1.0), 1.0)
        assert full > degraded

    def test_outside_slo_closeness_wins_over_quality(self):
        near = score_metrics(metrics(p95_latency=1.1, quality=0.4), 1.0)
        far = score_metrics(metrics(p95_latency=3.0, quality=1.0), 1.0)
        assert near > far

    def test_shedding_disqualifies_from_the_slo_tier(self):
        shedding = score_metrics(
            metrics(p95_latency=0.1, rejected=5, quality=1.0), 1.0
        )
        serving = score_metrics(metrics(p95_latency=0.9, quality=0.2), 1.0)
        assert serving > shedding


class TestFidelitySubset:
    def test_full_fidelity_is_identity(self):
        arrivals = spike_spec().arrivals()
        assert _fidelity_subset(arrivals, 1.0) == arrivals

    def test_low_fidelity_keeps_every_phase(self):
        arrivals = spike_spec().arrivals()
        subset = _fidelity_subset(arrivals, 0.25)
        assert len(subset) < len(arrivals)
        assert {a.phase for a in subset} == {a.phase for a in arrivals}
        assert subset == sorted(subset, key=lambda a: a.at)


class TestSimulation:
    def test_trial_is_deterministic(self):
        arrivals = spike_spec().arrivals()
        c = Candidate(policy="adaptive")
        tune = TuneConfig(slo_p95=1.0)
        assert (
            simulate_trial(c, arrivals, tune=tune).as_dict()
            == simulate_trial(c, arrivals, tune=tune).as_dict()
        )

    def test_queue_limit_sheds_load(self):
        arrivals = spike_spec().arrivals()
        m = simulate_trial(
            Candidate(policy="greedy", queue_limit=2), arrivals
        )
        assert m.rejected > 0
        assert m.completed + m.rejected == m.requests

    def test_static_degraded_config_pays_in_quality(self):
        arrivals = spike_spec().arrivals()
        m = simulate_trial(
            Candidate(policy="greedy", sampler_steps="bucketed"), arrivals
        )
        assert m.quality == pytest.approx(16 / 128)

    def test_adaptive_degrades_under_spike_and_restores(self):
        arrivals = spike_spec().arrivals()
        tune = TuneConfig(slo_p95=1.0)
        adaptive = simulate_trial(
            Candidate(policy="adaptive"), arrivals, tune=tune
        )
        greedy = simulate_trial(
            Candidate(policy="greedy"), arrivals, tune=tune
        )
        assert adaptive.degrades > 0
        assert adaptive.final_level == 0  # calm tail restored quality
        assert adaptive.quality < 1.0
        assert greedy.quality == pytest.approx(1.0)
        # The headline: adaptive holds the SLO the static config misses.
        assert adaptive.p95_latency <= tune.slo_p95 < greedy.p95_latency


class TestSuccessiveHalving:
    def test_same_seed_same_winner_and_config(self):
        spec = spike_spec()
        tune = TuneConfig(slo_p95=1.0)
        one = successive_halving(spec, tune=tune, budget=16)
        two = successive_halving(spec, tune=tune, budget=16)
        assert one.winner.candidate == two.winner.candidate
        assert one.tuned_config().dumps() == two.tuned_config().dumps()
        assert [t.as_dict() for t in one.trials] == [
            t.as_dict() for t in two.trials
        ]

    def test_spike_workload_selects_adaptive(self):
        outcome = successive_halving(
            spike_spec(), tune=TuneConfig(slo_p95=1.0), budget=16
        )
        assert outcome.winner.candidate.policy == "adaptive"
        assert outcome.winner.metrics.p95_latency <= 1.0

    def test_tuned_config_round_trips_and_serves_the_winner(self):
        outcome = successive_halving(
            spike_spec(), tune=TuneConfig(slo_p95=1.0), budget=16
        )
        tuned = outcome.tuned_config()
        loaded = PipelineConfig.loads(tuned.dumps())
        assert loaded.dumps() == tuned.dumps()
        won = outcome.winner.candidate
        assert loaded.serve.policy == won.policy
        assert loaded.serve.engine_workers == won.engine_workers
        assert loaded.serve.queue_limit == won.queue_limit
        assert loaded.sample.sampler_steps == won.sampler_steps

    def test_budget_trims_a_deterministic_prefix(self):
        spec = spike_spec()
        outcome = successive_halving(spec, budget=4)
        assert outcome.candidates == 4
        keys = {t.candidate.key() for t in outcome.trials}
        assert keys <= {c.key() for c in default_candidates()[:4]}
        with pytest.raises(ValueError):
            successive_halving(spec, budget=0)

    def test_explicit_candidate_list(self):
        outcome = successive_halving(
            spike_spec(),
            candidates=[Candidate(policy="greedy"),
                        Candidate(policy="adaptive")],
            tune=TuneConfig(slo_p95=1.0),
        )
        assert outcome.candidates == 2
        assert outcome.winner.candidate.policy == "adaptive"

    def test_report_renders_every_rung_and_the_winner(self):
        outcome = successive_halving(
            spike_spec(), tune=TuneConfig(slo_p95=1.0), budget=8
        )
        report = render_report(outcome)
        for rung in range(outcome.rungs):
            assert f"rung {rung}" in report
        assert "winner:" in report
        assert outcome.winner.candidate.key() in report
        assert "serve knobs:" in report
