"""Unit + property tests for the adaptive hysteresis controller.

The property tests pin the two safety guarantees the README advertises:
the quality floor (no load pattern can push a job's schedule below
``floor_steps``) and no-stuck-degraded (enough idle ticks always walk
the level back to 0, whatever happened before).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.config import ConfigError, TuneConfig
from repro.tune import (
    AdaptiveController,
    EngineLoadSnapshot,
    degrade_steps,
    quality_rank,
)

CALM = dict(queue_depth=0, queued_samples=0, oldest_wait=0.0,
            queue_wait_p95=0.0, busy_fraction=0.0)
PRESSURED = dict(queue_depth=64, queued_samples=128, oldest_wait=5.0,
                 queue_wait_p95=5.0, busy_fraction=1.0)


def snap(at, **load):
    return EngineLoadSnapshot(at=at, **load)


class TestQualityOrder:
    def test_full_outranks_ints_outranks_bucketed(self):
        assert quality_rank("full") > quality_rank(10 ** 6)
        assert quality_rank(None) == quality_rank("full")
        assert quality_rank(64) > quality_rank(32)
        assert quality_rank(1) > quality_rank("bucketed")

    def test_degrade_never_upgrades(self):
        assert degrade_steps("bucketed", 32) == "bucketed"
        assert degrade_steps(16, 32) == 16
        assert degrade_steps("full", 32) == 32
        assert degrade_steps(None, "bucketed") == "bucketed"


class TestHysteresis:
    def test_degrades_after_streak_and_not_before(self):
        ctl = AdaptiveController(
            TuneConfig(degrade_after=3, tick_interval=0.0)
        )
        for i in range(2):
            assert ctl.observe(snap(float(i), **PRESSURED)) == 0
        assert ctl.observe(snap(2.0, **PRESSURED)) == 1
        assert ctl.degrades == 1

    def test_neutral_tick_resets_both_streaks(self):
        cfg = TuneConfig(
            degrade_after=2, restore_after=2, queue_high=8, queue_low=2,
            tick_interval=0.0,
        )
        ctl = AdaptiveController(cfg)
        ctl.observe(snap(0.0, **PRESSURED))
        # Between queue_low and queue_high: neither pressured nor calm.
        neutral = dict(CALM, queue_depth=4)
        ctl.observe(snap(1.0, **neutral))
        ctl.observe(snap(2.0, **PRESSURED))
        assert ctl.level == 0  # streak restarted; one tick is not enough

    def test_rate_limit_swallows_fast_ticks(self):
        ctl = AdaptiveController(
            TuneConfig(degrade_after=2, tick_interval=0.5)
        )
        for at in (0.0, 0.1, 0.2, 0.3):  # only the first is due
            ctl.observe(snap(at, **PRESSURED))
        assert ctl.level == 0
        ctl.observe(snap(0.6, **PRESSURED))
        assert ctl.level == 1

    def test_ladder_walks_down_then_back_up(self):
        cfg = TuneConfig(
            degrade_ladder=(32, "bucketed"), degrade_after=1,
            restore_after=2, tick_interval=0.0,
        )
        ctl = AdaptiveController(cfg)
        at = iter(range(100))
        assert ctl.observe(snap(float(next(at)), **PRESSURED)) == 1
        assert ctl.effective_steps("full") == 32
        assert ctl.observe(snap(float(next(at)), **PRESSURED)) == 2
        assert ctl.effective_steps("full") == "bucketed"
        assert ctl.gather_scale() == pytest.approx(cfg.gather_boost ** 2)
        for _ in range(4):
            ctl.observe(snap(float(next(at)), **CALM))
        assert ctl.level == 0
        assert ctl.effective_steps("full") == "full"
        assert (ctl.degrades, ctl.restores) == (2, 2)

    def test_reset_keeps_lifetime_counts(self):
        ctl = AdaptiveController(TuneConfig(degrade_after=1, tick_interval=0.0))
        ctl.observe(snap(0.0, **PRESSURED))
        ctl.reset()
        assert ctl.level == 0
        assert ctl.degrades == 1

    def test_floor_clamps_the_ladder(self):
        cfg = TuneConfig(
            degrade_ladder=(32, "bucketed"), floor_steps=16,
            degrade_after=1, tick_interval=0.0,
        )
        ctl = AdaptiveController(cfg)
        ctl.observe(snap(0.0, **PRESSURED))
        ctl.observe(snap(1.0, **PRESSURED))
        assert ctl.level == 2
        # The ladder says "bucketed" but the floor says 16.
        assert ctl.effective_steps("full") == 16


# -- property tests ----------------------------------------------------

ladder_rungs = st.one_of(
    st.just("bucketed"), st.integers(min_value=1, max_value=256)
)
tune_configs = st.builds(
    TuneConfig,
    degrade_ladder=st.lists(ladder_rungs, min_size=1, max_size=4).map(tuple),
    floor_steps=ladder_rungs,
    degrade_after=st.integers(min_value=1, max_value=3),
    restore_after=st.integers(min_value=1, max_value=3),
    tick_interval=st.just(0.0),
)
load_ticks = st.lists(
    st.booleans(),  # True = pressured tick, False = calm tick
    min_size=0,
    max_size=40,
)
requests = st.one_of(
    st.just("full"), st.just("bucketed"), st.none(),
    st.integers(min_value=1, max_value=256),
)


def drive(ctl, pattern):
    for at, pressed in enumerate(pattern):
        ctl.observe(snap(float(at), **(PRESSURED if pressed else CALM)))


class TestControllerProperties:
    @given(cfg=tune_configs, pattern=load_ticks, requested=requests)
    @settings(max_examples=200, deadline=None)
    def test_effective_steps_never_below_floor(self, cfg, pattern, requested):
        """No load pattern pushes a job below min(floor, its own ask)."""
        ctl = AdaptiveController(cfg)
        drive(ctl, pattern)
        effective = ctl.effective_steps(requested)
        floor = min(quality_rank(cfg.floor_steps), quality_rank(requested))
        assert quality_rank(effective) >= floor
        # And degrading never upgrades: effective <= requested.
        assert quality_rank(effective) <= quality_rank(requested)

    @given(cfg=tune_configs, pattern=load_ticks)
    @settings(max_examples=200, deadline=None)
    def test_idle_engine_always_restores_full_quality(self, cfg, pattern):
        """levels * restore_after idle ticks always reach level 0."""
        ctl = AdaptiveController(cfg)
        drive(ctl, pattern)
        start = float(len(pattern))
        for k in range(ctl.levels * cfg.restore_after):
            ctl.observe(snap(start + k, **CALM))
        assert ctl.level == 0
        assert ctl.effective_steps("full") == "full"

    @given(cfg=tune_configs, pattern=load_ticks)
    @settings(max_examples=200, deadline=None)
    def test_level_stays_on_the_ladder(self, cfg, pattern):
        ctl = AdaptiveController(cfg)
        drive(ctl, pattern)
        assert 0 <= ctl.level <= len(cfg.degrade_ladder)
        # Every transition is counted: the books always balance.
        assert ctl.degrades - ctl.restores == ctl.level


class TestTuneConfigValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ConfigError):
            TuneConfig(slo_p95=0.0)
        with pytest.raises(ConfigError):
            TuneConfig(degrade_ladder=())
        with pytest.raises(ConfigError):
            TuneConfig(degrade_after=0)
        with pytest.raises(ConfigError):
            TuneConfig(queue_high=2, queue_low=4)
        with pytest.raises(ConfigError):
            TuneConfig(gather_boost=0.5)
        with pytest.raises(ConfigError):
            TuneConfig(degrade_ladder=("nonsense",))
