"""Workload specs: validation, seeded determinism, JSON round-trip."""

import pytest

from repro.api.config import ConfigError
from repro.tune import WorkloadPhase, WorkloadSpec


def spike_spec(**overrides):
    data = {
        "name": "spike",
        "seed": 7,
        "phases": [
            {"duration": 2.0, "rate": 3.0, "count": 2},
            {"duration": 1.0, "rate": 12.0, "count": 1, "source": "bulk",
             "arrival": "burst"},
            {"duration": 2.0, "rate": 3.0, "count": 2,
             "sampler_steps": "bucketed"},
        ],
    }
    data.update(overrides)
    return WorkloadSpec.from_dict(data)


class TestValidation:
    def test_rejects_empty_and_bad_phases(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(name="empty", phases=())
        with pytest.raises(ConfigError):
            WorkloadPhase(duration=0.0)
        with pytest.raises(ConfigError):
            WorkloadPhase(rate=-1.0)
        with pytest.raises(ConfigError):
            WorkloadPhase(count=0)
        with pytest.raises(ConfigError):
            WorkloadPhase(arrival="fractal")
        with pytest.raises(ConfigError):
            WorkloadPhase(shape=(64,))
        with pytest.raises(ConfigError):
            WorkloadPhase(sampler_steps="sometimes")

    def test_rejects_unknown_keys(self):
        with pytest.raises(ConfigError):
            WorkloadSpec.from_dict(
                {"name": "x", "phases": [{"duration": 1.0}], "typo": 1}
            )

    def test_dict_phases_are_normalized_to_dataclasses(self):
        spec = spike_spec()
        assert all(isinstance(p, WorkloadPhase) for p in spec.phases)
        assert spec.duration == pytest.approx(5.0)
        assert spec.expected_requests == 6 + 12 + 6


class TestArrivals:
    def test_same_seed_same_trace(self):
        spec = spike_spec()
        assert spec.arrivals() == spec.arrivals()
        assert spec.arrivals(seed=3) == spec.arrivals(seed=3)

    def test_different_seed_different_trace(self):
        spec = spike_spec()
        assert spec.arrivals(seed=1) != spec.arrivals(seed=2)

    def test_trace_is_sorted_and_phase_tagged(self):
        arrivals = spike_spec().arrivals()
        assert arrivals == sorted(arrivals, key=lambda a: a.at)
        assert {a.phase for a in arrivals} == {0, 1, 2}
        # Burst phase drops its whole budget at the phase boundary.
        burst = [a for a in arrivals if a.phase == 1]
        assert len(burst) == 12
        assert all(a.at == pytest.approx(2.0) for a in burst)
        assert all(a.source == "bulk" for a in burst)
        # Phase-pinned quality rides each arrival.
        assert all(
            a.sampler_steps == "bucketed" for a in arrivals if a.phase == 2
        )

    def test_uniform_phase_spaces_evenly(self):
        spec = WorkloadSpec(
            name="flat", seed=0,
            phases=(WorkloadPhase(duration=2.0, rate=2.0, arrival="uniform"),),
        )
        arrivals = spec.arrivals()
        assert [a.at for a in arrivals] == pytest.approx([0.0, 0.5, 1.0, 1.5])


class TestRoundTrip:
    def test_json_save_load_is_identity(self, tmp_path):
        spec = spike_spec()
        path = spec.save(tmp_path / "spike.json")
        loaded = WorkloadSpec.load(path)
        assert loaded == spec
        assert loaded.arrivals() == spec.arrivals()

    def test_malformed_json_is_a_config_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(ConfigError):
            WorkloadSpec.load(path)

    def test_committed_ci_spec_loads(self):
        from pathlib import Path

        spec = WorkloadSpec.load(
            Path(__file__).resolve().parents[2]
            / "benchmarks" / "workloads" / "spike.json"
        )
        assert spec.name == "spike"
        assert len(spec.phases) == 3
        assert spec.arrivals() == spec.arrivals()
