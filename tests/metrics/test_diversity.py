"""Unit + property tests for the diversity metric (Eq. 8)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    complexity_distribution,
    complexity_of,
    diversity,
    shannon_entropy,
)
from repro.squish import SquishPattern


def stripe_topology(n_stripes, size=16):
    t = np.zeros((size, size), dtype=np.uint8)
    for i in range(n_stripes):
        t[:, 2 * i] = 1
    return t


class TestShannonEntropy:
    def test_uniform(self):
        assert shannon_entropy([1, 1, 1, 1]) == pytest.approx(2.0)

    def test_degenerate(self):
        assert shannon_entropy([10]) == 0.0
        assert shannon_entropy([]) == 0.0

    def test_ignores_zeros(self):
        assert shannon_entropy([5, 0, 5]) == pytest.approx(1.0)

    def test_scale_invariant(self):
        assert shannon_entropy([1, 2, 3]) == pytest.approx(
            shannon_entropy([10, 20, 30])
        )


class TestComplexityDistribution:
    def test_counts(self):
        items = [stripe_topology(1), stripe_topology(1), stripe_topology(2)]
        hist = complexity_distribution(items)
        assert sum(hist.values()) == 3
        assert len(hist) == 2

    def test_accepts_patterns(self):
        p = SquishPattern(
            topology=stripe_topology(2),
            dx=np.full(16, 10),
            dy=np.full(16, 10),
        )
        assert complexity_of(p) == complexity_of(stripe_topology(2))


class TestDiversity:
    def test_identical_library_zero(self):
        assert diversity([stripe_topology(3)] * 10) == 0.0

    def test_more_variety_higher(self):
        low = [stripe_topology(1)] * 8 + [stripe_topology(2)] * 8
        high = [stripe_topology(i % 7 + 1) for i in range(16)]
        assert diversity(high) > diversity(low)

    def test_empty_library(self):
        assert diversity([]) == 0.0


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(1, 6), min_size=1, max_size=30))
def test_diversity_bounded_by_log_count(stripe_counts):
    items = [stripe_topology(n) for n in stripe_counts]
    h = diversity(items)
    assert 0.0 <= h <= np.log2(len(items)) + 1e-9
