"""Unit tests for the legality pipeline (Eq. 7)."""

import numpy as np
import pytest

from repro.metrics import (
    LegalityResult,
    legalize_batch,
    legalize_many,
    legalize_sequential,
    physical_size_for,
)
from repro.metrics.stats import library_stats
from repro.squish import PatternLibrary

# the old legalize_batch contract, under its blessed name
_sequential = legalize_sequential


class TestPhysicalScaling:
    def test_base_resolution(self):
        assert physical_size_for((128, 128)) == (2048, 2048)

    def test_linear_scaling(self):
        assert physical_size_for((256, 256)) == (4096, 4096)
        assert physical_size_for((1024, 1024)) == (16384, 16384)

    def test_rectangular(self):
        assert physical_size_for((128, 256)) == (4096, 2048)


class TestSequentialContract:
    def test_clean_topologies_all_legal(self, tiny_library):
        topologies = [p.topology for p in tiny_library]
        result = _sequential(topologies, "Layer-10001", physical_size=(1024, 1024))
        assert result.legality == 1.0
        assert len(result.legal) == len(topologies)
        assert result.failure_causes == {}

    def test_illegal_topology_counted(self):
        # Corner touch: unfixable.
        t = np.zeros((16, 16), dtype=np.uint8)
        t[2:6, 2:6] = 1
        t[6:10, 6:10] = 1
        result = _sequential([t], "Layer-10001")
        assert result.legality == 0.0
        assert "corner" in result.failure_causes

    def test_mixed_batch_ratio(self, tiny_library):
        bad = np.zeros((16, 16), dtype=np.uint8)
        bad[2:6, 2:6] = 1
        bad[6:10, 6:10] = 1
        topologies = [tiny_library[0].topology, bad]
        result = _sequential(topologies, "Layer-10001", physical_size=None)
        assert result.legality == pytest.approx(0.5)
        assert result.total == 2

    def test_keep_failures(self):
        bad = np.zeros((16, 16), dtype=np.uint8)
        bad[2:6, 2:6] = 1
        bad[6:10, 6:10] = 1
        result = _sequential([bad], "Layer-10001", keep_failures=True)
        assert len(result.failures) == 1
        assert result.failures[0].failed_region is not None

    def test_empty_batch(self):
        result = _sequential([], "Layer-10001")
        assert result.legality == 0.0
        assert result.total == 0

    def test_malformed_topology_propagates(self):
        # fault_isolation=False keeps the original contract: a malformed
        # topology is a programming error, not a legality statistic.
        with pytest.raises(ValueError):
            _sequential(
                [np.zeros(16, dtype=np.uint8)],
                "Layer-10001",
                physical_size=(1024, 1024),
            )


class TestDeprecatedLegalizeBatch:
    """``legalize_batch`` is a deprecated alias delegating to
    ``legalize_many`` — one code path, one warning."""

    def test_warns(self, tiny_library):
        with pytest.warns(DeprecationWarning, match="legalize_many"):
            legalize_batch(
                [tiny_library[0].topology],
                "Layer-10001",
                physical_size=(1024, 1024),
            )

    def test_delegates_identically(self, tiny_library):
        bad = np.zeros((16, 16), dtype=np.uint8)
        bad[2:6, 2:6] = 1
        bad[6:10, 6:10] = 1
        topologies = [p.topology for p in tiny_library] + [bad]
        with pytest.warns(DeprecationWarning):
            alias = legalize_batch(
                topologies, "Layer-10001", physical_size=(1024, 1024)
            )
        direct = _sequential(
            topologies, "Layer-10001", physical_size=(1024, 1024)
        )
        assert alias.total == direct.total
        assert alias.legality == direct.legality
        assert alias.failure_causes == direct.failure_causes
        for a, b in zip(alias.legal.patterns, direct.legal.patterns):
            assert (a.topology == b.topology).all()

    def test_keeps_raising_contract(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                legalize_batch(
                    [np.zeros(16, dtype=np.uint8)],
                    "Layer-10001",
                    physical_size=(1024, 1024),
                )


class TestLegalizeMany:
    def test_parallel_matches_sequential(self, tiny_library):
        bad = np.zeros((16, 16), dtype=np.uint8)
        bad[2:6, 2:6] = 1
        bad[6:10, 6:10] = 1
        topologies = [p.topology for p in tiny_library] + [bad]
        sequential = _sequential(
            topologies, "Layer-10001", physical_size=(1024, 1024)
        )
        parallel = legalize_many(
            topologies,
            "Layer-10001",
            physical_size=(1024, 1024),
            max_workers=4,
        )
        assert parallel.total == sequential.total
        assert parallel.legality == sequential.legality
        assert parallel.failure_causes == sequential.failure_causes
        # Results come back in input order regardless of worker scheduling.
        for a, b in zip(parallel.legal.patterns, sequential.legal.patterns):
            assert (a.topology == b.topology).all()
            assert (a.dx == b.dx).all() and (a.dy == b.dy).all()

    def test_wall_seconds_recorded(self, tiny_library):
        result = legalize_many(
            [p.topology for p in tiny_library],
            "Layer-10001",
            physical_size=(1024, 1024),
        )
        assert result.wall_seconds > 0
        assert result.patterns_per_sec > 0

    def test_raising_item_is_fault_isolated(self, tiny_library):
        # A 1-D array raises inside as_topology; the batch must survive it.
        topologies = [
            tiny_library[0].topology,
            np.zeros(16, dtype=np.uint8),
            tiny_library[1].topology,
        ]
        result = legalize_many(
            topologies,
            "Layer-10001",
            physical_size=(1024, 1024),
            max_workers=3,
            keep_failures=True,
        )
        assert result.total == 3
        assert len(result.legal) == 2
        assert result.failure_causes == {"ValueError": 1}
        assert len(result.failures) == 1
        assert not result.failures[0].ok

    def test_empty_batch(self):
        result = legalize_many([], "Layer-10001")
        assert result.total == 0
        assert result.legality == 0.0


class TestLibraryStats:
    def test_empty(self):
        stats = library_stats(PatternLibrary())
        assert stats.count == 0
        assert stats.diversity == 0.0

    def test_populated(self, tiny_library):
        stats = library_stats(tiny_library, legality=0.9)
        assert stats.count == len(tiny_library)
        assert stats.legality == 0.9
        assert stats.diversity > 0
        assert 0 < stats.mean_fill < 1
        d = stats.as_dict()
        assert set(d) == {
            "count", "diversity", "legality", "mean_fill", "mean_complexity",
        }
