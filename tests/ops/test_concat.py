"""Unit tests for the concatenation baselines."""

import numpy as np
import pytest

from repro.drc import check_pattern, rules_for_style
from repro.ops import ConcatResult, concat_legalized_patterns

RULES = rules_for_style("Layer-10001")
TILE_NM = 1024  # matches the small_model's 64-cell window at 16 nm/cell


class TestConcatLegalizedPatterns:
    def test_produces_stitched_pattern(self, small_model):
        rng = np.random.default_rng(0)
        result = concat_legalized_patterns(
            small_model, (128, 128), 0, rng, RULES, TILE_NM, "Layer-10001"
        )
        assert isinstance(result, ConcatResult)
        if result.tiles_failed:
            # Short-circuit: a failed tile aborts the doomed stitch early.
            assert 1 <= result.samplings <= 4
        else:
            assert result.samplings == 4  # 2x2 tiles
        if result.pattern is not None:
            assert result.pattern.physical_size == (2 * TILE_NM, 2 * TILE_NM)
            assert result.pattern.style == "Layer-10001"

    def test_no_joint_solver(self, small_model):
        """The stitched pattern keeps each tile's own geometry: scan lines
        at tile boundaries must land exactly on multiples of the tile size."""
        rng = np.random.default_rng(1)
        result = concat_legalized_patterns(
            small_model, (128, 128), 0, rng, RULES, TILE_NM, "Layer-10001"
        )
        if result.pattern is None:
            pytest.skip("a tile failed its own legalization")
        xs = result.pattern.x_coords()
        assert TILE_NM in list(xs)

    def test_single_tile_case(self, small_model):
        rng = np.random.default_rng(2)
        result = concat_legalized_patterns(
            small_model, (64, 64), 0, rng, RULES, TILE_NM, "Layer-10001"
        )
        assert result.samplings == 1
        if result.pattern is not None:
            # One clean tile stitched alone must remain DRC clean.
            assert check_pattern(result.pattern, RULES).is_clean

    def test_log_populated(self, small_model):
        rng = np.random.default_rng(3)
        result = concat_legalized_patterns(
            small_model, (128, 128), 0, rng, RULES, TILE_NM, "Layer-10001"
        )
        assert result.log

    def test_failed_tile_short_circuits(self, small_model, monkeypatch):
        """A failed tile dooms the stitch: no further sampling happens."""
        from repro.legalize.legalizer import LegalizationResult
        from repro.ops import concat as concat_module

        def always_fail(topology, physical_size, rules, style=None, **kwargs):
            result = LegalizationResult(ok=False)
            result.log.append("FAIL x-axis: forced by test")
            return result

        monkeypatch.setattr(concat_module, "legalize", always_fail)
        rng = np.random.default_rng(4)
        result = concat_legalized_patterns(
            small_model, (128, 128), 0, rng, RULES, TILE_NM, "Layer-10001"
        )
        assert result.pattern is None
        assert result.tiles_failed == 1
        # 2x2 tiles, but only the first was ever sampled and legalized.
        assert result.samplings == 1
        assert "aborting" in result.log[-1]
