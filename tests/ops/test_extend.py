"""Unit tests for free-size extension (Fig. 7) and the sampling formulas."""

import numpy as np
import pytest

from repro.ops import (
    concat_samplings,
    extend,
    in_paint,
    n_in_samplings,
    n_out_samplings,
    naive_concat,
    out_paint,
)


class TestSamplingFormulas:
    def test_n_in_matches_paper(self):
        # N_in = (2*ceil(W/L)-1)(2*ceil(H/L)-1)
        assert n_in_samplings(256, 256, 128) == 9
        assert n_in_samplings(512, 512, 128) == 49
        assert n_in_samplings(128, 128, 128) == 1
        assert n_in_samplings(200, 300, 128) == 3 * 5

    def test_n_out_matches_paper(self):
        # N_out = (ceil((W-L)/S)+1)(ceil((H-L)/S)+1)
        assert n_out_samplings(256, 256, 128, 64) == 9
        assert n_out_samplings(128, 128, 128, 64) == 1
        assert n_out_samplings(512, 256, 128, 128) == 4 * 2

    def test_concat_samplings(self):
        assert concat_samplings(256, 256, 128) == 4
        assert concat_samplings(300, 300, 128) == 9


class TestOutPaint:
    def test_shape_and_seed_preserved(self, small_model):
        rng = np.random.default_rng(0)
        seed = small_model.sample(1, 0, rng)[0]
        result = out_paint(small_model, seed, (128, 128), 0, rng)
        assert result.topology.shape == (128, 128)
        assert result.method == "out"
        assert np.array_equal(result.topology[:64, :64], seed)

    def test_sampling_count_positive(self, small_model):
        rng = np.random.default_rng(1)
        seed = small_model.sample(1, 0, rng)[0]
        result = out_paint(small_model, seed, (128, 128), 0, rng)
        assert result.samplings == len(result.windows)
        assert result.samplings >= 3

    def test_seed_larger_than_target_rejected(self, small_model):
        with pytest.raises(ValueError):
            out_paint(
                small_model,
                np.zeros((256, 256), dtype=np.uint8),
                (128, 128),
                0,
                np.random.default_rng(0),
            )

    def test_bad_stride_rejected(self, small_model):
        seed = np.zeros((64, 64), dtype=np.uint8)
        with pytest.raises(ValueError):
            out_paint(small_model, seed, (128, 128), 0, np.random.default_rng(0), stride=0)


class TestInPaint:
    def test_shape(self, small_model):
        rng = np.random.default_rng(2)
        result = in_paint(small_model, (128, 128), 0, rng)
        assert result.topology.shape == (128, 128)
        assert result.method == "in"

    def test_sampling_count_matches_formula(self, small_model):
        rng = np.random.default_rng(3)
        result = in_paint(small_model, (128, 128), 0, rng)
        # 2x2 tiles -> (2*2-1)^2 = 9 samplings total
        assert result.samplings == n_in_samplings(128, 128, 64)

    def test_seed_used_as_first_tile(self, small_model):
        rng = np.random.default_rng(4)
        seed = small_model.sample(1, 0, rng)[0]
        result = in_paint(small_model, (128, 128), 0, rng, seed_topology=seed)
        # Top-left quadrant interior (outside seam bands) must match seed.
        assert np.array_equal(result.topology[:32, :32], seed[:32, :32])

    def test_bad_seed_shape(self, small_model):
        with pytest.raises(ValueError):
            in_paint(
                small_model, (128, 128), 0, np.random.default_rng(0),
                seed_topology=np.zeros((8, 8), dtype=np.uint8),
            )

    def test_crop_to_non_multiple(self, small_model):
        rng = np.random.default_rng(5)
        result = in_paint(small_model, (100, 90), 0, rng)
        assert result.topology.shape == (100, 90)


class TestExtendDispatch:
    def test_out_method(self, small_model):
        result = extend(small_model, (128, 128), 0, np.random.default_rng(6), method="out")
        assert result.method == "out"
        assert result.topology.shape == (128, 128)

    def test_in_method(self, small_model):
        result = extend(small_model, (128, 128), 1, np.random.default_rng(7), method="in")
        assert result.method == "in"

    def test_unknown_method(self, small_model):
        with pytest.raises(ValueError):
            extend(small_model, (128, 128), 0, np.random.default_rng(8), method="diagonal")

    def test_auto_seed_counted(self, small_model):
        result = extend(small_model, (128, 128), 0, np.random.default_rng(9), method="out")
        # One extra sampling for the automatically drawn seed.
        assert result.samplings >= 4


class TestNaiveConcat:
    def test_shape(self, small_model):
        out = naive_concat(small_model, (128, 128), 0, np.random.default_rng(10))
        assert out.shape == (128, 128)

    def test_tiles_are_independent_samples(self, small_model):
        out = naive_concat(small_model, (128, 128), 0, np.random.default_rng(11))
        w = small_model.window
        assert not np.array_equal(out[:w, :w], out[:w, w:])

    def test_crop(self, small_model):
        out = naive_concat(small_model, (100, 70), 0, np.random.default_rng(12))
        assert out.shape == (100, 70)
