"""Unit tests for pattern modification (Eq. 12)."""

import numpy as np
import pytest

from repro.drc import GridRegion
from repro.ops import modify, modify_region, region_mask


class TestRegionMask:
    def test_marks_region_zero(self):
        mask = region_mask((6, 6), GridRegion(1, 2, 3, 4))
        assert mask[1, 2] == 0 and mask[3, 4] == 0
        assert mask[0, 0] == 1 and mask[5, 5] == 1
        assert mask.sum() == 36 - 9


class TestModify:
    def test_kept_region_byte_identical(self, small_model, rng):
        topo = small_model.sample(1, 0, np.random.default_rng(0))[0]
        mask = region_mask(topo.shape, GridRegion(10, 10, 30, 30))
        out = modify(small_model, topo, mask, 0, np.random.default_rng(1))
        assert np.array_equal(out[mask == 1], topo[mask == 1])

    def test_masked_region_regenerated(self, small_model):
        topo = small_model.sample(1, 0, np.random.default_rng(2))[0]
        mask = region_mask(topo.shape, GridRegion(0, 0, 40, 40))
        outs = [
            modify(small_model, topo, mask, 0, np.random.default_rng(seed))
            for seed in (3, 4)
        ]
        # Different seeds give different in-fill (overwhelmingly likely).
        assert not np.array_equal(outs[0], outs[1])

    def test_all_kept_shortcut(self, small_model):
        topo = small_model.sample(1, 0, np.random.default_rng(5))[0]
        out = modify(
            small_model, topo, np.ones_like(topo), 0, np.random.default_rng(6)
        )
        assert np.array_equal(out, topo)

    def test_shape_mismatch_raises(self, small_model):
        with pytest.raises(ValueError):
            modify(
                small_model,
                np.zeros((8, 8), dtype=np.uint8),
                np.ones((4, 4), dtype=np.uint8),
                0,
                np.random.default_rng(0),
            )

    def test_output_binary(self, small_model):
        topo = small_model.sample(1, 1, np.random.default_rng(7))[0]
        mask = region_mask(topo.shape, GridRegion(5, 5, 25, 25))
        out = modify(small_model, topo, mask, 1, np.random.default_rng(8))
        assert set(np.unique(out)) <= {0, 1}


class TestModifyRegion:
    def test_margin_expands(self, small_model):
        topo = small_model.sample(1, 0, np.random.default_rng(9))[0]
        region = GridRegion(20, 20, 24, 24)
        out = modify_region(
            small_model, topo, region, 0, np.random.default_rng(10), margin=2
        )
        # Cells well outside region+margin are untouched.
        assert np.array_equal(out[:17, :17], topo[:17, :17])

    def test_region_clamped_to_shape(self, small_model):
        topo = small_model.sample(1, 0, np.random.default_rng(11))[0]
        region = GridRegion(0, 0, topo.shape[0] - 1, topo.shape[1] - 1)
        out = modify_region(
            small_model, topo, region, 0, np.random.default_rng(12)
        )
        assert out.shape == topo.shape
