"""Unit tests for the SquishPattern / PatternLibrary containers."""

import numpy as np
import pytest

from repro.squish import PatternLibrary, SquishPattern


def make_pattern():
    return SquishPattern(
        topology=np.array([[1, 0], [1, 1]], dtype=np.uint8),
        dx=np.array([30, 70]),
        dy=np.array([40, 60]),
        style="Layer-10001",
    )


class TestSquishPattern:
    def test_physical_size(self):
        p = make_pattern()
        assert p.physical_size == (100, 100)
        assert p.shape == (2, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            SquishPattern(np.ones((2, 2)), dx=[1, 2, 3], dy=[1, 2])
        with pytest.raises(ValueError):
            SquishPattern(np.ones((2, 2)), dx=[1, 0], dy=[1, 2])

    def test_coords(self):
        p = make_pattern()
        assert list(p.x_coords()) == [0, 30, 100]
        assert list(p.y_coords()) == [0, 40, 100]

    def test_fill_ratio(self):
        p = make_pattern()
        filled = 30 * 40 + 30 * 60 + 70 * 60
        assert p.fill_ratio == pytest.approx(filled / 10000)

    def test_to_rects_merges_runs(self):
        p = make_pattern()
        rects = p.to_rects()
        # Row 0: one cell; row 1: merged two-cell run.
        assert len(rects) == 2
        widths = sorted(r.width for r in rects)
        assert widths == [30, 100]

    def test_polygons_connected(self):
        p = make_pattern()
        polys = p.polygons()
        assert len(polys) == 1
        assert polys[0].area == 30 * 40 + 30 * 60 + 70 * 60

    def test_copy_independent(self):
        p = make_pattern()
        q = p.copy()
        q.topology[0, 0] = 0
        assert p.topology[0, 0] == 1

    def test_equality(self):
        assert make_pattern() == make_pattern()
        other = make_pattern()
        other.dx = np.array([31, 69])
        assert make_pattern() != other


class TestPatternLibrary:
    def test_add_extend_len(self):
        lib = PatternLibrary()
        lib.add(make_pattern())
        lib.extend([make_pattern(), make_pattern()])
        assert len(lib) == 3
        assert lib[0] == make_pattern()

    def test_filter_style(self):
        lib = PatternLibrary()
        lib.add(make_pattern())
        other = make_pattern()
        other.style = "Layer-10003"
        lib.add(other)
        only = lib.filter_style("Layer-10003")
        assert len(only) == 1
        assert lib.styles() == ["Layer-10001", "Layer-10003"]

    def test_iteration(self):
        lib = PatternLibrary(patterns=[make_pattern()])
        assert [p.style for p in lib] == ["Layer-10001"]
