"""Unit tests for pattern complexity (cx, cy)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.squish import (
    SquishPattern,
    normalize_pattern,
    pattern_complexity,
    topology_complexity,
)


class TestTopologyComplexity:
    def test_uniform_is_zero(self):
        assert topology_complexity(np.zeros((8, 8), dtype=np.uint8)) == (0, 0)
        assert topology_complexity(np.ones((8, 8), dtype=np.uint8)) == (0, 0)

    def test_single_stripe(self):
        t = np.zeros((4, 4), dtype=np.uint8)
        t[:, 1] = 1
        assert topology_complexity(t) == (2, 0)

    def test_checker_columns(self):
        t = np.array([[0, 1, 0, 1]], dtype=np.uint8)
        assert topology_complexity(t) == (3, 0)

    def test_both_axes(self):
        t = np.array([[1, 0], [0, 1]], dtype=np.uint8)
        assert topology_complexity(t) == (1, 1)

    def test_pattern_delegates(self):
        p = SquishPattern(
            topology=np.array([[1, 0]], dtype=np.uint8),
            dx=np.array([10, 10]),
            dy=np.array([10]),
        )
        assert pattern_complexity(p) == (1, 0)


@settings(max_examples=30, deadline=None)
@given(
    arrays(np.uint8, (12, 12), elements=st.integers(0, 1)),
)
def test_complexity_invariant_under_duplication(t):
    """Duplicating rows/columns (what normalisation does) keeps complexity."""
    cx, cy = topology_complexity(t)
    dup_cols = np.repeat(t, 2, axis=1)
    dup_rows = np.repeat(t, 3, axis=0)
    assert topology_complexity(dup_cols) == (cx, cy)
    assert topology_complexity(dup_rows) == (cx, cy)


@settings(max_examples=30, deadline=None)
@given(
    arrays(np.uint8, (10, 10), elements=st.integers(0, 1)),
)
def test_complexity_bounds(t):
    cx, cy = topology_complexity(t)
    assert 0 <= cx <= t.shape[1] - 1
    assert 0 <= cy <= t.shape[0] - 1
