"""Unit tests for squish encoding and canonicalisation."""

import numpy as np

from repro.geometry import Rect
from repro.squish import SquishPattern, encode_rects, resquish, scan_lines


class TestScanLines:
    def test_includes_window_edges(self):
        xs, ys = scan_lines([], Rect(0, 0, 100, 100))
        assert list(xs) == [0, 100]
        assert list(ys) == [0, 100]

    def test_includes_rect_edges(self):
        xs, ys = scan_lines([Rect(10, 20, 30, 40)], Rect(0, 0, 100, 100))
        assert list(xs) == [0, 10, 30, 100]
        assert list(ys) == [0, 20, 40, 100]


class TestEncodeRects:
    def test_empty_window(self):
        p = encode_rects([], Rect(0, 0, 50, 50))
        assert p.shape == (1, 1)
        assert p.topology[0, 0] == 0
        assert p.physical_size == (50, 50)

    def test_single_rect(self):
        p = encode_rects([Rect(10, 10, 40, 30)], Rect(0, 0, 100, 100))
        assert p.physical_size == (100, 100)
        assert p.topology.sum() == 1
        # The filled cell is at grid position (row 1, col 1).
        assert p.topology[1, 1] == 1
        assert p.dx[1] == 30 and p.dy[1] == 20

    def test_round_trip_rect_coverage(self):
        rects = [Rect(0, 0, 50, 20), Rect(60, 40, 100, 100)]
        p = encode_rects(rects, Rect(0, 0, 100, 100))
        decoded = p.to_rects()
        assert sum(r.area for r in decoded) == sum(r.area for r in rects)

    def test_clip_outside_window(self):
        p = encode_rects([Rect(-50, -50, 20, 20)], Rect(0, 0, 100, 100))
        decoded = p.to_rects()
        assert decoded == [Rect(0, 0, 20, 20)]

    def test_overlapping_rects_single_coverage(self):
        rects = [Rect(0, 0, 60, 60), Rect(40, 0, 100, 60)]
        p = encode_rects(rects, Rect(0, 0, 100, 100))
        assert sum(r.area for r in p.to_rects()) == 100 * 60

    def test_style_tag_propagates(self):
        p = encode_rects([], Rect(0, 0, 10, 10), style="Layer-10003")
        assert p.style == "Layer-10003"


class TestResquish:
    def test_merges_duplicate_columns(self):
        p = SquishPattern(
            topology=np.array([[1, 1, 0]], dtype=np.uint8),
            dx=np.array([10, 20, 30]),
            dy=np.array([5]),
        )
        c = resquish(p)
        assert c.shape == (1, 2)
        assert list(c.dx) == [30, 30]

    def test_merges_duplicate_rows(self):
        p = SquishPattern(
            topology=np.array([[1], [1], [0]], dtype=np.uint8),
            dx=np.array([10]),
            dy=np.array([1, 2, 3]),
        )
        c = resquish(p)
        assert c.shape == (2, 1)
        assert list(c.dy) == [3, 3]

    def test_idempotent(self):
        p = SquishPattern(
            topology=np.array([[1, 0], [0, 1]], dtype=np.uint8),
            dx=np.array([10, 20]),
            dy=np.array([5, 5]),
        )
        once = resquish(p)
        twice = resquish(once)
        assert once == twice

    def test_preserves_physical_layout(self):
        p = SquishPattern(
            topology=np.array([[1, 1, 0, 0]], dtype=np.uint8),
            dx=np.array([10, 10, 10, 10]),
            dy=np.array([7]),
        )
        c = resquish(p)
        assert sorted(r.area for r in c.to_rects()) == sorted(
            r.area for r in p.to_rects()
        )
        assert c.physical_size == p.physical_size
