"""Unit + property tests for topology normalisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect
from repro.squish import (
    NormalizationError,
    SquishPattern,
    encode_rects,
    normalize_pattern,
    resquish,
    split_axis,
    uniform_deltas,
)


class TestSplitAxis:
    def test_splits_largest_delta(self):
        t = np.array([[1, 0]], dtype=np.uint8)
        t2, d2 = split_axis(t, np.array([10, 90]), 3, axis=1)
        assert t2.shape == (1, 3)
        assert list(d2) == [10, 45, 45]
        # Duplicated column carries the same topology value.
        assert t2[0, 1] == t2[0, 2] == 0

    def test_rows(self):
        t = np.array([[1], [0]], dtype=np.uint8)
        t2, d2 = split_axis(t, np.array([100, 10]), 3, axis=0)
        assert t2.shape == (3, 1)
        assert sum(d2) == 110

    def test_cannot_shrink(self):
        with pytest.raises(NormalizationError):
            split_axis(np.ones((1, 4), dtype=np.uint8), np.full(4, 10), 2, axis=1)

    def test_indivisible_deltas(self):
        with pytest.raises(NormalizationError):
            split_axis(np.ones((1, 2), dtype=np.uint8), np.array([1, 1]), 4, axis=1)


class TestNormalizePattern:
    def test_target_shape_and_size_preserved(self):
        p = encode_rects([Rect(100, 100, 400, 300)], Rect(0, 0, 1000, 1000))
        n = normalize_pattern(p, 16)
        assert n.shape == (16, 16)
        assert n.physical_size == (1000, 1000)

    def test_layout_unchanged(self):
        p = encode_rects([Rect(100, 100, 400, 300)], Rect(0, 0, 1000, 1000))
        n = normalize_pattern(p, 16)
        assert sum(r.area for r in n.to_rects()) == 300 * 200

    def test_canonical_form_unchanged_by_normalisation(self):
        p = encode_rects(
            [Rect(0, 0, 200, 100), Rect(400, 400, 600, 600)],
            Rect(0, 0, 1000, 1000),
        )
        n = normalize_pattern(p, 32)
        assert resquish(n) == resquish(p)

    def test_rejects_oversized(self):
        rects = [Rect(i * 20, 0, i * 20 + 10, 10) for i in range(10)]
        p = encode_rects(rects, Rect(0, 0, 200, 200))
        with pytest.raises(NormalizationError):
            normalize_pattern(p, 4)


class TestUniformDeltas:
    def test_exact_division(self):
        assert list(uniform_deltas(100, 4)) == [25, 25, 25, 25]

    def test_remainder_spread(self):
        d = uniform_deltas(103, 4)
        assert sum(d) == 103
        assert max(d) - min(d) <= 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            uniform_deltas(3, 4)
        with pytest.raises(ValueError):
            uniform_deltas(10, 0)


@settings(max_examples=30, deadline=None)
@given(
    size_nm=st.integers(min_value=64, max_value=2000),
    cells=st.integers(min_value=1, max_value=64),
)
def test_uniform_deltas_properties(size_nm, cells):
    if size_nm < cells:
        return
    d = uniform_deltas(size_nm, cells)
    assert d.sum() == size_nm
    assert (d > 0).all()
    assert max(d) - min(d) <= 1


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_normalize_preserves_decoded_area(data):
    n_rects = data.draw(st.integers(1, 4))
    rects = []
    for _ in range(n_rects):
        x0 = data.draw(st.integers(0, 80)) * 10
        y0 = data.draw(st.integers(0, 80)) * 10
        w = data.draw(st.integers(1, 15)) * 10
        h = data.draw(st.integers(1, 15)) * 10
        rects.append(Rect(x0, y0, x0 + w, y0 + h))
    p = encode_rects(rects, Rect(0, 0, 1000, 1000))
    if max(p.shape) > 32:
        return
    n = normalize_pattern(p, 32)
    assert n.shape == (32, 32)
    assert sum(r.area for r in n.to_rects()) == sum(
        r.area for r in p.to_rects()
    )
