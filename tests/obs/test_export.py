"""Exporter tests: text exposition rendering + parsing, snapshot files.

``parse_exposition`` is the same parser the CI obs-smoke job runs against
a real serve snapshot, so its strictness (cumulative buckets, ``+Inf``
presence, well-formed samples) is itself under test here.
"""

import json
import math
import time

import pytest

from repro.obs import (
    ExpositionError,
    MetricsRegistry,
    SnapshotWriter,
    exposition_path,
    load_snapshot,
    parse_exposition,
    render_exposition,
    write_snapshot,
)


def _populated_registry():
    registry = MetricsRegistry()
    registry.counter(
        "repro_jobs_total", "Jobs by policy", labels=("policy",)
    ).inc(3, policy="greedy")
    registry.gauge("repro_queue_depth", "Queued jobs").set(2)
    hist = registry.histogram(
        "repro_wait_seconds", "Queue wait", buckets=(0.1, 1.0)
    )
    for value in (0.05, 0.5, 5.0):
        hist.observe(value)
    return registry


class TestExposition:
    def test_render_roundtrips_through_parse(self):
        text = _populated_registry().to_prometheus()
        families = parse_exposition(text)
        assert families["repro_jobs_total"]["type"] == "counter"
        assert families["repro_jobs_total"]["help"] == "Jobs by policy"
        assert families["repro_jobs_total"]["samples"] == [
            ("repro_jobs_total", {"policy": "greedy"}, 3.0)
        ]
        assert families["repro_queue_depth"]["samples"][0][2] == 2.0
        hist = families["repro_wait_seconds"]
        assert hist["type"] == "histogram"
        samples = {
            (name, labels.get("le")): value
            for name, labels, value in hist["samples"]
        }
        assert samples[("repro_wait_seconds_bucket", "0.1")] == 1.0
        assert samples[("repro_wait_seconds_bucket", "1")] == 2.0
        assert samples[("repro_wait_seconds_bucket", "+Inf")] == 3.0
        assert samples[("repro_wait_seconds_count", None)] == 3.0
        assert samples[("repro_wait_seconds_sum", None)] == pytest.approx(5.55)

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", labels=("tag",)).inc(
            tag='quo"te\nnewline\\slash'
        )
        families = parse_exposition(registry.to_prometheus())
        _, labels, value = families["repro_x_total"]["samples"][0]
        assert labels["tag"] == 'quo"te\nnewline\\slash'
        assert value == 1.0

    def test_parse_rejects_malformed_samples(self):
        with pytest.raises(ExpositionError, match="malformed sample"):
            parse_exposition("}{bad line\n")
        with pytest.raises(ExpositionError, match="non-numeric"):
            parse_exposition("repro_x_total NaNope\n")
        with pytest.raises(ExpositionError, match="malformed TYPE"):
            parse_exposition("# TYPE repro_x\n")
        with pytest.raises(ExpositionError, match="unknown metric type"):
            parse_exposition("# TYPE repro_x flavor\n")

    def test_parse_rejects_non_cumulative_buckets(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="0.1"} 5\n'
            'repro_h_bucket{le="1"} 3\n'
            'repro_h_bucket{le="+Inf"} 5\n'
        )
        with pytest.raises(ExpositionError, match="not cumulative"):
            parse_exposition(text)

    def test_parse_rejects_missing_inf_bucket(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="0.1"} 1\n'
        )
        with pytest.raises(ExpositionError, match=r"missing \+Inf"):
            parse_exposition(text)

    def test_untyped_and_comment_lines_tolerated(self):
        families = parse_exposition(
            "# just a comment\nsome_metric 4\nvalue_inf +Inf\n"
        )
        assert families["some_metric"]["type"] == "untyped"
        assert families["value_inf"]["samples"][0][2] == math.inf


class TestSnapshotFiles:
    def test_write_and_load_roundtrip(self, tmp_path):
        snapshot = _populated_registry().snapshot()
        path = write_snapshot(snapshot, tmp_path / "metrics.json")
        assert load_snapshot(path) == json.loads(json.dumps(snapshot))
        # No tmp litter left behind by the atomic write.
        assert list(tmp_path.iterdir()) == [path]

    def test_exposition_path_sibling(self, tmp_path):
        assert exposition_path(tmp_path / "m.json").name == "m.json.prom"

    def test_snapshot_writer_dumps_both_formats(self, tmp_path):
        registry = _populated_registry()
        writer = SnapshotWriter(registry, tmp_path / "m.json", interval=60.0)
        writer.write_once()
        assert writer.writes == 1
        assert load_snapshot(tmp_path / "m.json")["version"] == 1
        families = parse_exposition((tmp_path / "m.json.prom").read_text())
        assert "repro_queue_depth" in families

    def test_snapshot_writer_background_ticks_and_final_write(self, tmp_path):
        registry = _populated_registry()
        writer = SnapshotWriter(registry, tmp_path / "m.json", interval=0.02)
        with writer:
            deadline = time.time() + 5.0
            while writer.writes < 2 and time.time() < deadline:
                time.sleep(0.01)
        assert writer.writes >= 3  # >= 2 ticks + the final write on stop
        assert (tmp_path / "m.json").exists()
        assert (tmp_path / "m.json.prom").exists()

    def test_snapshot_writer_validates_interval(self, tmp_path):
        with pytest.raises(ValueError, match="interval"):
            SnapshotWriter(MetricsRegistry(), tmp_path / "m.json", interval=0)
