"""Tracer tests: nesting, cross-thread record, trees, JSONL export."""

import json
import threading
import time

from repro.obs import NULL_TRACER, Tracer


class TestSpans:
    def test_trace_and_nested_spans(self):
        tracer = Tracer()
        with tracer.trace("request", request_id="req-1", source="cli"):
            with tracer.span("sample", count=4):
                pass
            with tracer.span("legalize"):
                pass
        spans = {span.name: span for span in tracer.spans("req-1")}
        assert set(spans) == {"request", "sample", "legalize"}
        root = spans["request"]
        assert root.parent_id is None
        assert root.attrs == {"source": "cli"}
        assert spans["sample"].parent_id == root.span_id
        assert spans["sample"].attrs == {"count": 4}
        assert spans["legalize"].parent_id == root.span_id
        # The root closes last: it covers its children.
        assert root.end >= spans["legalize"].end
        assert root.duration >= 0.0

    def test_span_without_root_starts_fresh_trace(self):
        tracer = Tracer()
        with tracer.span("standalone"):
            pass
        (span,) = tracer.spans()
        assert span.parent_id is None
        assert tracer.trace_ids() == [span.trace_id]

    def test_record_attaches_to_current_context(self):
        tracer = Tracer()
        with tracer.trace("request", request_id=9) as root:
            tracer.record("queue_wait", 1.0, 1.5, batch_samples=3)
        (recorded,) = [s for s in tracer.spans(9) if s.name == "queue_wait"]
        assert recorded.parent_id == root.span_id
        assert recorded.start == 1.0
        assert recorded.duration == 0.5
        assert recorded.attrs == {"batch_samples": 3}

    def test_record_cross_thread_with_explicit_ids(self):
        """A worker thread attaches measured work to the client's trace."""
        tracer = Tracer()
        with tracer.trace("request", request_id="r") as root:
            ids = (root.trace_id, root.span_id)

            def worker():
                tracer.record(
                    "execute", 2.0, 3.0, trace_id=ids[0], parent_id=ids[1]
                )

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        tree = tracer.tree("r")
        assert [child["name"] for child in tree["children"]] == ["execute"]

    def test_stack_recovers_from_leaked_inner_span(self):
        tracer = Tracer()
        with tracer.trace("outer", request_id=1):
            inner = tracer.span("inner")
            inner.__enter__()  # never exited — the outer pop must recover
        assert tracer.current() is None
        with tracer.span("after"):
            pass
        names = [span.name for span in tracer.spans()]
        assert "after" in names


class TestTreeAndExport:
    def test_tree_nests_and_sorts_children(self):
        tracer = Tracer()
        with tracer.trace("request", request_id="t"):
            with tracer.span("first"):
                time.sleep(0.001)
            with tracer.span("second"):
                pass
        tree = tracer.tree("t")
        assert tree["name"] == "request"
        assert [c["name"] for c in tree["children"]] == ["first", "second"]
        assert tracer.tree("missing") is None

    def test_tree_synthesizes_root_for_orphan_spans(self):
        tracer = Tracer()
        tracer.record("a", 1.0, 2.0, trace_id="x", parent_id=999)
        tracer.record("b", 2.0, 4.0, trace_id="x", parent_id=999)
        tree = tracer.tree("x")
        assert tree["name"] == "trace"
        assert tree["duration"] == 3.0
        assert len(tree["children"]) == 2

    def test_bounded_buffer_evicts_oldest(self):
        tracer = Tracer(max_spans=3)
        for i in range(5):
            tracer.record(f"s{i}", 0.0, 1.0, trace_id=i)
        assert [span.name for span in tracer.spans()] == ["s2", "s3", "s4"]

    def test_export_jsonl(self, tmp_path):
        tracer = Tracer()
        with tracer.trace("request", request_id="req-7"):
            with tracer.span("sample"):
                pass
        with tracer.trace("request", request_id="req-8"):
            pass
        path = tracer.export_jsonl(tmp_path / "traces.jsonl")
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(lines) == 3
        assert {line["trace_id"] for line in lines} == {"req-7", "req-8"}
        only = tracer.export_jsonl(tmp_path / "one.jsonl", trace_id="req-7")
        lines = [json.loads(l) for l in only.read_text().splitlines()]
        assert {line["trace_id"] for line in lines} == {"req-7"}

    def test_clear(self):
        tracer = Tracer()
        tracer.record("a", 0.0, 1.0)
        tracer.clear()
        assert tracer.spans() == []


class TestDisabled:
    def test_null_tracer_is_inert(self):
        with NULL_TRACER.trace("request", request_id=1) as span:
            assert span is None
            with NULL_TRACER.span("child") as child:
                assert child is None
        assert NULL_TRACER.record("x", 0.0, 1.0) is None
        assert NULL_TRACER.spans() == []

    def test_disabled_tracer_export_writes_empty_file(self, tmp_path):
        tracer = Tracer(enabled=False)
        path = tracer.export_jsonl(tmp_path / "traces.jsonl")
        assert path.read_text() == ""
