"""Unit tests for the metrics primitives.

The load-bearing piece is the 8-thread hammer: many writers incrementing
one counter, one gauge and one histogram concurrently while a reader
takes snapshots mid-flight — the final totals must be exact (no lost
updates) and successive counter snapshots monotonic.
"""

import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_METRICS,
    MetricError,
    MetricsRegistry,
    default_metrics,
    set_default_metrics,
    validate_buckets,
)


class TestInstruments:
    def test_counter_counts_and_rejects_negative(self):
        counter = MetricsRegistry().counter("repro_test_total", "help text")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5
        with pytest.raises(MetricError, match="only go up"):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("repro_test_depth")
        gauge.set(4)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 3.0

    def test_labels_are_independent_series(self):
        counter = MetricsRegistry().counter(
            "repro_jobs_total", labels=("policy",)
        )
        counter.inc(policy="greedy")
        counter.inc(2, policy="fair_share")
        assert counter.value(policy="greedy") == 1.0
        assert counter.value(policy="fair_share") == 2.0
        with pytest.raises(MetricError, match="takes labels"):
            counter.inc(nope="x")
        with pytest.raises(MetricError, match="takes labels"):
            counter.value()

    def test_histogram_counts_sum_and_percentiles(self):
        hist = MetricsRegistry().histogram(
            "repro_latency_seconds", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        assert hist.count() == 5
        assert hist.total() == pytest.approx(6.1)
        # Ranks 1-2 land in (0, 0.1], 3-4 in (0.1, 1.0], 5 in (1.0, 10.0].
        assert 0 < hist.percentile(10) <= 0.1
        assert 0.1 < hist.percentile(50) <= 1.0
        assert 1.0 < hist.percentile(99) <= 10.0
        ps = hist.percentiles()
        assert set(ps) == {"p50", "p95", "p99"}

    def test_histogram_overflow_clamps_to_last_finite_bound(self):
        hist = MetricsRegistry().histogram("repro_h", buckets=(1.0, 2.0))
        hist.observe(100.0)
        assert hist.percentile(99) == 2.0
        snap = hist.snapshot()["series"][0]
        assert snap["buckets"][-1] == ["+Inf", 1]
        assert snap["buckets"][-2] == [2.0, 0]

    def test_empty_histogram_reads_zero(self):
        hist = MetricsRegistry().histogram("repro_h")
        assert hist.count() == 0
        assert hist.percentile(50) == 0.0

    def test_bucket_validation(self):
        for bad in ((), (0.0, 1.0), (1.0, 1.0), (2.0, 1.0), (float("inf"),)):
            with pytest.raises(MetricError):
                validate_buckets(bad)
        assert validate_buckets((1, 2.5)) == (1.0, 2.5)


class TestRegistry:
    def test_declaration_is_idempotent_but_kind_checked(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_x_total")
        assert registry.counter("repro_x_total") is counter
        with pytest.raises(MetricError, match="already declared"):
            registry.gauge("repro_x_total")
        with pytest.raises(MetricError, match="labels"):
            registry.counter("repro_x_total", labels=("policy",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError, match="invalid metric name"):
            registry.counter("0bad")
        with pytest.raises(MetricError, match="invalid label name"):
            registry.counter("repro_ok", labels=("le-gal",))

    def test_latency_buckets_seam(self):
        registry = MetricsRegistry(latency_buckets=(0.5, 5.0))
        assert registry.histogram("repro_h").bounds == (0.5, 5.0)
        assert registry.histogram(
            "repro_h2", buckets=(1.0,)
        ).bounds == (1.0,)
        default = MetricsRegistry().histogram("repro_h")
        assert default.bounds == DEFAULT_LATENCY_BUCKETS

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total", "A total").inc(3)
        registry.histogram("repro_b_seconds", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["version"] == 1
        by_name = {m["name"]: m for m in snapshot["metrics"]}
        assert by_name["repro_a_total"]["type"] == "counter"
        assert by_name["repro_a_total"]["series"] == [
            {"labels": {}, "value": 3.0}
        ]
        series = by_name["repro_b_seconds"]["series"][0]
        assert series["count"] == 1
        assert series["buckets"] == [[1.0, 1], ["+Inf", 1]]
        assert "p95" in series

    def test_disabled_registry_is_inert(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("repro_x_total")
        counter.inc(5)
        assert counter.value() == 0.0
        assert registry.get("repro_x_total") is None
        assert registry.snapshot()["metrics"] == []
        # The shared null registry behaves identically and never records.
        NULL_METRICS.histogram("repro_y").observe(1.0)
        assert NULL_METRICS.names() == []

    def test_default_registry_swap(self):
        replacement = MetricsRegistry()
        previous = set_default_metrics(replacement)
        try:
            assert default_metrics() is replacement
        finally:
            set_default_metrics(previous)


class TestConcurrency:
    def test_eight_thread_hammer_exact_totals(self):
        """8 writers, 2000 increments each: totals exact, snapshots sane."""
        registry = MetricsRegistry()
        counter = registry.counter("repro_hits_total", labels=("worker",))
        gauge = registry.gauge("repro_depth")
        hist = registry.histogram("repro_wait_seconds", buckets=(0.5, 1.0))
        n_threads, n_iter = 8, 2000
        start = threading.Barrier(n_threads)

        def hammer(worker):
            start.wait()
            for i in range(n_iter):
                counter.inc(worker=str(worker))
                gauge.inc()
                hist.observe((i % 3) * 0.4)  # 0.0 / 0.4 / 0.8

        threads = [
            threading.Thread(target=hammer, args=(w,))
            for w in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        total = n_threads * n_iter
        for worker in range(n_threads):
            assert counter.value(worker=str(worker)) == n_iter
        assert gauge.value() == total
        assert hist.count() == total
        expected = n_threads * sum((i % 3) * 0.4 for i in range(n_iter))
        assert hist.total() == pytest.approx(expected)

    def test_snapshots_under_load_are_monotonic(self):
        """A reader snapshotting mid-hammer never sees a counter go back."""
        registry = MetricsRegistry()
        counter = registry.counter("repro_ops_total")
        hist = registry.histogram("repro_h", buckets=(1.0,))
        n_threads, n_iter = 8, 1500
        done = threading.Event()

        def hammer():
            for _ in range(n_iter):
                counter.inc()
                hist.observe(0.5)

        threads = [
            threading.Thread(target=hammer) for _ in range(n_threads)
        ]
        observed = []

        def reader():
            while not done.is_set():
                snapshot = registry.snapshot()
                by_name = {m["name"]: m for m in snapshot["metrics"]}
                # Series materialize on first write — an early snapshot may
                # legitimately predate them.
                ops = by_name["repro_ops_total"]["series"]
                h = by_name["repro_h"]["series"]
                observed.append(
                    (
                        ops[0]["value"] if ops else 0.0,
                        h[0]["count"] if h else 0,
                    )
                )

        watcher = threading.Thread(target=reader)
        watcher.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        done.set()
        watcher.join()
        # One deterministic final read after every writer finished.
        observed.append((counter.value(), hist.count()))

        total = n_threads * n_iter
        assert counter.value() == total
        counts = [c for c, _ in observed]
        hist_counts = [h for _, h in observed]
        assert counts == sorted(counts)
        assert hist_counts == sorted(hist_counts)
        assert observed[-1] == (total, total)
