"""Unit tests for the numpy NN substrate, including gradient checks."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    avg_pool2,
    avg_pool2_backward,
    bce_with_logits,
    conv2d_backward,
    conv2d_forward,
    im2col,
    relu,
    relu_backward,
    sigmoid,
    upsample2,
    upsample2_backward,
)


class TestConv2d:
    def test_identity_kernel(self):
        x = np.random.default_rng(0).random((1, 1, 5, 5))
        w = np.zeros((1, 1, 3, 3))
        w[0, 0, 1, 1] = 1.0
        out, _ = conv2d_forward(x, w, np.zeros(1))
        assert np.allclose(out, x)

    def test_shapes(self):
        x = np.zeros((2, 3, 8, 8))
        w = np.zeros((5, 3, 3, 3))
        out, _ = conv2d_forward(x, w, np.zeros(5))
        assert out.shape == (2, 5, 8, 8)

    def test_bias(self):
        x = np.zeros((1, 1, 4, 4))
        w = np.zeros((2, 1, 3, 3))
        out, _ = conv2d_forward(x, w, np.array([1.5, -2.0]))
        assert np.allclose(out[0, 0], 1.5)
        assert np.allclose(out[0, 1], -2.0)

    def test_gradient_check(self):
        rng = np.random.default_rng(42)
        x = rng.random((2, 2, 5, 5))
        w = rng.random((3, 2, 3, 3)) * 0.1
        b = rng.random(3) * 0.1
        out, cache = conv2d_forward(x, w, b)
        dout = rng.random(out.shape)
        dx, dw, db = conv2d_backward(dout, cache)

        eps = 1e-6
        # Spot-check a few coordinates of each gradient numerically.
        for idx in [(0, 0, 2, 2), (1, 1, 0, 4)]:
            xp = x.copy(); xp[idx] += eps
            xm = x.copy(); xm[idx] -= eps
            num = ((conv2d_forward(xp, w, b)[0] - conv2d_forward(xm, w, b)[0]) * dout).sum() / (2 * eps)
            assert num == pytest.approx(dx[idx], rel=1e-4, abs=1e-6)
        for idx in [(0, 0, 0, 0), (2, 1, 2, 1)]:
            wp = w.copy(); wp[idx] += eps
            wm = w.copy(); wm[idx] -= eps
            num = ((conv2d_forward(x, wp, b)[0] - conv2d_forward(x, wm, b)[0]) * dout).sum() / (2 * eps)
            assert num == pytest.approx(dw[idx], rel=1e-4, abs=1e-6)
        bp = b.copy(); bp[1] += eps
        bm = b.copy(); bm[1] -= eps
        num = ((conv2d_forward(x, w, bp)[0] - conv2d_forward(x, w, bm)[0]) * dout).sum() / (2 * eps)
        assert num == pytest.approx(db[1], rel=1e-4, abs=1e-6)


class TestPoolingUpsampling:
    def test_avg_pool(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        pooled = avg_pool2(x)
        assert pooled.shape == (1, 1, 2, 2)
        assert pooled[0, 0, 0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)

    def test_avg_pool_odd_raises(self):
        with pytest.raises(ValueError):
            avg_pool2(np.zeros((1, 1, 3, 4)))

    def test_upsample(self):
        x = np.array([[[[1.0, 2.0]]]])
        up = upsample2(x)
        assert up.shape == (1, 1, 2, 4)
        assert np.allclose(up[0, 0], [[1, 1, 2, 2], [1, 1, 2, 2]])

    def test_pool_backward_adjoint(self):
        """<pool(x), y> == <x, pool_backward(y)> (adjoint property)."""
        rng = np.random.default_rng(0)
        x = rng.random((1, 2, 4, 4))
        y = rng.random((1, 2, 2, 2))
        lhs = (avg_pool2(x) * y).sum()
        rhs = (x * avg_pool2_backward(y)).sum()
        assert lhs == pytest.approx(rhs)

    def test_upsample_backward_adjoint(self):
        rng = np.random.default_rng(1)
        x = rng.random((1, 2, 2, 2))
        y = rng.random((1, 2, 4, 4))
        lhs = (upsample2(x) * y).sum()
        rhs = (x * upsample2_backward(y)).sum()
        assert lhs == pytest.approx(rhs)


class TestActivations:
    def test_relu(self):
        x = np.array([-1.0, 0.0, 2.0])
        assert list(relu(x)) == [0.0, 0.0, 2.0]
        assert list(relu_backward(np.ones(3), x)) == [0.0, 0.0, 1.0]

    def test_sigmoid_stable(self):
        x = np.array([-1000.0, 0.0, 1000.0])
        s = sigmoid(x)
        assert np.isfinite(s).all()
        assert s[0] == pytest.approx(0.0, abs=1e-12)
        assert s[1] == pytest.approx(0.5)
        assert s[2] == pytest.approx(1.0)


class TestBCE:
    def test_loss_and_gradient(self):
        logits = np.array([0.0, 10.0, -10.0])
        targets = np.array([0.0, 1.0, 0.0])
        loss, grad = bce_with_logits(logits, targets)
        assert loss == pytest.approx(np.log(2) / 3, rel=1e-3)
        # Gradient check.
        eps = 1e-6
        for i in range(3):
            lp = logits.copy(); lp[i] += eps
            lm = logits.copy(); lm[i] -= eps
            num = (bce_with_logits(lp, targets)[0] - bce_with_logits(lm, targets)[0]) / (2 * eps)
            assert num == pytest.approx(grad[i], rel=1e-4, abs=1e-8)


class TestAdam:
    def test_minimises_quadratic(self):
        params = {"w": np.array([5.0, -3.0])}
        opt = Adam(params, lr=0.1, grad_clip=None)
        for _ in range(300):
            opt.step({"w": 2 * params["w"]})
        assert np.allclose(params["w"], 0.0, atol=1e-2)

    def test_grad_clip(self):
        params = {"w": np.array([0.0])}
        opt = Adam(params, lr=0.1, grad_clip=1.0)
        opt.step({"w": np.array([1e9])})
        assert abs(params["w"][0]) < 1.0
