"""Cross-module property tests: the contracts the system is built on."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.drc import DesignRules, check_pattern
from repro.geometry import diagonal_touch_pairs
from repro.legalize import legalize
from repro.metrics import legalize_sequential, physical_size_for
from repro.ops import extend, modify, region_mask
from repro.drc.violations import GridRegion

RULES = DesignRules(min_space=30, min_width=40, min_area=2000, name="prop")


def random_topology(rng, shape=(24, 24), fill=0.3, blocks=4):
    """Blocky random topology (not necessarily legal)."""
    t = np.zeros(shape, dtype=np.uint8)
    for _ in range(blocks):
        r = int(rng.integers(0, shape[0] - 4))
        c = int(rng.integers(0, shape[1] - 4))
        h = int(rng.integers(2, 6))
        w = int(rng.integers(2, 6))
        t[r : r + h, c : c + w] = 1
    return t


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_legalizer_output_is_always_drc_clean(seed):
    """f_R(F, T) either fails or returns a DRC-clean pattern — never a
    'successful' pattern with violations."""
    rng = np.random.default_rng(seed)
    topology = random_topology(rng)
    result = legalize(topology, (3000, 3000), RULES)
    if result.ok:
        assert check_pattern(result.pattern, RULES).is_clean
        assert np.array_equal(result.pattern.topology, topology)
    else:
        assert result.failed_region is not None
        assert any(line.startswith("FAIL") for line in result.log)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_corner_touch_always_unfixable(seed):
    """Topologies with corner touches must always fail legalization."""
    rng = np.random.default_rng(seed)
    topology = random_topology(rng)
    r = int(rng.integers(1, topology.shape[0] - 3))
    c = int(rng.integers(1, topology.shape[1] - 3))
    topology[r : r + 2, c : c + 2] = 0
    topology[r, c] = 1
    topology[r + 1, c + 1] = 1
    # Only a genuine corner touch (no orthogonal connection) must fail.
    if diagonal_touch_pairs(topology):
        result = legalize(topology, (10**6, 10**6), RULES)
        assert not result.ok


class TestSamplePipelineInvariants:
    def test_generated_patterns_keep_topology(self, small_model):
        """Legalization assigns geometry but never edits the topology."""
        rng = np.random.default_rng(0)
        samples = small_model.sample(3, 0, rng)
        result = legalize_sequential(list(samples), "Layer-10001")
        for pattern in result.legal:
            matches = [
                np.array_equal(pattern.topology, s) for s in samples
            ]
            assert any(matches)

    def test_extension_contains_seed_exactly(self, small_model):
        rng = np.random.default_rng(1)
        seed = small_model.sample(1, 0, rng)[0]
        result = extend(
            small_model, (128, 128), 0, rng, method="out", seed_topology=seed
        )
        assert np.array_equal(result.topology[:64, :64], seed)

    def test_modification_idempotent_outside_mask(self, small_model):
        rng = np.random.default_rng(2)
        topo = small_model.sample(1, 1, rng)[0]
        mask = region_mask(topo.shape, GridRegion(20, 20, 40, 40))
        out1 = modify(small_model, topo, mask, 1, np.random.default_rng(3))
        out2 = modify(small_model, out1, mask, 1, np.random.default_rng(4))
        # Cells outside the regenerated region never drift.
        assert np.array_equal(out1[mask == 1], topo[mask == 1])
        assert np.array_equal(out2[mask == 1], topo[mask == 1])

    def test_physical_scaling_consistency(self):
        """Larger topologies get proportionally larger physical budgets."""
        w128, h128 = physical_size_for((128, 128))
        w256, h256 = physical_size_for((256, 256))
        assert (w256, h256) == (2 * w128, 2 * h128)


class TestSelectionTool:
    def test_selection_guarantees_legality(self, small_model):
        from repro.agent import AgentTools, Workspace
        from repro.drc import rules_for_style

        tools = AgentTools(small_model, Workspace(), base_seed=2)
        result = tools.call(
            "Topology_Selection",
            seed=1,
            style="Layer-10001",
            count=2,
        )
        assert result.ok
        assert result.data["kept"] == 2
        rules = rules_for_style("Layer-10001")
        for pattern in tools.workspace.library:
            assert check_pattern(pattern, rules).is_clean

    def test_selection_budget_exhaustion(self, small_model):
        from repro.agent import AgentTools, Workspace

        tools = AgentTools(small_model, Workspace(), base_seed=2)
        # An absurd physical budget makes every attempt fail.
        result = tools.call(
            "Topology_Selection",
            seed=1,
            style="Layer-10001",
            count=1,
            physical_size=(32, 32),
            max_attempts=3,
        )
        assert not result.ok
        assert result.data["attempts"] == 3
