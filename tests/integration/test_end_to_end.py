"""Integration tests: the full ChatPattern stack on small settings."""

import numpy as np
import pytest

from repro import ChatPattern
from repro.agent import ScriptedLLM, SimulatedLLM
from repro.core import ChatResult
from repro.data import DatasetConfig
from repro.drc import check_pattern, rules_for_style
from repro.diffusion import ConditionalDiffusionModel


@pytest.fixture(scope="module")
def chat():
    return ChatPattern.pretrained(
        train_count=24,
        window=64,
        dataset_config=DatasetConfig(tile_nm=1024, topology_size=64, seed=3),
        max_retries=1,
    )


class TestPretrained:
    def test_model_is_fitted(self, chat):
        assert chat.model.fitted
        assert chat.model.window == 64

    def test_unfitted_model_rejected(self):
        with pytest.raises(ValueError):
            ChatPattern(model=ConditionalDiffusionModel(window=64))

    def test_window_follows_dataset_config(self):
        """A dataset_config with a topology_size different from ``window``
        must win: the model generates the tiles it was trained on."""
        chat = ChatPattern.pretrained(
            train_count=4,
            dataset_config=DatasetConfig(tile_nm=1024, topology_size=64, seed=5),
        )
        assert chat.model.window == 64

    def test_pretrained_reuses_fitted_model(self):
        kwargs = dict(
            train_count=4,
            dataset_config=DatasetConfig(tile_nm=1024, topology_size=64, seed=5),
        )
        first = ChatPattern.pretrained(**kwargs)
        second = ChatPattern.pretrained(**kwargs)
        # same recipe -> the shared registry serves one fitted back-end
        assert second.model is first.model


class TestHandleRequest:
    def test_fixed_size_request(self, chat):
        result = chat.handle_request(
            "Generate 4 layout patterns with 64*64 topology, physical size "
            "1024nm * 1024nm, in style of 'Layer-10001'."
        )
        assert isinstance(result, ChatResult)
        assert result.plan.total_count == 4
        assert result.produced + result.dropped == 4
        assert len(result.library) == result.produced
        rules = rules_for_style("Layer-10001")
        for pattern in result.library:
            assert check_pattern(pattern, rules).is_clean
            assert pattern.physical_size == (1024, 1024)
        assert "sub-task" in result.summary()

    def test_multi_style_request(self, chat):
        result = chat.handle_request(
            "Generate 4 patterns, 64*64 topology, physical size 1024nm * "
            "1024nm, split between Layer-10001 and Layer-10003."
        )
        assert len(result.plan.requirements) == 2
        styles = {r.style for r in result.plan.requirements}
        assert styles == {"Layer-10001", "Layer-10003"}

    def test_free_size_request(self, chat):
        result = chat.handle_request(
            "Generate 2 patterns with 128*128 topology, physical size "
            "2048nm * 2048nm, in style of 'Layer-10003'."
        )
        req = result.plan.requirements[0]
        assert req.extension_method in ("Out", "In")
        for pattern in result.library:
            assert pattern.shape == (128, 128)

    def test_history_travels_with_result(self, chat):
        result = chat.handle_request(
            "Generate 2 patterns, 64*64, 1024nm * 1024nm, Layer-10001."
        )
        assert result.history.counts().get("generated", 0) >= 2


class TestBackendSwappability:
    def test_scripted_backend_drives_planning(self, chat):
        reply = (
            "# Requirement - subtask 1\n"
            "## Basic Part: Topology Size: [64, 64], Physical Size: "
            "[1024, 1024] nm, Style: Layer-10001, Count: 2,\n"
            "## Advanced Part: Extension Method: None (Default: Out), "
            "Drop Allowed: True (Default: True), Time Limitation: None "
            "(Default: None)."
        )
        scripted = ChatPattern(
            model=chat.model,
            backend=ScriptedLLM([reply]),
            max_retries=0,
        )
        result = scripted.handle_request("anything at all")
        assert result.plan.total_count == 2
