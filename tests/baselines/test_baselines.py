"""Unit tests for the Table-1 baseline generators."""

import numpy as np
import pytest

from repro.baselines import (
    CAEGenerator,
    DiffPattern,
    LayouTransformer,
    LegalGAN,
    VCAEGenerator,
)
from repro.drc import DesignRules


@pytest.fixture(scope="module")
def stripe_data():
    rng = np.random.default_rng(0)
    base = np.zeros((32, 32), dtype=np.uint8)
    base[:, 2::8] = 1
    base[:, 3::8] = 1
    return np.stack([np.roll(base, int(rng.integers(0, 8)), axis=1) for _ in range(24)])


class TestCAE:
    def test_fit_sample_shapes(self, stripe_data):
        gen = CAEGenerator(latent_dim=4)
        info = gen.fit(stripe_data, np.random.default_rng(1))
        assert 0 < info["explained_variance"] <= 1.0
        s = gen.sample(5, np.random.default_rng(2))
        assert s.shape == (5, 32, 32)
        assert set(np.unique(s)) <= {0, 1}

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            CAEGenerator().sample(1, np.random.default_rng(0))

    def test_vcae_larger_latent(self, stripe_data):
        cae = CAEGenerator()
        vcae = VCAEGenerator()
        assert vcae.latent_dim > cae.latent_dim
        info = vcae.fit(stripe_data, np.random.default_rng(3))
        assert info["latent_dim"] <= vcae.latent_dim

    def test_vcae_reconstructs_better(self, stripe_data):
        """More latent capacity -> strictly better training reconstruction."""
        rng = np.random.default_rng(4)
        cae = CAEGenerator(latent_dim=2)
        vcae = VCAEGenerator(latent_dim=20)
        info_c = cae.fit(stripe_data, rng)
        info_v = vcae.fit(stripe_data, rng)
        assert info_v["explained_variance"] >= info_c["explained_variance"]


class TestLegalGAN:
    RULES = DesignRules(min_space=30, min_width=40, min_area=2000)

    def test_erases_single_cell_specks(self):
        gan = LegalGAN(self.RULES, cell_nm=16.0)  # min width 40/16 -> 3 cells
        t = np.zeros((12, 12), dtype=np.uint8)
        t[5, 4] = 1  # 1-cell speck: within the snapper's competence
        cleaned = gan.legalize_topology(t)
        assert cleaned.sum() == 0

    def test_midsize_defects_beyond_competence(self):
        gan = LegalGAN(self.RULES, cell_nm=16.0, repair_limit=1)
        t = np.zeros((12, 12), dtype=np.uint8)
        t[4:8, 4:6] = 1  # 2-cell-wide wire: violating but too big to snap
        cleaned = gan.legalize_topology(t)
        assert cleaned[5, 4] == 1  # left untouched

    def test_fills_narrow_gaps(self):
        gan = LegalGAN(self.RULES, cell_nm=16.0)  # min space 30/16 -> 2 cells
        t = np.zeros((12, 12), dtype=np.uint8)
        t[4:8, 2:5] = 1
        t[4:8, 6:9] = 1  # 1-cell interior gap
        cleaned = gan.legalize_topology(t)
        assert cleaned[5, 5] == 1

    def test_clears_corner_touches(self):
        gan = LegalGAN(self.RULES, cell_nm=16.0)
        t = np.zeros((12, 12), dtype=np.uint8)
        t[2:6, 2:6] = 1
        t[6:10, 6:10] = 1
        cleaned = gan.legalize_topology(t)
        from repro.geometry import diagonal_touch_pairs

        assert diagonal_touch_pairs(cleaned) == []

    def test_batch(self):
        gan = LegalGAN(self.RULES)
        batch = np.zeros((3, 8, 8), dtype=np.uint8)
        assert gan.batch(batch).shape == (3, 8, 8)

    def test_improves_autoencoder_output(self, stripe_data):
        """The LegalGAN contract: fewer rule-violating artefacts after."""
        rng = np.random.default_rng(6)
        cae = CAEGenerator(latent_dim=3)
        cae.fit(stripe_data, rng)
        raw = cae.sample(4, np.random.default_rng(7))
        gan = LegalGAN(self.RULES, cell_nm=32.0)
        cleaned = gan.batch(raw)
        from repro.geometry import diagonal_touch_pairs

        raw_corners = sum(len(diagonal_touch_pairs(t)) for t in raw)
        cleaned_corners = sum(len(diagonal_touch_pairs(t)) for t in cleaned)
        assert cleaned_corners <= raw_corners


class TestLayouTransformer:
    def test_fit_sample(self, stripe_data):
        gen = LayouTransformer()
        info = gen.fit(stripe_data, np.random.default_rng(0))
        assert info["vocabulary"] >= 1
        s = gen.sample(4, np.random.default_rng(1))
        assert s.shape == (4, 32, 32)

    def test_rows_come_from_training_vocabulary(self, stripe_data):
        gen = LayouTransformer(order_smoothing=0.0)
        gen.fit(stripe_data, np.random.default_rng(0))
        s = gen.sample(2, np.random.default_rng(1))
        train_rows = {r.tobytes() for t in stripe_data for r in t}
        for t in s:
            for row in t:
                assert row.tobytes() in train_rows

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LayouTransformer().sample(1, np.random.default_rng(0))


class TestDiffPattern:
    def test_unconditional_training(self, stripe_data):
        dp = DiffPattern(window=32)
        dp.fit(stripe_data, np.random.default_rng(0))
        s = dp.sample(2, np.random.default_rng(1))
        assert s.shape == (2, 32, 32)

    def test_free_size_concat(self, stripe_data):
        dp = DiffPattern(window=32)
        dp.fit(stripe_data, np.random.default_rng(0))
        big = dp.free_size_concat((64, 64), np.random.default_rng(1))
        assert big.shape == (64, 64)
