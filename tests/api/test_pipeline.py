"""Tests for PatternPipeline: chainable stages, timings, facades."""

import numpy as np
import pytest

from repro.api import PipelineConfig, PatternPipeline
from repro.api.config import SampleConfig, StoreConfig, TrainConfig
from repro.serve.store import LibraryStore


@pytest.fixture
def pipeline(small_model):
    cfg = PipelineConfig(
        train=TrainConfig(window=64, train_count=24, tile_nm=1024, seed=7),
        sample=SampleConfig(style="Layer-10001", count=2, seed=0),
    )
    return PatternPipeline(cfg, model=small_model)


class TestStages:
    def test_sample_legalize_score_persist_chain(self, pipeline, tmp_path):
        out = tmp_path / "lib.npz"
        result = (
            pipeline.sample().legalize().score().persist(output=out)
        )
        assert len(result.topologies) == 2
        assert result.legality is not None
        assert result.legality.total == 2
        assert len(result.library) == len(result.legality.legal)
        assert result.scores["count"] == len(result.library)
        assert "legality" in result.scores
        stages = [t.stage for t in result.timings]
        assert stages == ["sample", "legalize", "score", "persist"]
        assert all(t.seconds >= 0 for t in result.timings)
        if len(result.library):
            assert result.output_path == out
            assert out.exists()

    def test_chaining_equals_explicit_calls(self, pipeline):
        chained = pipeline.sample(seed=5).legalize()
        explicit = pipeline.legalize(pipeline.sample(seed=5))
        assert len(chained.topologies) == len(explicit.topologies)
        for a, b in zip(chained.topologies, explicit.topologies):
            assert np.array_equal(a, b)

    def test_sample_respects_overrides(self, pipeline):
        result = pipeline.sample(count=3, style="Layer-10003", size=32)
        assert len(result.topologies) == 3
        assert result.topologies[0].shape == (32, 32)
        assert result.style == "Layer-10003"

    def test_extend_stage(self, pipeline):
        result = pipeline.extend(size=96, count=1).legalize()
        assert result.topologies[0].shape == (96, 96)
        timing = result.timings[0]
        assert timing.stage == "extend"
        assert timing.detail["samplings"] >= 1

    def test_run_uses_config_defaults(self, pipeline, tmp_path):
        out = tmp_path / "run.npz"
        pipeline.config = pipeline.config.replace(
            store=StoreConfig(output_path=str(out))
        )
        result = pipeline.run()
        assert [t.stage for t in result.timings] == [
            "sample", "legalize", "score", "persist",
        ]
        assert result.legality.total == 2

    def test_with_library_score_needs_no_model(self, pipeline):
        legal = pipeline.sample().legalize().library
        scoring = PatternPipeline(PipelineConfig())  # no model attached
        result = scoring.with_library(legal).score()
        assert result.scores["count"] == len(legal)
        assert scoring._model is None  # scoring never resolved a back-end

    def test_persist_into_indexed_store(self, pipeline, tmp_path):
        store = LibraryStore(tmp_path / "store")
        pipeline._store = store
        pipeline._store_resolved = True
        result = pipeline.sample().legalize().persist()
        assert result.store_added == len(result.library)
        # same patterns again: all deduplicated
        again = pipeline.sample().legalize().persist()
        assert again.store_added == 0
        assert again.store_deduplicated == len(again.library)

    def test_export_stage(self, pipeline, tmp_path):
        result = pipeline.sample().legalize()
        if not len(result.library):
            pytest.skip("no legal pattern on this seed")
        result = result.export(tmp_path / "lib.gds")
        assert result.gds_path.exists()


class TestPrimitives:
    def test_legalize_one_keeps_log_contract(self, pipeline):
        topo = pipeline.sample_topologies(1, "Layer-10001")[0]
        outcome = pipeline.legalize_one(topo, "Layer-10001", (1024, 1024))
        assert hasattr(outcome, "ok") and hasattr(outcome, "log")

    def test_bound_to_shares_config_not_model(self, pipeline, small_model):
        other = object.__new__(type(small_model))  # distinct identity
        other.__dict__ = dict(small_model.__dict__)
        bound = pipeline.bound_to(other)
        assert bound.config is pipeline.config
        assert bound.model is other
        assert pipeline.bound_to(small_model) is pipeline

    def test_seed_falls_back_to_train_seed(self, small_model):
        cfg = PipelineConfig(
            train=TrainConfig(window=64, seed=13),
            sample=SampleConfig(style="Layer-10001", count=1, seed=None),
        )
        a = PatternPipeline(cfg, model=small_model).sample()
        b = PatternPipeline(cfg, model=small_model).sample()
        assert np.array_equal(a.topologies[0], b.topologies[0])


class TestFacades:
    def test_chat_routes_through_pipeline(self, pipeline):
        result = pipeline.chat(
            "Generate 2 layout patterns, 64*64 topology, physical size "
            "1024nm * 1024nm, style Layer-10001."
        )
        assert result.produced + result.dropped == 2

    def test_service_from_config(self, pipeline):
        service = pipeline.service()
        assert service.config is pipeline.config
        assert service.max_workers == pipeline.config.serve.max_workers
        with service:
            response = service.handle(
                "Generate 1 layout patterns, 64*64 topology, physical size "
                "1024nm * 1024nm, style Layer-10001."
            )
        assert response.ok
